//! Abstract syntax tree for the message-selector language.

use std::fmt;

/// A literal value in a selector expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// An exact numeric literal.
    Int(i64),
    /// An approximate numeric literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A boolean literal (`TRUE`/`FALSE`).
    Bool(bool),
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical conjunction with three-valued semantics.
    And,
    /// Logical disjunction with three-valued semantics.
    Or,
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>`).
    Neq,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        })
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation with three-valued semantics.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A selector expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Literal),
    /// A header-field or property reference.
    Ident(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// The left operand.
        left: Box<Expr>,
        /// The right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Negated form (`NOT BETWEEN`).
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
        /// The inclusive lower bound.
        low: Box<Expr>,
        /// The inclusive upper bound.
        high: Box<Expr>,
    },
    /// `expr [NOT] IN ('a', 'b', …)`.
    In {
        /// Negated form (`NOT IN`).
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate strings.
        list: Vec<String>,
    },
    /// `expr [NOT] LIKE pattern [ESCAPE c]`.
    Like {
        /// Negated form (`NOT LIKE`).
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern, with `%` and `_` wildcards.
        pattern: String,
        /// The escape character, if given.
        escape: Option<char>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Negated form (`IS NOT NULL`).
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Returns the number of nodes in the expression tree, a convenient
    /// complexity measure for fuzzing and limits.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Literal(_) | Expr::Ident(_) => 1,
            Expr::Unary { expr, .. } => 1 + expr.node_count(),
            Expr::Binary { left, right, .. } => 1 + left.node_count() + right.node_count(),
            Expr::Between {
                expr, low, high, ..
            } => 1 + expr.node_count() + low.node_count() + high.node_count(),
            Expr::In { expr, .. } => 1 + expr.node_count(),
            Expr::Like { expr, .. } => 1 + expr.node_count(),
            Expr::IsNull { expr, .. } => 1 + expr.node_count(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Literal::Int(v)) => write!(f, "{v}"),
            // `{:?}` keeps a decimal point (0.0 prints as "0.0", not "0"),
            // so the printed form re-parses as an approximate literal.
            Expr::Literal(Literal::Float(v)) => write!(f, "{v:?}"),
            Expr::Literal(Literal::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Literal::Bool(b)) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Expr::Ident(name) => f.write_str(name),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => write!(f, "NOT ({expr})"),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => write!(f, "-({expr})"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Between {
                negated,
                expr,
                low,
                high,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::In {
                negated,
                expr,
                list,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{}'", item.replace('\'', "''"))?;
                }
                write!(f, "))")
            }
            Expr::Like {
                negated,
                expr,
                pattern,
                escape,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )?;
                if let Some(c) = escape {
                    write!(f, " ESCAPE '{c}'")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { negated, expr } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts() {
        let expr = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::Ident("a".into())),
            right: Box::new(Expr::Literal(Literal::Bool(true))),
        };
        assert_eq!(expr.node_count(), 3);
    }

    #[test]
    fn display_round_trips_through_parser() {
        // Display is a valid selector: re-parsing it must succeed.
        let source = "a + 2 * b >= 4 AND name LIKE 'x%' ESCAPE '!' OR c IS NOT NULL";
        let parsed = crate::selector::Selector::parse(source).unwrap();
        let printed = parsed.expr().to_string();
        let reparsed = crate::selector::Selector::parse(&printed).unwrap();
        assert_eq!(parsed.expr(), reparsed.expr());
    }

    #[test]
    fn display_escapes_quotes() {
        let expr = Expr::Literal(Literal::Str("it's".into()));
        assert_eq!(expr.to_string(), "'it''s'");
    }

    #[test]
    fn operator_display() {
        assert_eq!(BinaryOp::Neq.to_string(), "<>");
        assert_eq!(BinaryOp::And.to_string(), "AND");
    }
}
