//! Recursive-descent parser for the message-selector language.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! expr        := and_expr (OR and_expr)*
//! and_expr    := not_expr (AND not_expr)*
//! not_expr    := NOT not_expr | comparison
//! comparison  := sum ( (= | <> | < | <= | > | >=) sum
//!                    | [NOT] BETWEEN sum AND sum
//!                    | [NOT] IN '(' string (',' string)* ')'
//!                    | [NOT] LIKE string [ESCAPE string]
//!                    | IS [NOT] NULL )?
//! sum         := product ((+ | -) product)*
//! product     := unary ((* | /) unary)*
//! unary       := (+ | -) unary | primary
//! primary     := literal | identifier | '(' expr ')'
//! ```

use super::ast::{BinaryOp, Expr, Literal, UnaryOp};
use super::token::{lex, Spanned, Token};
use super::SelectorError;

/// Upper bound on selector size, in tokens. Every AST node consumes at
/// least one token, so this also bounds `Expr::node_count` and with it the
/// recursion depth of every later tree walk (evaluation, analysis,
/// display).
const MAX_TOKENS: usize = 4096;

/// Upper bound on parser recursion through the unbounded grammar
/// productions (parenthesised groups, `NOT` chains, unary signs). Each
/// level costs several stack frames across the precedence chain, so the
/// limit keeps parsing well inside a default 2 MiB thread stack.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(text: &str) -> Result<Expr, SelectorError> {
    let tokens = lex(text)?;
    if tokens.len() > MAX_TOKENS {
        return Err(SelectorError::new(
            0,
            format!(
                "selector too large: {} tokens exceed the {MAX_TOKENS}-token limit",
                tokens.len()
            ),
        ));
    }
    let mut parser = Parser {
        tokens,
        position: 0,
        end: text.len(),
        depth: 0,
    };
    let expr = parser.expr()?;
    if let Some(extra) = parser.peek() {
        return Err(SelectorError::new(
            extra.offset,
            format!("unexpected {} after expression", extra.token.describe()),
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Spanned>,
    position: usize,
    end: usize,
    depth: usize,
}

impl Parser {
    /// Guards a recursive descent through an unbounded production.
    fn descend(&mut self) -> Result<(), SelectorError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(SelectorError::new(
                self.offset(),
                format!("selector nesting exceeds the {MAX_DEPTH}-level limit"),
            ))
        } else {
            Ok(())
        }
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.position)
    }

    fn next(&mut self) -> Option<Spanned> {
        let token = self.tokens.get(self.position).cloned();
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn offset(&self) -> usize {
        self.peek().map_or(self.end, |s| s.offset)
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek().is_some_and(|s| &s.token == expected) {
            self.position += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), SelectorError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {}", expected.describe())))
        }
    }

    fn unexpected(&self, expectation: &str) -> SelectorError {
        match self.peek() {
            Some(s) => SelectorError::new(
                s.offset,
                format!("{expectation}, found {}", s.token.describe()),
            ),
            None => SelectorError::new(self.end, format!("{expectation}, found end of input")),
        }
    }

    fn expr(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.and_expr()?;
        while self.eat(&Token::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.not_expr()?;
        while self.eat(&Token::And) {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SelectorError> {
        if self.eat(&Token::Not) {
            self.descend()?;
            let expr = self.not_expr()?;
            self.ascend();
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SelectorError> {
        let left = self.sum()?;

        // Simple relational operators.
        let relational = match self.peek().map(|s| &s.token) {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::Neq) => Some(BinaryOp::Neq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = relational {
            self.position += 1;
            let right = self.sum()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }

        // [NOT] BETWEEN / IN / LIKE, and IS [NOT] NULL.
        let negated = self.eat(&Token::Not);
        match self.peek().map(|s| &s.token) {
            Some(Token::Between) => {
                self.position += 1;
                let low = self.sum()?;
                self.expect(&Token::And)?;
                let high = self.sum()?;
                Ok(Expr::Between {
                    negated,
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                })
            }
            Some(Token::In) => {
                self.position += 1;
                self.expect(&Token::LParen)?;
                let mut list = Vec::new();
                loop {
                    match self.next() {
                        Some(Spanned {
                            token: Token::Str(s),
                            ..
                        }) => list.push(s),
                        Some(other) => {
                            return Err(SelectorError::new(
                                other.offset,
                                format!(
                                    "IN list items must be string literals, found {}",
                                    other.token.describe()
                                ),
                            ))
                        }
                        None => {
                            return Err(SelectorError::new(
                                self.end,
                                "IN list items must be string literals, found end of input",
                            ))
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::In {
                    negated,
                    expr: Box::new(left),
                    list,
                })
            }
            Some(Token::Like) => {
                self.position += 1;
                let pattern_offset = self.offset();
                let pattern = match self.next() {
                    Some(Spanned {
                        token: Token::Str(s),
                        ..
                    }) => s,
                    _ => {
                        return Err(SelectorError::new(
                            pattern_offset,
                            "LIKE requires a string-literal pattern",
                        ))
                    }
                };
                let escape = if self.eat(&Token::Escape) {
                    let escape_offset = self.offset();
                    match self.next() {
                        Some(Spanned {
                            token: Token::Str(s),
                            ..
                        }) if s.chars().count() == 1 => s.chars().next(),
                        _ => {
                            return Err(SelectorError::new(
                                escape_offset,
                                "ESCAPE requires a single-character string literal",
                            ))
                        }
                    }
                } else {
                    None
                };
                Ok(Expr::Like {
                    negated,
                    expr: Box::new(left),
                    pattern,
                    escape,
                })
            }
            Some(Token::Is) if !negated => {
                self.position += 1;
                let negated = self.eat(&Token::Not);
                self.expect(&Token::Null)?;
                Ok(Expr::IsNull {
                    negated,
                    expr: Box::new(left),
                })
            }
            _ if negated => Err(self.unexpected("expected BETWEEN, IN or LIKE after NOT")),
            _ => Ok(left),
        }
    }

    fn sum(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.product()?;
        loop {
            let op = match self.peek().map(|s| &s.token) {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.position += 1;
            let right = self.product()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn product(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().map(|s| &s.token) {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.position += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SelectorError> {
        if self.eat(&Token::Minus) {
            self.descend()?;
            let expr = self.unary()?;
            self.ascend();
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat(&Token::Plus) {
            self.descend()?;
            let expr = self.unary();
            self.ascend();
            return expr;
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SelectorError> {
        match self.peek().map(|s| s.token.clone()) {
            Some(Token::Int(v)) => {
                self.position += 1;
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.position += 1;
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.position += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::True) => {
                self.position += 1;
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Some(Token::False) => {
                self.position += 1;
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Some(Token::Ident(name)) => {
                self.position += 1;
                Ok(Expr::Ident(name))
            }
            Some(Token::LParen) => {
                self.position += 1;
                self.descend()?;
                let expr = self.expr()?;
                self.ascend();
                self.expect(&Token::RParen)?;
                Ok(expr)
            }
            // JMS reserves the selector keywords: they are not valid
            // identifiers, and deserve a targeted message rather than the
            // generic "expected a primary" one.
            Some(Token::Null) => Err(SelectorError::new(
                self.offset(),
                "reserved word NULL cannot be used as an identifier (use `x IS NULL` to test for null)",
            )),
            Some(
                token @ (Token::And
                | Token::Or
                | Token::Not
                | Token::Between
                | Token::In
                | Token::Like
                | Token::Escape
                | Token::Is),
            ) => Err(SelectorError::new(
                self.offset(),
                format!(
                    "reserved word {} cannot be used as an identifier",
                    token.describe()
                ),
            )),
            _ => Err(self.unexpected("expected a literal, identifier or parenthesised expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_or_binds_loosest() {
        let expr = parse("a OR b AND c").unwrap();
        match expr {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => match *right {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("expected AND under OR, got {other:?}"),
            },
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let expr = parse("a + b * c = 7").unwrap();
        let printed = expr.to_string();
        assert_eq!(printed, "((a + (b * c)) = 7)");
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let expr = parse("NOT a AND b").unwrap();
        assert_eq!(expr.to_string(), "(NOT (a) AND b)");
    }

    #[test]
    fn between_parses() {
        let expr = parse("x NOT BETWEEN 1 AND 3 + 1").unwrap();
        assert_eq!(expr.to_string(), "(x NOT BETWEEN 1 AND (3 + 1))");
    }

    #[test]
    fn in_list_parses() {
        let expr = parse("region IN ('a', 'b')").unwrap();
        assert_eq!(expr.to_string(), "(region IN ('a', 'b'))");
    }

    #[test]
    fn in_list_rejects_non_strings() {
        assert!(parse("region IN (1, 2)").is_err());
        assert!(parse("region IN ()").is_err());
    }

    #[test]
    fn like_parses_with_escape() {
        let expr = parse("name LIKE 'x!%' ESCAPE '!'").unwrap();
        assert_eq!(expr.to_string(), "(name LIKE 'x!%' ESCAPE '!')");
        assert!(parse("name LIKE 'x' ESCAPE 'ab'").is_err());
        assert!(parse("name LIKE 42").is_err());
    }

    #[test]
    fn is_null_parses() {
        assert_eq!(parse("a IS NULL").unwrap().to_string(), "(a IS NULL)");
        assert_eq!(
            parse("a IS NOT NULL").unwrap().to_string(),
            "(a IS NOT NULL)"
        );
        assert!(parse("a IS 4").is_err());
    }

    #[test]
    fn dangling_not_is_an_error() {
        assert!(parse("a NOT = 1").is_err());
    }

    #[test]
    fn unary_minus_and_plus() {
        assert_eq!(parse("-a = +2").unwrap().to_string(), "(-(a) = 2)");
        assert_eq!(parse("--2 = 2").unwrap().to_string(), "(-(-(2)) = 2)");
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse("a = 1 b").unwrap_err();
        assert!(err.message().contains("after expression"));
    }

    #[test]
    fn error_positions_point_into_text() {
        let err = parse("a = ").unwrap_err();
        assert_eq!(err.position(), 4);
        let err = parse("(a = 1").unwrap_err();
        assert_eq!(err.position(), 6);
    }

    #[test]
    fn deeply_nested_parentheses() {
        let depth = 100;
        let source = format!("{}a = 1{}", "(".repeat(depth), ")".repeat(depth));
        assert!(parse(&source).is_ok());
    }

    #[test]
    fn reserved_words_are_not_identifiers() {
        let err = parse("NULL = 1").unwrap_err();
        assert!(err.message().contains("reserved word NULL"), "{err}");
        assert!(err.message().contains("IS NULL"), "{err}");
        let err = parse("a = between").unwrap_err();
        assert!(err.message().contains("reserved word BETWEEN"), "{err}");
        let err = parse("escape = 'x'").unwrap_err();
        assert!(err.message().contains("reserved word ESCAPE"), "{err}");
        let err = parse("a = 1 AND is").unwrap_err();
        assert!(err.message().contains("reserved word IS"), "{err}");
        // Case-insensitive, like all keywords.
        assert!(parse("null = 1").is_err());
        // TRUE/FALSE remain valid literals, and dotted names that merely
        // contain a keyword are fine.
        assert!(parse("a = TRUE OR a = false").is_ok());
        assert!(parse("null.field = 1").is_ok());
    }

    #[test]
    fn nesting_beyond_the_depth_limit_is_rejected() {
        let depth = MAX_DEPTH + 1;
        let source = format!("{}a = 1{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse(&source).unwrap_err();
        assert!(err.message().contains("nesting"), "{err}");
        let source = format!("{}a", "NOT ".repeat(depth));
        assert!(parse(&source).is_err());
        let source = format!("{}1 = 1", "-".repeat(depth));
        assert!(parse(&source).is_err());
    }

    #[test]
    fn oversized_selectors_are_rejected() {
        let wide = (0..MAX_TOKENS).map(|i| format!("p{i} = {i}")).fold(
            String::new(),
            |mut acc, clause| {
                if !acc.is_empty() {
                    acc.push_str(" AND ");
                }
                acc.push_str(&clause);
                acc
            },
        );
        let err = parse(&wide).unwrap_err();
        assert!(err.message().contains("token limit"), "{err}");
        // A selector at a reasonable size still parses.
        assert!(parse("a = 1 AND b = 2 AND c = 3").is_ok());
    }
}
