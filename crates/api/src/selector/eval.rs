//! Evaluator for the message-selector language, with SQL-92 three-valued
//! logic: any sub-expression may be *unknown* (for example, a reference to
//! an unset property), and a selector only accepts a message when the whole
//! expression evaluates to *true*.

use super::ast::{BinaryOp, Expr, Literal, UnaryOp};
use crate::message::Message;
use crate::value::Value;

/// The three truth values of SQL-92 logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (a null was involved).
    Unknown,
}

impl Truth {
    fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// SQL-92 three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// SQL-92 three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// SQL-92 three-valued negation.
    pub fn negate(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        self.negate()
    }
}

/// A value during selector evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    /// A null/absent value.
    Null,
    /// A boolean.
    Bool(bool),
    /// An exact numeric value.
    Long(i64),
    /// An approximate numeric value.
    Double(f64),
    /// A string.
    Str(String),
}

impl EvalValue {
    /// Converts a message property/body [`Value`] into an evaluation value.
    /// Byte arrays become null (they are not selectable in JMS).
    pub fn from_value(value: &Value) -> EvalValue {
        match value {
            Value::Bool(b) => EvalValue::Bool(*b),
            Value::Byte(v) => EvalValue::Long(i64::from(*v)),
            Value::Short(v) => EvalValue::Long(i64::from(*v)),
            Value::Int(v) => EvalValue::Long(i64::from(*v)),
            Value::Long(v) => EvalValue::Long(*v),
            Value::Float(v) => EvalValue::Double(f64::from(*v)),
            Value::Double(v) => EvalValue::Double(*v),
            Value::String(s) => EvalValue::Str(s.clone()),
            Value::Bytes(_) => EvalValue::Null,
        }
    }

    fn is_null(&self) -> bool {
        matches!(self, EvalValue::Null)
    }
}

/// Resolves identifiers during evaluation.
pub(crate) trait Context {
    fn resolve(&self, name: &str) -> Option<EvalValue>;
}

/// Resolves identifiers against a [`Message`]: JMS header fields first,
/// then user properties.
pub(crate) struct MessageContext<'a> {
    message: &'a Message,
}

impl<'a> MessageContext<'a> {
    pub(crate) fn new(message: &'a Message) -> Self {
        Self { message }
    }
}

impl Context for MessageContext<'_> {
    fn resolve(&self, name: &str) -> Option<EvalValue> {
        match name {
            "JMSPriority" => Some(EvalValue::Long(i64::from(self.message.priority().level()))),
            "JMSDeliveryMode" => Some(EvalValue::Str(
                if self.message.delivery_mode().is_persistent() {
                    "PERSISTENT".to_owned()
                } else {
                    "NON_PERSISTENT".to_owned()
                },
            )),
            "JMSMessageID" => Some(EvalValue::Str(self.message.id().to_string())),
            "JMSTimestamp" => Some(EvalValue::Long(self.message.sent_at().as_millis() as i64)),
            "JMSCorrelationID" => self
                .message
                .correlation_id()
                .map(|s| EvalValue::Str(s.to_owned())),
            "JMSType" => self
                .message
                .message_type()
                .map(|s| EvalValue::Str(s.to_owned())),
            _ => self
                .message
                .properties()
                .get(name)
                .map(EvalValue::from_value),
        }
    }
}

/// Resolves identifiers through a user-supplied function.
pub(crate) struct FnContext<F> {
    resolve: F,
}

impl<F: Fn(&str) -> Option<EvalValue>> FnContext<F> {
    pub(crate) fn new(resolve: F) -> Self {
        Self { resolve }
    }
}

impl<F: Fn(&str) -> Option<EvalValue>> Context for FnContext<F> {
    fn resolve(&self, name: &str) -> Option<EvalValue> {
        (self.resolve)(name)
    }
}

/// Evaluates `expr` to a truth value under `context`.
pub(crate) fn eval<C: Context>(expr: &Expr, context: &C) -> Truth {
    match eval_value(expr, context) {
        EvalValue::Bool(b) => Truth::from_bool(b),
        EvalValue::Null => Truth::Unknown,
        // A non-boolean condition (e.g. selector text "5") is not a valid
        // condition; JMS treats it as not matching.
        _ => Truth::Unknown,
    }
}

fn eval_value<C: Context>(expr: &Expr, context: &C) -> EvalValue {
    match expr {
        Expr::Literal(Literal::Int(v)) => EvalValue::Long(*v),
        Expr::Literal(Literal::Float(v)) => EvalValue::Double(*v),
        Expr::Literal(Literal::Str(s)) => EvalValue::Str(s.clone()),
        Expr::Literal(Literal::Bool(b)) => EvalValue::Bool(*b),
        Expr::Ident(name) => context.resolve(name).unwrap_or(EvalValue::Null),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => truth_to_value(eval(expr, context).negate()),
            UnaryOp::Neg => match eval_value(expr, context) {
                EvalValue::Long(v) => EvalValue::Long(v.wrapping_neg()),
                EvalValue::Double(v) => EvalValue::Double(-v),
                _ => EvalValue::Null,
            },
        },
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => truth_to_value(eval(left, context).and(eval(right, context))),
            BinaryOp::Or => truth_to_value(eval(left, context).or(eval(right, context))),
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => truth_to_value(compare(
                *op,
                eval_value(left, context),
                eval_value(right, context),
            )),
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                arithmetic(*op, eval_value(left, context), eval_value(right, context))
            }
        },
        Expr::Between {
            negated,
            expr,
            low,
            high,
        } => {
            let value = eval_value(expr, context);
            let low = eval_value(low, context);
            let high = eval_value(high, context);
            let truth =
                compare(BinaryOp::Ge, value.clone(), low).and(compare(BinaryOp::Le, value, high));
            truth_to_value(if *negated { truth.negate() } else { truth })
        }
        Expr::In {
            negated,
            expr,
            list,
        } => {
            let truth = match eval_value(expr, context) {
                EvalValue::Str(s) => Truth::from_bool(list.iter().any(|item| item == &s)),
                EvalValue::Null => Truth::Unknown,
                _ => Truth::Unknown,
            };
            truth_to_value(if *negated { truth.negate() } else { truth })
        }
        Expr::Like {
            negated,
            expr,
            pattern,
            escape,
        } => {
            let truth = match eval_value(expr, context) {
                EvalValue::Str(s) => Truth::from_bool(like_match(&s, pattern, *escape)),
                EvalValue::Null => Truth::Unknown,
                _ => Truth::Unknown,
            };
            truth_to_value(if *negated { truth.negate() } else { truth })
        }
        Expr::IsNull { negated, expr } => {
            let is_null = eval_value(expr, context).is_null();
            EvalValue::Bool(if *negated { !is_null } else { is_null })
        }
    }
}

fn truth_to_value(truth: Truth) -> EvalValue {
    match truth {
        Truth::True => EvalValue::Bool(true),
        Truth::False => EvalValue::Bool(false),
        Truth::Unknown => EvalValue::Null,
    }
}

pub(crate) fn compare(op: BinaryOp, left: EvalValue, right: EvalValue) -> Truth {
    use EvalValue::*;
    match (&left, &right) {
        (Null, _) | (_, Null) => Truth::Unknown,
        (Long(a), Long(b)) => numeric_compare(op, *a as f64, *b as f64, Some((*a, *b))),
        (Long(a), Double(b)) => numeric_compare(op, *a as f64, *b, None),
        (Double(a), Long(b)) => numeric_compare(op, *a, *b as f64, None),
        (Double(a), Double(b)) => numeric_compare(op, *a, *b, None),
        // Strings and booleans support only (in)equality in JMS.
        (Str(a), Str(b)) => match op {
            BinaryOp::Eq => Truth::from_bool(a == b),
            BinaryOp::Neq => Truth::from_bool(a != b),
            _ => Truth::Unknown,
        },
        (Bool(a), Bool(b)) => match op {
            BinaryOp::Eq => Truth::from_bool(a == b),
            BinaryOp::Neq => Truth::from_bool(a != b),
            _ => Truth::Unknown,
        },
        // Cross-type comparison is undefined → unknown.
        _ => Truth::Unknown,
    }
}

fn numeric_compare(op: BinaryOp, a: f64, b: f64, exact: Option<(i64, i64)>) -> Truth {
    // Use exact integer comparison when both sides are exact.
    if let Some((x, y)) = exact {
        return Truth::from_bool(match op {
            BinaryOp::Eq => x == y,
            BinaryOp::Neq => x != y,
            BinaryOp::Lt => x < y,
            BinaryOp::Le => x <= y,
            BinaryOp::Gt => x > y,
            BinaryOp::Ge => x >= y,
            _ => unreachable!("non-relational op in compare"),
        });
    }
    Truth::from_bool(match op {
        BinaryOp::Eq => a == b,
        BinaryOp::Neq => a != b,
        BinaryOp::Lt => a < b,
        BinaryOp::Le => a <= b,
        BinaryOp::Gt => a > b,
        BinaryOp::Ge => a >= b,
        _ => unreachable!("non-relational op in compare"),
    })
}

pub(crate) fn arithmetic(op: BinaryOp, left: EvalValue, right: EvalValue) -> EvalValue {
    use EvalValue::*;
    match (left, right) {
        (Long(a), Long(b)) => match op {
            BinaryOp::Add => Long(a.wrapping_add(b)),
            BinaryOp::Sub => Long(a.wrapping_sub(b)),
            BinaryOp::Mul => Long(a.wrapping_mul(b)),
            BinaryOp::Div => {
                if b == 0 {
                    Null
                } else {
                    Long(a.wrapping_div(b))
                }
            }
            _ => Null,
        },
        (Long(a), Double(b)) => float_arithmetic(op, a as f64, b),
        (Double(a), Long(b)) => float_arithmetic(op, a, b as f64),
        (Double(a), Double(b)) => float_arithmetic(op, a, b),
        _ => Null,
    }
}

fn float_arithmetic(op: BinaryOp, a: f64, b: f64) -> EvalValue {
    let result = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return EvalValue::Null;
            }
            a / b
        }
        _ => return EvalValue::Null,
    };
    EvalValue::Double(result)
}

/// Matches `text` against a SQL LIKE `pattern` with `%` (any sequence) and
/// `_` (any single character) wildcards and an optional escape character.
pub(crate) fn like_match(text: &str, pattern: &str, escape: Option<char>) -> bool {
    let text: Vec<char> = text.chars().collect();
    let pattern: Vec<PatternItem> = compile_pattern(pattern, escape);
    like_rec(&text, &pattern)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PatternItem {
    Literal(char),
    AnyOne,
    AnySeq,
}

fn compile_pattern(pattern: &str, escape: Option<char>) -> Vec<PatternItem> {
    let mut items = Vec::new();
    let mut escaped = false;
    for c in pattern.chars() {
        if escaped {
            items.push(PatternItem::Literal(c));
            escaped = false;
        } else if Some(c) == escape {
            escaped = true;
        } else if c == '%' {
            items.push(PatternItem::AnySeq);
        } else if c == '_' {
            items.push(PatternItem::AnyOne);
        } else {
            items.push(PatternItem::Literal(c));
        }
    }
    // A trailing bare escape character matches itself.
    if escaped {
        if let Some(c) = escape {
            items.push(PatternItem::Literal(c));
        }
    }
    items
}

fn like_rec(text: &[char], pattern: &[PatternItem]) -> bool {
    match pattern.first() {
        None => text.is_empty(),
        Some(PatternItem::Literal(c)) => {
            text.first() == Some(c) && like_rec(&text[1..], &pattern[1..])
        }
        Some(PatternItem::AnyOne) => !text.is_empty() && like_rec(&text[1..], &pattern[1..]),
        Some(PatternItem::AnySeq) => {
            // Collapse consecutive % for linear behaviour, then try every split.
            let rest = &pattern[1..];
            if rest.first() == Some(&PatternItem::AnySeq) {
                return like_rec(text, rest);
            }
            (0..=text.len()).any(|skip| like_rec(&text[skip..], rest))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use Truth::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(False.or(False), False);
        assert_eq!(Unknown.or(Unknown), Unknown);
        assert_eq!(True.negate(), False);
        assert_eq!(False.negate(), True);
        assert_eq!(Unknown.negate(), Unknown);
    }

    #[test]
    fn like_basic() {
        assert!(like_match("abc", "abc", None));
        assert!(like_match("abc", "a%", None));
        assert!(like_match("abc", "%c", None));
        assert!(like_match("abc", "%b%", None));
        assert!(like_match("abc", "a_c", None));
        assert!(!like_match("abc", "a_", None));
        assert!(like_match("", "%", None));
        assert!(!like_match("", "_", None));
        assert!(like_match("abc", "%%", None));
    }

    #[test]
    fn like_with_escape() {
        assert!(like_match("100%", "100!%", Some('!')));
        assert!(!like_match("1000", "100!%", Some('!')));
        assert!(like_match("a_b", "a!_b", Some('!')));
        assert!(!like_match("axb", "a!_b", Some('!')));
        // The escape char escapes itself.
        assert!(like_match("a!b", "a!!b", Some('!')));
    }

    #[test]
    fn like_pathological_patterns_terminate() {
        let text = "a".repeat(200);
        assert!(like_match(&text, "%%%%%%%%%%a", None));
        assert!(!like_match(&text, "%%%%%%%%%%b", None));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(
            arithmetic(BinaryOp::Div, EvalValue::Long(1), EvalValue::Long(0)),
            EvalValue::Null
        );
        assert_eq!(
            arithmetic(BinaryOp::Div, EvalValue::Double(1.0), EvalValue::Long(0)),
            EvalValue::Null
        );
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(
            arithmetic(BinaryOp::Div, EvalValue::Long(7), EvalValue::Long(2)),
            EvalValue::Long(3)
        );
    }

    #[test]
    fn cross_type_comparisons_are_unknown() {
        assert_eq!(
            compare(BinaryOp::Eq, EvalValue::Long(1), EvalValue::Str("1".into())),
            Truth::Unknown
        );
        assert_eq!(
            compare(
                BinaryOp::Lt,
                EvalValue::Str("a".into()),
                EvalValue::Str("b".into())
            ),
            Truth::Unknown
        );
        assert_eq!(
            compare(BinaryOp::Lt, EvalValue::Bool(false), EvalValue::Bool(true)),
            Truth::Unknown
        );
    }

    #[test]
    fn exact_integer_comparison_beyond_f64_precision() {
        let big = (1i64 << 62) + 1;
        assert_eq!(
            compare(
                BinaryOp::Neq,
                EvalValue::Long(big),
                EvalValue::Long(big - 1)
            ),
            Truth::True
        );
    }

    #[test]
    fn from_value_conversions() {
        assert_eq!(EvalValue::from_value(&Value::Byte(1)), EvalValue::Long(1));
        assert_eq!(
            EvalValue::from_value(&Value::Float(0.5)),
            EvalValue::Double(0.5)
        );
        assert_eq!(
            EvalValue::from_value(&Value::Bytes(vec![1])),
            EvalValue::Null
        );
    }
}
