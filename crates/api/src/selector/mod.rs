//! JMS message selectors: a SQL-92 conditional-expression subset used to
//! filter message delivery by header fields and user properties.
//!
//! Selectors are part of the JMS specification the paper's harness
//! configures consumers with, so providers built on this crate need a full
//! implementation: a lexer, a recursive-descent parser, and a
//! three-valued-logic evaluator.
//!
//! # Examples
//!
//! ```
//! use jmst_api::selector::Selector;
//! use jmst_api::message::{MessageDraft, Stamp};
//! use jmst_api::body::Body;
//! use jmst_api::destination::Destination;
//! use jmst_api::id::{MessageId, ProducerId};
//! use jmst_api::time::Timestamp;
//! use jmst_api::value::Value;
//!
//! let selector = Selector::parse("region = 'emea' AND size BETWEEN 10 AND 20")?;
//! let message = MessageDraft::text("x")
//!     .property("region", Value::from("emea"))?
//!     .property("size", Value::Int(15))?
//!     .stamp(Stamp {
//!         id: MessageId::from_raw(1),
//!         producer: ProducerId::from_raw(1),
//!         sequence: 0,
//!         destination: Destination::topic("t"),
//!         sent_at: Timestamp::ZERO,
//!     });
//! assert!(selector.matches(&message));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analyze;
mod ast;
mod eval;
mod parser;
mod token;

pub use analyze::{Classification, EqConstraint, IdentType, SelectorAnalysis};
pub use ast::{BinaryOp, Expr, Literal, UnaryOp};
pub use eval::{EvalValue, Truth};

use crate::message::Message;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed, reusable message selector.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    text: String,
    expr: Expr,
}

impl Selector {
    /// Parses a selector expression.
    ///
    /// An empty (or all-whitespace) selector matches every message, as in
    /// JMS.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectorError`] describing the first lexical or
    /// syntactic problem.
    pub fn parse(text: &str) -> Result<Selector, SelectorError> {
        let expr = if text.trim().is_empty() {
            Expr::Literal(Literal::Bool(true))
        } else {
            parser::parse(text)?
        };
        Ok(Selector {
            text: text.to_owned(),
            expr,
        })
    }

    /// Returns the original selector text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Returns the parsed expression tree.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Returns `true` if the selector accepts `message`.
    ///
    /// Follows JMS three-valued logic: a selector whose value is unknown
    /// (for example, because it references an unset property) does *not*
    /// match.
    pub fn matches(&self, message: &Message) -> bool {
        eval::eval(&self.expr, &eval::MessageContext::new(message)) == Truth::True
    }

    /// Evaluates the selector against an arbitrary identifier-resolution
    /// function. Unresolved identifiers evaluate to null.
    ///
    /// Exposed for tests and for the analysis model, which re-evaluates
    /// selectors when computing which messages a subscription covers.
    pub fn matches_with<F>(&self, resolve: F) -> bool
    where
        F: Fn(&str) -> Option<EvalValue>,
    {
        eval::eval(&self.expr, &eval::FnContext::new(resolve)) == Truth::True
    }
}

/// Resolves an identifier against a message exactly as selector evaluation
/// does: JMS header fields first, then user properties. `None` means the
/// identifier evaluates to null.
///
/// Exposed so brokers can key analysis-driven routing indexes (for
/// example, an equality-predicate prefilter) on the same values the
/// evaluator would see.
pub fn resolve_ident(message: &Message, name: &str) -> Option<EvalValue> {
    use eval::Context as _;
    eval::MessageContext::new(message).resolve(name)
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl Serialize for Selector {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.text)
    }
}

impl<'de> Deserialize<'de> for Selector {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        Selector::parse(&text).map_err(serde::de::Error::custom)
    }
}

/// An error produced while parsing a selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorError {
    position: usize,
    message: String,
}

impl SelectorError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        Self {
            position,
            message: message.into(),
        }
    }

    /// Byte offset in the selector text where the problem was found.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.position)
    }
}

impl std::error::Error for SelectorError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::destination::Destination;
    use crate::id::{MessageId, ProducerId};
    use crate::message::{MessageDraft, Stamp};
    use crate::modes::{DeliveryMode, Priority};
    use crate::time::Timestamp;
    use crate::value::Value;

    fn message_with(props: &[(&str, Value)]) -> Message {
        let mut draft = MessageDraft::new(Body::text("x"))
            .priority(Priority::new(6).unwrap())
            .delivery_mode(DeliveryMode::NonPersistent)
            .correlation_id("corr-7")
            .message_type("order");
        for (name, value) in props {
            draft = draft.property(*name, value.clone()).unwrap();
        }
        draft.stamp(Stamp {
            id: MessageId::from_raw(3),
            producer: ProducerId::from_raw(1),
            sequence: 0,
            destination: Destination::topic("t"),
            sent_at: Timestamp::from_millis(42),
        })
    }

    #[test]
    fn empty_selector_matches_everything() {
        let selector = Selector::parse("   ").unwrap();
        assert!(selector.matches(&message_with(&[])));
    }

    #[test]
    fn property_equality() {
        let selector = Selector::parse("region = 'emea'").unwrap();
        assert!(selector.matches(&message_with(&[("region", Value::from("emea"))])));
        assert!(!selector.matches(&message_with(&[("region", Value::from("apac"))])));
        // Unset property → unknown → no match.
        assert!(!selector.matches(&message_with(&[])));
    }

    #[test]
    fn header_fields_resolve() {
        let message = message_with(&[]);
        assert!(Selector::parse("JMSPriority = 6")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("JMSDeliveryMode = 'NON_PERSISTENT'")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("JMSCorrelationID = 'corr-7'")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("JMSType = 'order'")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("JMSTimestamp >= 42")
            .unwrap()
            .matches(&message));
    }

    #[test]
    fn numeric_comparisons_mix_int_and_float() {
        let message = message_with(&[("weight", Value::Double(2.5))]);
        assert!(Selector::parse("weight > 2").unwrap().matches(&message));
        assert!(Selector::parse("weight <= 2.5").unwrap().matches(&message));
        assert!(!Selector::parse("weight <> 2.5").unwrap().matches(&message));
    }

    #[test]
    fn arithmetic_in_comparisons() {
        let message = message_with(&[("a", Value::Int(4)), ("b", Value::Int(3))]);
        assert!(Selector::parse("a * b = 12").unwrap().matches(&message));
        assert!(Selector::parse("a + b * 2 = 10").unwrap().matches(&message));
        assert!(Selector::parse("(a + b) * 2 = 14")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("-a = -4").unwrap().matches(&message));
        assert!(Selector::parse("a / 2 = 2").unwrap().matches(&message));
    }

    #[test]
    fn between_and_not_between() {
        let message = message_with(&[("size", Value::Int(15))]);
        assert!(Selector::parse("size BETWEEN 10 AND 20")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("size BETWEEN 15 AND 15")
            .unwrap()
            .matches(&message));
        assert!(!Selector::parse("size NOT BETWEEN 10 AND 20")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("size NOT BETWEEN 16 AND 20")
            .unwrap()
            .matches(&message));
    }

    #[test]
    fn in_lists() {
        let message = message_with(&[("region", Value::from("emea"))]);
        assert!(Selector::parse("region IN ('apac', 'emea')")
            .unwrap()
            .matches(&message));
        assert!(!Selector::parse("region NOT IN ('apac', 'emea')")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("region NOT IN ('apac')")
            .unwrap()
            .matches(&message));
    }

    #[test]
    fn like_patterns() {
        let message = message_with(&[("code", Value::from("AB-1234"))]);
        assert!(Selector::parse("code LIKE 'AB-%'")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("code LIKE '__-1234'")
            .unwrap()
            .matches(&message));
        assert!(!Selector::parse("code LIKE 'AB-_'")
            .unwrap()
            .matches(&message));
        assert!(Selector::parse("code NOT LIKE 'XY%'")
            .unwrap()
            .matches(&message));
    }

    #[test]
    fn like_with_escape() {
        let message = message_with(&[("path", Value::from("100%_done"))]);
        assert!(Selector::parse("path LIKE '100!%!_done' ESCAPE '!'")
            .unwrap()
            .matches(&message));
        assert!(!Selector::parse("path LIKE '100!%!_later' ESCAPE '!'")
            .unwrap()
            .matches(&message));
    }

    #[test]
    fn is_null_checks() {
        let message = message_with(&[("set", Value::Int(1))]);
        assert!(Selector::parse("unset IS NULL").unwrap().matches(&message));
        assert!(Selector::parse("set IS NOT NULL")
            .unwrap()
            .matches(&message));
        assert!(!Selector::parse("set IS NULL").unwrap().matches(&message));
    }

    #[test]
    fn boolean_connectives_and_three_valued_logic() {
        let message = message_with(&[("a", Value::Bool(true))]);
        assert!(Selector::parse("a = TRUE").unwrap().matches(&message));
        assert!(Selector::parse("a = TRUE OR missing = 1")
            .unwrap()
            .matches(&message));
        // unknown AND true → unknown → no match
        assert!(!Selector::parse("missing = 1 AND a = TRUE")
            .unwrap()
            .matches(&message));
        // NOT unknown → unknown → no match
        assert!(!Selector::parse("NOT (missing = 1)")
            .unwrap()
            .matches(&message));
        // unknown OR true → true
        assert!(Selector::parse("missing = 1 OR a = TRUE")
            .unwrap()
            .matches(&message));
        // bare boolean property is a valid condition
        assert!(Selector::parse("a").unwrap().matches(&message));
        assert!(!Selector::parse("NOT a").unwrap().matches(&message));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let message = message_with(&[("size", Value::Int(5))]);
        assert!(
            Selector::parse("size between 1 and 10 and not (size is null)")
                .unwrap()
                .matches(&message)
        );
    }

    #[test]
    fn type_mismatch_is_unknown_not_error() {
        let message = message_with(&[("name", Value::from("x"))]);
        // string compared with < → unknown → no match, but no panic/err
        assert!(!Selector::parse("name < 'y'").unwrap().matches(&message));
        assert!(!Selector::parse("name + 1 = 2").unwrap().matches(&message));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = Selector::parse("a = ").unwrap_err();
        assert!(err.position() >= 3);
        assert!(!err.message().is_empty());
        assert!(Selector::parse("a ==== b").is_err());
        assert!(Selector::parse("(a = 1").is_err());
        assert!(Selector::parse("a = 'unterminated").is_err());
        assert!(Selector::parse("a = 1 extra").is_err());
        assert!(Selector::parse("IN (1)").is_err());
    }

    #[test]
    fn display_and_text_round_trip() {
        let selector = Selector::parse("a = 1").unwrap();
        assert_eq!(selector.text(), "a = 1");
        assert_eq!(selector.to_string(), "a = 1");
    }

    #[test]
    fn matches_with_custom_resolver() {
        let selector = Selector::parse("x > 10").unwrap();
        assert!(selector.matches_with(|name| { (name == "x").then_some(EvalValue::Long(11)) }));
        assert!(!selector.matches_with(|_| None));
    }

    #[test]
    fn quoted_string_escapes_doubled_quote() {
        let message = message_with(&[("q", Value::from("it's"))]);
        assert!(Selector::parse("q = 'it''s'").unwrap().matches(&message));
    }
}
