//! Messages: the draft a client builds ([`MessageDraft`]) and the stamped,
//! immutable [`Message`] a provider delivers.

use crate::body::Body;
use crate::destination::Destination;
use crate::id::{MessageId, ProducerId};
use crate::modes::{DeliveryMode, Priority, TimeToLive};
use crate::properties::{Properties, PropertyError};
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A message under construction, before a producer stamps it.
///
/// A draft carries everything the *client* chooses: body, priority,
/// delivery mode, time-to-live, correlation id, reply-to destination and
/// user properties. The provider supplies the rest — message id, producer
/// identity, sequence number, destination, and send timestamp — when the
/// draft is passed to [`Producer::send`](crate::provider::Producer::send).
///
/// # Examples
///
/// ```
/// use jmst_api::message::MessageDraft;
/// use jmst_api::body::Body;
/// use jmst_api::modes::{DeliveryMode, Priority};
///
/// let draft = MessageDraft::new(Body::text("hi"))
///     .priority(Priority::HIGHEST)
///     .delivery_mode(DeliveryMode::NonPersistent);
/// assert_eq!(draft.body().size_bytes(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageDraft {
    body: Body,
    delivery_mode: DeliveryMode,
    priority: Priority,
    time_to_live: TimeToLive,
    correlation_id: Option<String>,
    reply_to: Option<Destination>,
    message_type: Option<String>,
    properties: Properties,
}

impl MessageDraft {
    /// Creates a draft carrying `body` with default headers (persistent
    /// delivery, priority 4, no expiry).
    pub fn new(body: Body) -> Self {
        Self {
            body,
            ..Self::default()
        }
    }

    /// Creates a draft with a text body — the most common case in tests.
    pub fn text(text: impl Into<String>) -> Self {
        Self::new(Body::text(text))
    }

    /// Sets the delivery mode.
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery_mode = mode;
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the time-to-live.
    pub fn time_to_live(mut self, ttl: TimeToLive) -> Self {
        self.time_to_live = ttl;
        self
    }

    /// Sets the correlation id used to tie replies to requests.
    pub fn correlation_id(mut self, id: impl Into<String>) -> Self {
        self.correlation_id = Some(id.into());
        self
    }

    /// Sets the reply-to destination.
    pub fn reply_to(mut self, destination: Destination) -> Self {
        self.reply_to = Some(destination);
        self
    }

    /// Sets the application message type tag.
    pub fn message_type(mut self, message_type: impl Into<String>) -> Self {
        self.message_type = Some(message_type.into());
        self
    }

    /// Sets a user property.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is not a legal identifier or the value
    /// is a byte array; the draft is returned unchanged inside the error.
    pub fn property(
        mut self,
        name: impl Into<String>,
        value: Value,
    ) -> Result<Self, PropertyError> {
        self.properties.set(name, value)?;
        Ok(self)
    }

    /// Returns the draft body.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Returns the configured delivery mode.
    pub fn draft_delivery_mode(&self) -> DeliveryMode {
        self.delivery_mode
    }

    /// Returns the configured priority.
    pub fn draft_priority(&self) -> Priority {
        self.priority
    }

    /// Returns the configured time-to-live.
    pub fn draft_time_to_live(&self) -> TimeToLive {
        self.time_to_live
    }

    /// Returns the draft properties.
    pub fn draft_properties(&self) -> &Properties {
        &self.properties
    }

    /// Stamps the draft into a finished [`Message`].
    ///
    /// Providers call this at send time; client code normally never does.
    pub fn stamp(self, stamp: Stamp) -> Message {
        let expires_at = self
            .time_to_live
            .as_duration()
            .map(|ttl| stamp.sent_at.saturating_add(ttl));
        Message {
            inner: Arc::new(MessageInner {
                id: stamp.id,
                producer: stamp.producer,
                sequence: stamp.sequence,
                destination: stamp.destination,
                sent_at: stamp.sent_at,
                expires_at,
                delivery_mode: self.delivery_mode,
                priority: self.priority,
                time_to_live: self.time_to_live,
                correlation_id: self.correlation_id,
                reply_to: self.reply_to,
                message_type: self.message_type,
                properties: self.properties,
                body: self.body,
            }),
            redelivered: false,
            delivery_count: 1,
        }
    }
}

/// The provider-supplied headers applied when a draft is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamp {
    /// The unique message id.
    pub id: MessageId,
    /// The sending producer.
    pub producer: ProducerId,
    /// The per-producer sequence number (0, 1, 2, … in send order).
    pub sequence: u64,
    /// The destination the message was sent to.
    pub destination: Destination,
    /// The send timestamp.
    pub sent_at: Timestamp,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct MessageInner {
    id: MessageId,
    producer: ProducerId,
    sequence: u64,
    destination: Destination,
    sent_at: Timestamp,
    expires_at: Option<Timestamp>,
    delivery_mode: DeliveryMode,
    priority: Priority,
    time_to_live: TimeToLive,
    correlation_id: Option<String>,
    reply_to: Option<Destination>,
    message_type: Option<String>,
    properties: Properties,
    body: Body,
}

/// An immutable, stamped message.
///
/// Messages are cheaply cloneable (the payload is shared), which is how a
/// broker fans one publish out to many subscribers without copying the
/// body. Only the `redelivered` flag is per-delivery state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    #[serde(with = "arc_inner")]
    inner: Arc<MessageInner>,
    redelivered: bool,
    /// 1-based count of deliveries this instance represents (the JMS
    /// `JMSXDeliveryCount`).
    delivery_count: u32,
}

mod arc_inner {
    use super::MessageInner;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::sync::Arc;

    pub fn serialize<S: Serializer>(
        value: &Arc<MessageInner>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        value.as_ref().serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<Arc<MessageInner>, D::Error> {
        Ok(Arc::new(MessageInner::deserialize(deserializer)?))
    }
}

impl Message {
    /// Returns the unique message id.
    pub fn id(&self) -> MessageId {
        self.inner.id
    }

    /// Returns the producer that sent the message.
    pub fn producer(&self) -> ProducerId {
        self.inner.producer
    }

    /// Returns the per-producer sequence number.
    pub fn sequence(&self) -> u64 {
        self.inner.sequence
    }

    /// Returns the destination the message was sent to.
    pub fn destination(&self) -> &Destination {
        &self.inner.destination
    }

    /// Returns the send timestamp.
    pub fn sent_at(&self) -> Timestamp {
        self.inner.sent_at
    }

    /// Returns the expiry time, or `None` if the message never expires.
    pub fn expires_at(&self) -> Option<Timestamp> {
        self.inner.expires_at
    }

    /// Returns `true` if the message is expired at time `now`.
    ///
    /// # Examples
    ///
    /// ```
    /// use jmst_api::message::{MessageDraft, Stamp};
    /// use jmst_api::body::Body;
    /// use jmst_api::destination::Destination;
    /// use jmst_api::id::{MessageId, ProducerId};
    /// use jmst_api::modes::TimeToLive;
    /// use jmst_api::time::Timestamp;
    ///
    /// let message = MessageDraft::new(Body::text("x"))
    ///     .time_to_live(TimeToLive::from_millis(10))
    ///     .stamp(Stamp {
    ///         id: MessageId::from_raw(1),
    ///         producer: ProducerId::from_raw(1),
    ///         sequence: 0,
    ///         destination: Destination::queue("q"),
    ///         sent_at: Timestamp::from_millis(100),
    ///     });
    /// assert!(!message.is_expired_at(Timestamp::from_millis(105)));
    /// assert!(message.is_expired_at(Timestamp::from_millis(111)));
    /// ```
    pub fn is_expired_at(&self, now: Timestamp) -> bool {
        match self.inner.expires_at {
            Some(expiry) => now > expiry,
            None => false,
        }
    }

    /// Returns the delivery mode.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.inner.delivery_mode
    }

    /// Returns the priority.
    pub fn priority(&self) -> Priority {
        self.inner.priority
    }

    /// Returns the time-to-live the message was sent with.
    pub fn time_to_live(&self) -> TimeToLive {
        self.inner.time_to_live
    }

    /// Returns the correlation id, if set.
    pub fn correlation_id(&self) -> Option<&str> {
        self.inner.correlation_id.as_deref()
    }

    /// Returns the reply-to destination, if set.
    pub fn reply_to(&self) -> Option<&Destination> {
        self.inner.reply_to.as_ref()
    }

    /// Returns the application message type tag, if set.
    pub fn message_type(&self) -> Option<&str> {
        self.inner.message_type.as_deref()
    }

    /// Returns the user properties.
    pub fn properties(&self) -> &Properties {
        &self.inner.properties
    }

    /// Returns the body.
    pub fn body(&self) -> &Body {
        &self.inner.body
    }

    /// Returns the body payload size in bytes.
    pub fn body_size(&self) -> usize {
        self.inner.body.size_bytes()
    }

    /// Returns `true` if the provider marked this delivery as a redelivery
    /// (after session recovery or transaction rollback).
    pub fn is_redelivered(&self) -> bool {
        self.redelivered
    }

    /// Returns a copy of this message marked as redelivered.
    ///
    /// Providers use this when re-queueing messages after a rollback or
    /// recover; the shared payload is not copied. The delivery count is
    /// carried over unchanged — providers bump it with
    /// [`Message::with_delivery_count`] when they hand the copy out again.
    pub fn as_redelivered(&self) -> Message {
        Message {
            inner: Arc::clone(&self.inner),
            redelivered: true,
            delivery_count: self.delivery_count,
        }
    }

    /// Returns the 1-based delivery count (the JMS `JMSXDeliveryCount`):
    /// `1` for a first delivery, `n > 1` for the `n`-th attempt after
    /// recovery, rollback, or a broker crash. `0` means the count is
    /// unknown (a record from before the field existed).
    pub fn delivery_count(&self) -> u32 {
        self.delivery_count
    }

    /// Returns a copy of this message carrying the given delivery count;
    /// the shared payload is not copied.
    pub fn with_delivery_count(&self, delivery_count: u32) -> Message {
        Message {
            inner: Arc::clone(&self.inner),
            redelivered: self.redelivered,
            delivery_count,
        }
    }

    /// Returns `true` if `other` shares this message's payload storage
    /// (headers, properties and body behind the same allocation).
    ///
    /// A broker that fans one publish out to many subscribers without
    /// copying bodies delivers messages for which this holds against the
    /// sent original; tests use it to prove the hot path is zero-copy.
    pub fn shares_payload_with(&self, other: &Message) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} from {} seq {} to {} ({}, prio {}, {})",
            self.id(),
            self.producer(),
            self.sequence(),
            self.destination(),
            self.delivery_mode(),
            self.priority(),
            self.body()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp_at(millis: u64) -> Stamp {
        Stamp {
            id: MessageId::from_raw(9),
            producer: ProducerId::from_raw(2),
            sequence: 5,
            destination: Destination::topic("t"),
            sent_at: Timestamp::from_millis(millis),
        }
    }

    #[test]
    fn stamping_applies_headers() {
        let message = MessageDraft::text("payload")
            .priority(Priority::HIGHEST)
            .delivery_mode(DeliveryMode::NonPersistent)
            .correlation_id("corr-1")
            .reply_to(Destination::queue("replies"))
            .message_type("order")
            .stamp(stamp_at(50));
        assert_eq!(message.id(), MessageId::from_raw(9));
        assert_eq!(message.producer(), ProducerId::from_raw(2));
        assert_eq!(message.sequence(), 5);
        assert_eq!(message.destination(), &Destination::topic("t"));
        assert_eq!(message.sent_at(), Timestamp::from_millis(50));
        assert_eq!(message.priority(), Priority::HIGHEST);
        assert_eq!(message.delivery_mode(), DeliveryMode::NonPersistent);
        assert_eq!(message.correlation_id(), Some("corr-1"));
        assert_eq!(message.reply_to(), Some(&Destination::queue("replies")));
        assert_eq!(message.message_type(), Some("order"));
        assert_eq!(message.body_size(), 7);
        assert!(!message.is_redelivered());
    }

    #[test]
    fn forever_ttl_never_expires() {
        let message = MessageDraft::text("x").stamp(stamp_at(0));
        assert_eq!(message.expires_at(), None);
        assert!(!message.is_expired_at(Timestamp::from_secs(1_000_000)));
    }

    #[test]
    fn finite_ttl_expires_after_deadline() {
        let message = MessageDraft::text("x")
            .time_to_live(TimeToLive::from_millis(10))
            .stamp(stamp_at(100));
        assert_eq!(message.expires_at(), Some(Timestamp::from_millis(110)));
        assert!(!message.is_expired_at(Timestamp::from_millis(110)));
        assert!(message.is_expired_at(Timestamp::from_millis(111)));
    }

    #[test]
    fn redelivery_marks_flag_without_copying_payload() {
        let message = MessageDraft::text("x").stamp(stamp_at(0));
        let redelivered = message.as_redelivered();
        assert!(redelivered.is_redelivered());
        assert_eq!(redelivered.id(), message.id());
        assert!(Arc::ptr_eq(&message.inner, &redelivered.inner));
    }

    #[test]
    fn delivery_count_starts_at_one_and_travels_with_redeliveries() {
        let message = MessageDraft::text("x").stamp(stamp_at(0));
        assert_eq!(message.delivery_count(), 1);
        let second = message.as_redelivered().with_delivery_count(2);
        assert!(second.is_redelivered());
        assert_eq!(second.delivery_count(), 2);
        assert!(second.shares_payload_with(&message));
    }

    #[test]
    fn draft_properties_round_trip() {
        let draft = MessageDraft::text("x")
            .property("k", Value::Int(1))
            .unwrap();
        let message = draft.stamp(stamp_at(0));
        assert_eq!(message.properties().get("k"), Some(&Value::Int(1)));
    }

    #[test]
    fn draft_rejects_bad_property() {
        let result = MessageDraft::text("x").property("9bad", Value::Int(1));
        assert!(result.is_err());
    }

    #[test]
    fn draft_accessors() {
        let draft = MessageDraft::text("abc")
            .priority(Priority::LOWEST)
            .time_to_live(TimeToLive::from_millis(5));
        assert_eq!(draft.draft_priority(), Priority::LOWEST);
        assert_eq!(draft.draft_time_to_live().as_millis(), 5);
        assert_eq!(draft.draft_delivery_mode(), DeliveryMode::Persistent);
        assert!(draft.draft_properties().is_empty());
    }

    #[test]
    fn display_mentions_id_and_destination() {
        let message = MessageDraft::text("abc").stamp(stamp_at(0));
        let text = message.to_string();
        assert!(text.contains("msg-9"));
        assert!(text.contains("topic:t"));
    }
}
