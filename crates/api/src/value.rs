//! Typed values used for message properties and for the map and stream
//! message bodies, mirroring the primitive types of the JMS type system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A JMS-style primitive value.
///
/// Message properties may hold every variant except [`Value::Bytes`];
/// map and stream bodies may hold all of them. Numeric variants are kept
/// distinct (as in JMS) but can be compared through [`Value::as_f64`] /
/// [`Value::as_i64`], which is what the message-selector evaluator does.
///
/// # Examples
///
/// ```
/// use jmst_api::value::Value;
///
/// let v = Value::Int(42);
/// assert_eq!(v.as_i64(), Some(42));
/// assert_eq!(v.as_f64(), Some(42.0));
/// assert!(Value::from("text").as_str().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An 8-bit signed integer (JMS `byte`).
    Byte(i8),
    /// A 16-bit signed integer (JMS `short`).
    Short(i16),
    /// A 32-bit signed integer (JMS `int`).
    Int(i32),
    /// A 64-bit signed integer (JMS `long`).
    Long(i64),
    /// A 32-bit float (JMS `float`).
    Float(f32),
    /// A 64-bit float (JMS `double`).
    Double(f64),
    /// A string.
    String(String),
    /// A byte array (valid in map and stream bodies only).
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a signed 64-bit integer if it is any integral
    /// variant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Byte(v) => Some(i64::from(*v)),
            Value::Short(v) => Some(i64::from(*v)),
            Value::Int(v) => Some(i64::from(*v)),
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a 64-bit float if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Byte(v) => Some(f64::from(*v)),
            Value::Short(v) => Some(f64::from(*v)),
            Value::Int(v) => Some(f64::from(*v)),
            Value::Long(v) => Some(*v as f64),
            Value::Float(v) => Some(f64::from(*v)),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a byte slice, if it is a byte array.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns `true` if the value is any numeric variant.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Value::Byte(_)
                | Value::Short(_)
                | Value::Int(_)
                | Value::Long(_)
                | Value::Float(_)
                | Value::Double(_)
        )
    }

    /// Returns `true` if the value may legally appear as a message
    /// property (every variant except byte arrays).
    pub fn is_valid_property(&self) -> bool {
        !matches!(self, Value::Bytes(_))
    }

    /// Returns the approximate wire size of the value in bytes, used by the
    /// harness when accounting body bytes for byte-throughput measures.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Bool(_) | Value::Byte(_) => 1,
            Value::Short(_) => 2,
            Value::Int(_) | Value::Float(_) => 4,
            Value::Long(_) | Value::Double(_) => 8,
            Value::String(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Byte(v) => write!(f, "{v}"),
            Value::Short(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::String(v) => write!(f, "'{v}'"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i8> for Value {
    fn from(v: i8) -> Self {
        Value::Byte(v)
    }
}

impl From<i16> for Value {
    fn from(v: i16) -> Self {
        Value::Short(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_widening() {
        assert_eq!(Value::Byte(-3).as_i64(), Some(-3));
        assert_eq!(Value::Short(300).as_i64(), Some(300));
        assert_eq!(Value::Int(70_000).as_i64(), Some(70_000));
        assert_eq!(Value::Long(1 << 40).as_i64(), Some(1 << 40));
        assert_eq!(Value::Float(1.5).as_i64(), None);
        assert_eq!(Value::String("1".into()).as_i64(), None);
    }

    #[test]
    fn float_widening() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Double(2.25).as_f64(), Some(2.25));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn property_validity() {
        assert!(Value::Bool(true).is_valid_property());
        assert!(Value::String("x".into()).is_valid_property());
        assert!(!Value::Bytes(vec![1, 2]).is_valid_property());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Bool(true).wire_size(), 1);
        assert_eq!(Value::Short(1).wire_size(), 2);
        assert_eq!(Value::Int(1).wire_size(), 4);
        assert_eq!(Value::Long(1).wire_size(), 8);
        assert_eq!(Value::Float(1.0).wire_size(), 4);
        assert_eq!(Value::Double(1.0).wire_size(), 8);
        assert_eq!(Value::String("abcd".into()).wire_size(), 4);
        assert_eq!(Value::Bytes(vec![0; 10]).wire_size(), 10);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1i8), Value::Byte(1));
        assert_eq!(Value::from(1i16), Value::Short(1));
        assert_eq!(Value::from(1i32), Value::Int(1));
        assert_eq!(Value::from(1i64), Value::Long(1));
        assert_eq!(Value::from(1.0f32), Value::Float(1.0));
        assert_eq!(Value::from(1.0f64), Value::Double(1.0));
        assert_eq!(Value::from("x"), Value::String("x".into()));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::String("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
    }

    #[test]
    fn numeric_detection() {
        assert!(Value::Byte(0).is_numeric());
        assert!(Value::Double(0.0).is_numeric());
        assert!(!Value::Bool(false).is_numeric());
        assert!(!Value::String(String::new()).is_numeric());
        assert!(!Value::Bytes(Vec::new()).is_numeric());
    }
}
