//! The error type shared by all provider operations.

use crate::properties::PropertyError;
use crate::selector::SelectorError;
use std::fmt;

/// An error raised by a provider operation.
///
/// Mirrors the `JMSException` hierarchy at the granularity the harness
/// needs: what failed, and whether the failure is a client mistake
/// (illegal state, bad selector) or a provider-side failure (which the
/// harness logs as a test event).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The connection has been closed.
    ConnectionClosed,
    /// The session has been closed.
    SessionClosed,
    /// The producer or consumer has been closed.
    EndpointClosed,
    /// The operation is illegal in the current state (e.g. committing a
    /// non-transacted session).
    IllegalState(String),
    /// The named destination does not exist or is of the wrong kind.
    InvalidDestination(String),
    /// The client id or durable-subscription name is invalid or already in
    /// use.
    InvalidClient(String),
    /// A message selector failed to parse or evaluate.
    InvalidSelector(SelectorError),
    /// A message property was rejected.
    InvalidProperty(PropertyError),
    /// The provider failed internally (crashed, lost a resource, …).
    ProviderFailure(String),
    /// The provider refused the message because a resource limit was hit
    /// (bounded queue full on a non-blocking path).
    ResourceExhausted(String),
    /// The transaction was rolled back by the provider.
    TransactionRolledBack,
    /// The feature is not supported by this provider.
    Unsupported(String),
}

impl Error {
    /// Creates an [`Error::IllegalState`] with the given explanation.
    pub fn illegal_state(reason: impl Into<String>) -> Self {
        Error::IllegalState(reason.into())
    }

    /// Creates an [`Error::ProviderFailure`] with the given explanation.
    pub fn provider_failure(reason: impl Into<String>) -> Self {
        Error::ProviderFailure(reason.into())
    }

    /// Returns `true` if the error indicates the target object was closed.
    pub fn is_closed(&self) -> bool {
        matches!(
            self,
            Error::ConnectionClosed | Error::SessionClosed | Error::EndpointClosed
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ConnectionClosed => f.write_str("connection is closed"),
            Error::SessionClosed => f.write_str("session is closed"),
            Error::EndpointClosed => f.write_str("producer or consumer is closed"),
            Error::IllegalState(reason) => write!(f, "illegal state: {reason}"),
            Error::InvalidDestination(name) => write!(f, "invalid destination: {name}"),
            Error::InvalidClient(reason) => write!(f, "invalid client: {reason}"),
            Error::InvalidSelector(err) => write!(f, "invalid selector: {err}"),
            Error::InvalidProperty(err) => write!(f, "invalid property: {err}"),
            Error::ProviderFailure(reason) => write!(f, "provider failure: {reason}"),
            Error::ResourceExhausted(reason) => write!(f, "resource exhausted: {reason}"),
            Error::TransactionRolledBack => f.write_str("transaction was rolled back"),
            Error::Unsupported(feature) => write!(f, "unsupported feature: {feature}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidSelector(err) => Some(err),
            Error::InvalidProperty(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SelectorError> for Error {
    fn from(err: SelectorError) -> Self {
        Error::InvalidSelector(err)
    }
}

impl From<PropertyError> for Error {
    fn from(err: PropertyError) -> Self {
        Error::InvalidProperty(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_detection() {
        assert!(Error::ConnectionClosed.is_closed());
        assert!(Error::SessionClosed.is_closed());
        assert!(Error::EndpointClosed.is_closed());
        assert!(!Error::TransactionRolledBack.is_closed());
        assert!(!Error::illegal_state("x").is_closed());
    }

    #[test]
    fn displays_are_lowercase_and_concise() {
        for error in [
            Error::ConnectionClosed,
            Error::illegal_state("commit on non-transacted session"),
            Error::provider_failure("store lost"),
            Error::Unsupported("priority".into()),
        ] {
            let text = error.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn property_error_converts() {
        let property_error = PropertyError::InvalidName { name: "9".into() };
        let error: Error = property_error.clone().into();
        assert_eq!(error, Error::InvalidProperty(property_error));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
