//! # jmst-api — a JMS-style message-oriented-middleware API model
//!
//! This crate is the foundation of the *jmst* workspace, a reproduction of
//! Kuo & Palmer, **"Automated Analysis of Java Message Service Providers"**
//! (Middleware 2001). It renders the JMS 1.0.2 object model in Rust:
//!
//! * [`message`] — messages, drafts, and provider stamps;
//! * [`body`] — the five JMS body types (text, bytes, map, stream, object);
//! * [`destination`] — queues, topics, and analysis end-points;
//! * [`modes`] — delivery modes, session/acknowledgement modes, priorities
//!   and time-to-live;
//! * [`properties`] / [`value`] — typed user properties;
//! * [`selector`] — the SQL-92-subset message-selector language;
//! * [`provider`] — the object-safe `Provider` / `Connection` / `Session` /
//!   `Producer` / `Consumer` traits every broker in the workspace
//!   implements and the test harness drives;
//! * [`time`] — timestamps and the clock abstraction shared by real-time
//!   and simulated execution;
//! * [`id`] — strongly-typed identifiers.
//!
//! # Examples
//!
//! Build a message the way a harness producer does:
//!
//! ```
//! use jmst_api::prelude::*;
//!
//! let draft = MessageDraft::text("order #1")
//!     .priority(Priority::new(7).expect("valid level"))
//!     .delivery_mode(DeliveryMode::NonPersistent)
//!     .time_to_live(TimeToLive::from_millis(500))
//!     .property("region", Value::from("emea"))?;
//! assert_eq!(draft.body().size_bytes(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod body;
pub mod destination;
pub mod error;
pub mod id;
pub mod message;
pub mod modes;
pub mod properties;
pub mod provider;
pub mod selector;
pub mod time;
pub mod value;

/// Convenient glob-import of the types almost every user needs.
pub mod prelude {
    pub use crate::body::{Body, BodyKind};
    pub use crate::destination::{Destination, EndpointId, QueueName, TopicName};
    pub use crate::error::Error;
    pub use crate::id::{
        ClientId, ConnectionId, ConsumerId, IdGenerator, MessageId, NodeId, ProducerId, SessionId,
        TxId,
    };
    pub use crate::message::{Message, MessageDraft, Stamp};
    pub use crate::modes::{DeliveryMode, Priority, SessionMode, TimeToLive};
    pub use crate::properties::Properties;
    pub use crate::provider::{Connection, Consumer, Producer, Provider, Session};
    pub use crate::selector::Selector;
    pub use crate::time::{Clock, SystemClock, Timestamp};
    pub use crate::value::Value;
}
