//! Delivery modes, acknowledgement modes, priorities, and time-to-live —
//! the operational knobs of the JMS model that the paper's test
//! configurations sweep over (§3.2, §4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Whether a message survives provider failures.
///
/// Persistent messages are "guaranteed to eventually arrive at its
/// destination(s) even if failures (system or communication) occur"; for
/// non-persistent messages delivery is best-effort (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// The message may be lost on failure.
    NonPersistent,
    /// The message must survive failures.
    Persistent,
}

impl DeliveryMode {
    /// Returns `true` for [`DeliveryMode::Persistent`].
    pub const fn is_persistent(self) -> bool {
        matches!(self, DeliveryMode::Persistent)
    }

    /// All delivery modes, useful for configuration sweeps.
    pub const ALL: [DeliveryMode; 2] = [DeliveryMode::NonPersistent, DeliveryMode::Persistent];
}

impl Default for DeliveryMode {
    /// JMS defaults to persistent delivery.
    fn default() -> Self {
        DeliveryMode::Persistent
    }
}

impl fmt::Display for DeliveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeliveryMode::NonPersistent => "non-persistent",
            DeliveryMode::Persistent => "persistent",
        })
    }
}

/// Session mode: transacted, or one of the three acknowledgement modes for
/// non-transacted sessions (paper §2.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionMode {
    /// Sends and receives are grouped into transactions terminated by
    /// commit or rollback.
    Transacted,
    /// The session acknowledges each message automatically as it is
    /// delivered.
    #[default]
    AutoAcknowledge,
    /// The client acknowledges explicitly; an acknowledge covers all
    /// messages delivered so far on the session.
    ClientAcknowledge,
    /// Lazy acknowledgement: reduces session work but permits duplicate
    /// delivery after failures.
    DupsOkAcknowledge,
}

impl SessionMode {
    /// Returns `true` for [`SessionMode::Transacted`].
    pub const fn is_transacted(self) -> bool {
        matches!(self, SessionMode::Transacted)
    }

    /// Returns `true` if the mode tolerates duplicate delivery.
    ///
    /// Only lazy acknowledgement does; the paper notes that with lazy
    /// acknowledgement "duplicate messages may be delivered".
    pub const fn allows_duplicates(self) -> bool {
        matches!(self, SessionMode::DupsOkAcknowledge)
    }

    /// All session modes, useful for configuration sweeps.
    pub const ALL: [SessionMode; 4] = [
        SessionMode::Transacted,
        SessionMode::AutoAcknowledge,
        SessionMode::ClientAcknowledge,
        SessionMode::DupsOkAcknowledge,
    ];
}

impl fmt::Display for SessionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionMode::Transacted => "transacted",
            SessionMode::AutoAcknowledge => "auto-acknowledge",
            SessionMode::ClientAcknowledge => "client-acknowledge",
            SessionMode::DupsOkAcknowledge => "dups-ok-acknowledge",
        })
    }
}

/// A message priority in the JMS ten-level scheme.
///
/// "JMS defines a 10 level priority (0 − 9) where 9 is the highest priority
/// and 0 the lowest" (paper §2.1). Providers need only make a best effort to
/// deliver higher-priority messages first.
///
/// # Examples
///
/// ```
/// use jmst_api::modes::Priority;
///
/// let p = Priority::new(7).expect("7 is a valid level");
/// assert!(p > Priority::DEFAULT);
/// assert_eq!(Priority::new(10), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(u8);

impl Priority {
    /// The lowest priority, 0.
    pub const LOWEST: Priority = Priority(0);
    /// The JMS default priority, 4.
    pub const DEFAULT: Priority = Priority(4);
    /// The highest priority, 9.
    pub const HIGHEST: Priority = Priority(9);

    /// Creates a priority, returning `None` if `level` exceeds 9.
    pub const fn new(level: u8) -> Option<Priority> {
        if level <= 9 {
            Some(Priority(level))
        } else {
            None
        }
    }

    /// Creates a priority, clamping `level` into `0..=9`.
    pub const fn saturating(level: u8) -> Priority {
        if level > 9 {
            Priority(9)
        } else {
            Priority(level)
        }
    }

    /// Returns the numeric level in `0..=9`.
    pub const fn level(self) -> u8 {
        self.0
    }

    /// Iterates over all ten priorities from lowest to highest.
    pub fn all() -> impl DoubleEndedIterator<Item = Priority> + ExactSizeIterator {
        (0..=9).map(Priority)
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::DEFAULT
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u8> for Priority {
    type Error = PriorityOutOfRange;

    fn try_from(level: u8) -> Result<Self, Self::Error> {
        Priority::new(level).ok_or(PriorityOutOfRange { level })
    }
}

impl From<Priority> for u8 {
    fn from(priority: Priority) -> u8 {
        priority.0
    }
}

/// Error returned when constructing a [`Priority`] from a level above 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityOutOfRange {
    level: u8,
}

impl PriorityOutOfRange {
    /// The offending level.
    pub fn level(self) -> u8 {
        self.level
    }
}

impl fmt::Display for PriorityOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "priority level {} is outside 0..=9", self.level)
    }
}

impl std::error::Error for PriorityOutOfRange {}

/// A message's time-to-live.
///
/// A time-to-live of zero means the message never expires (paper §3.1,
/// footnote 4). Non-zero values bound the message's life from the moment it
/// is sent.
///
/// # Examples
///
/// ```
/// use jmst_api::modes::TimeToLive;
/// use std::time::Duration;
///
/// assert!(TimeToLive::FOREVER.is_forever());
/// let short = TimeToLive::from_millis(1);
/// assert_eq!(short.as_duration(), Some(Duration::from_millis(1)));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TimeToLive(u64);

impl TimeToLive {
    /// The "never expires" value (zero, as in JMS).
    pub const FOREVER: TimeToLive = TimeToLive(0);

    /// Creates a time-to-live of `millis` milliseconds; zero means forever.
    pub const fn from_millis(millis: u64) -> Self {
        TimeToLive(millis)
    }

    /// Creates a time-to-live from a duration, truncating to milliseconds.
    ///
    /// A duration shorter than one millisecond becomes 1 ms rather than the
    /// "forever" sentinel, so a caller asking for a tiny expiry gets one.
    pub fn from_duration(duration: Duration) -> Self {
        if duration.is_zero() {
            TimeToLive::FOREVER
        } else {
            TimeToLive((duration.as_millis() as u64).max(1))
        }
    }

    /// Returns `true` if the message never expires.
    pub const fn is_forever(self) -> bool {
        self.0 == 0
    }

    /// Returns the raw millisecond value (zero means forever).
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the time-to-live as a duration, or `None` if forever.
    pub fn as_duration(self) -> Option<Duration> {
        if self.is_forever() {
            None
        } else {
            Some(Duration::from_millis(self.0))
        }
    }
}

impl fmt::Display for TimeToLive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_forever() {
            f.write_str("forever")
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_mode_defaults_to_persistent() {
        assert_eq!(DeliveryMode::default(), DeliveryMode::Persistent);
        assert!(DeliveryMode::Persistent.is_persistent());
        assert!(!DeliveryMode::NonPersistent.is_persistent());
    }

    #[test]
    fn session_mode_duplicate_tolerance() {
        assert!(SessionMode::DupsOkAcknowledge.allows_duplicates());
        assert!(!SessionMode::AutoAcknowledge.allows_duplicates());
        assert!(!SessionMode::ClientAcknowledge.allows_duplicates());
        assert!(!SessionMode::Transacted.allows_duplicates());
        assert!(SessionMode::Transacted.is_transacted());
    }

    #[test]
    fn priority_construction_and_bounds() {
        assert_eq!(Priority::new(0), Some(Priority::LOWEST));
        assert_eq!(Priority::new(9), Some(Priority::HIGHEST));
        assert_eq!(Priority::new(10), None);
        assert_eq!(Priority::saturating(42), Priority::HIGHEST);
        assert_eq!(Priority::saturating(3).level(), 3);
        assert!(Priority::try_from(11).is_err());
        assert_eq!(Priority::try_from(11).unwrap_err().level(), 11);
        assert_eq!(u8::from(Priority::DEFAULT), 4);
    }

    #[test]
    fn priority_ordering_matches_levels() {
        assert!(Priority::HIGHEST > Priority::DEFAULT);
        assert!(Priority::LOWEST < Priority::DEFAULT);
        let all: Vec<_> = Priority::all().collect();
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ttl_zero_is_forever() {
        assert!(TimeToLive::FOREVER.is_forever());
        assert!(TimeToLive::from_millis(0).is_forever());
        assert_eq!(TimeToLive::FOREVER.as_duration(), None);
        assert_eq!(TimeToLive::from_millis(0).to_string(), "forever");
    }

    #[test]
    fn ttl_from_duration_rounds_up_to_a_millisecond() {
        let tiny = TimeToLive::from_duration(Duration::from_micros(10));
        assert_eq!(tiny.as_millis(), 1);
        assert!(TimeToLive::from_duration(Duration::ZERO).is_forever());
        assert_eq!(
            TimeToLive::from_duration(Duration::from_millis(250)).as_millis(),
            250
        );
    }

    #[test]
    fn displays() {
        assert_eq!(DeliveryMode::Persistent.to_string(), "persistent");
        assert_eq!(SessionMode::Transacted.to_string(), "transacted");
        assert_eq!(Priority::DEFAULT.to_string(), "4");
        assert_eq!(TimeToLive::from_millis(5).to_string(), "5ms");
    }
}
