//! Time representation shared by the real-time and simulated execution
//! engines.
//!
//! The paper's analysis matches send and receive timestamps that were taken
//! on NTP-synchronised machines. This module provides the [`Timestamp`]
//! value those log records carry and the [`Clock`] abstraction that lets the
//! same provider and harness code run against the operating-system clock or
//! a discrete-event virtual clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::{Duration, Instant};

/// A point in time, in nanoseconds since an arbitrary per-run epoch.
///
/// Timestamps from the same run are comparable; timestamps from different
/// runs are not. The paper records timestamps with millisecond precision
/// (the accuracy NTP provides); we keep nanoseconds internally so virtual
/// time never loses precision, and expose millisecond views for reports.
///
/// # Examples
///
/// ```
/// use jmst_api::time::Timestamp;
/// use std::time::Duration;
///
/// let t = Timestamp::from_nanos(1_500_000);
/// assert_eq!(t.as_millis(), 1);
/// assert_eq!(t + Duration::from_millis(2), Timestamp::from_nanos(3_500_000));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (the run epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from nanoseconds since the run epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates a timestamp from microseconds since the run epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates a timestamp from milliseconds since the run epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates a timestamp from whole seconds since the run epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Returns nanoseconds since the run epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns whole microseconds since the run epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns whole milliseconds since the run epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns seconds since the run epoch as a floating-point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, or [`Duration::ZERO`]
    /// if `earlier` is later than `self` (which can happen with skewed
    /// clocks, exactly the "apparently negative delays" the paper's
    /// footnote 6 describes).
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Returns the signed difference `self - earlier` in nanoseconds.
    ///
    /// Unlike [`Timestamp::saturating_since`], negative differences are
    /// preserved so the analysis can report negative delays rather than
    /// silently clamping them.
    pub fn signed_since(self, earlier: Timestamp) -> i64 {
        self.0 as i64 - earlier.0 as i64
    }

    /// Returns the timestamp moved forward by `duration`, saturating on
    /// overflow.
    pub fn saturating_add(self, duration: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(duration.as_nanos() as u64))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    /// Computes `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Timestamp::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: Timestamp) -> Duration {
        debug_assert!(self.0 >= rhs.0, "timestamp subtraction underflow");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A source of timestamps.
///
/// Providers stamp messages and the harness stamps log records through a
/// `Clock`, so the whole stack can run either in real time
/// ([`SystemClock`]) or in simulated time (the virtual clock in `jmst-sim`).
pub trait Clock: Send + Sync + fmt::Debug {
    /// Returns the current time.
    fn now(&self) -> Timestamp;
}

/// A [`Clock`] backed by [`Instant`], anchored at a single process-wide
/// epoch.
///
/// Every `SystemClock` in the process shares the same epoch (set the
/// first time one is created), so timestamps taken by different
/// components — the broker stamping messages, harness nodes logging
/// events — are directly comparable. This mirrors the paper's assumption
/// that all machines are NTP-synchronised; deliberate skew is modelled
/// explicitly with [`SkewedClock`].
///
/// # Examples
///
/// ```
/// use jmst_api::time::{Clock, SystemClock};
///
/// let clock = SystemClock::new();
/// let a = clock.now();
/// let b = SystemClock::new().now(); // a different instance, same epoch
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

static PROCESS_EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();

impl SystemClock {
    /// Creates a clock on the shared process-wide epoch.
    pub fn new() -> Self {
        Self {
            epoch: *PROCESS_EPOCH.get_or_init(Instant::now),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A [`Clock`] that adds a fixed skew to an inner clock.
///
/// Used by the harness to model imperfectly synchronised machines: the paper
/// relies on NTP's millisecond accuracy, and footnote 6 observes that skew
/// can surface as apparently negative message delays. Wrapping one node's
/// clock in `SkewedClock` reproduces that effect deterministically.
#[derive(Debug)]
pub struct SkewedClock<C> {
    inner: C,
    skew_nanos: i64,
}

impl<C: Clock> SkewedClock<C> {
    /// Wraps `inner`, shifting every reading by `skew_nanos` (which may be
    /// negative; readings saturate at the epoch).
    pub fn new(inner: C, skew_nanos: i64) -> Self {
        Self { inner, skew_nanos }
    }

    /// Returns the configured skew in nanoseconds.
    pub fn skew_nanos(&self) -> i64 {
        self.skew_nanos
    }
}

impl<C: Clock> Clock for SkewedClock<C> {
    fn now(&self) -> Timestamp {
        let base = self.inner.now().as_nanos() as i64;
        Timestamp::from_nanos(base.saturating_add(self.skew_nanos).max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_unit_conversions() {
        let t = Timestamp::from_millis(2_500);
        assert_eq!(t.as_nanos(), 2_500_000_000);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t.as_millis(), 2_500);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert_eq!(Timestamp::from_secs(3), Timestamp::from_millis(3_000));
        assert_eq!(Timestamp::from_micros(5), Timestamp::from_nanos(5_000));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(10);
        let later = t + Duration::from_millis(5);
        assert_eq!(later - t, Duration::from_millis(5));
        let mut u = t;
        u += Duration::from_millis(1);
        assert_eq!(u, Timestamp::from_millis(11));
    }

    #[test]
    fn saturating_since_clamps_negative_differences() {
        let early = Timestamp::from_millis(1);
        let late = Timestamp::from_millis(4);
        assert_eq!(late.saturating_since(early), Duration::from_millis(3));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn signed_since_preserves_negative_differences() {
        let early = Timestamp::from_millis(1);
        let late = Timestamp::from_millis(4);
        assert_eq!(late.signed_since(early), 3_000_000);
        assert_eq!(early.signed_since(late), -3_000_000);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let mut previous = clock.now();
        for _ in 0..100 {
            let now = clock.now();
            assert!(now >= previous);
            previous = now;
        }
    }

    #[derive(Debug)]
    struct FixedClock(Timestamp);

    impl Clock for FixedClock {
        fn now(&self) -> Timestamp {
            self.0
        }
    }

    #[test]
    fn skewed_clock_shifts_readings() {
        let base = FixedClock(Timestamp::from_millis(100));
        let ahead = SkewedClock::new(base, 5_000_000);
        assert_eq!(ahead.now(), Timestamp::from_millis(105));
        assert_eq!(ahead.skew_nanos(), 5_000_000);

        let base = FixedClock(Timestamp::from_millis(100));
        let behind = SkewedClock::new(base, -7_000_000);
        assert_eq!(behind.now(), Timestamp::from_millis(93));
    }

    #[test]
    fn skewed_clock_saturates_at_epoch() {
        let base = FixedClock(Timestamp::from_millis(1));
        let far_behind = SkewedClock::new(base, -10_000_000_000);
        assert_eq!(far_behind.now(), Timestamp::ZERO);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(Timestamp::from_millis(1_500).to_string(), "1.500000s");
    }
}
