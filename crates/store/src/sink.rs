//! Streaming event sinks and the canonical-order event stream.
//!
//! The batch pipeline logs a whole run into a [`Trace`] and analyses it
//! post hoc; this module is the streaming alternative. A
//! [`Recorder`](crate::Recorder) forwards every stamped event to its
//! attached [`EventSink`]s, so the in-memory batch log, a live analyzer
//! fed through a bounded channel, and the disk/CSV spill formats are all
//! just different consumers of one emission path:
//!
//! ```text
//! drivers ──> Recorder ──┬─> VecSink        (the batch Trace)
//!                        ├─> ChannelSink ─> EventStream ─> ReorderBuffer ─> live checkers
//!                        └─> JsonlSink / CsvSink  (spill to disk)
//! ```
//!
//! Events are emitted in *logging* order, which can differ from canonical
//! `(at, seq)` order when nodes race or clocks skew; [`EventStream`] runs
//! a bounded [`ReorderBuffer`] keyed on [`Event::ord_key`] so downstream
//! checkers see the same order the batch [`Trace`] would give them.

use crate::event::Event;
use crate::trace::Trace;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::Write;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// A consumer of trace events, fed live as they are recorded.
///
/// Implementations must tolerate events arriving in logging order (not
/// canonical order) and must never panic on malformed-looking input: a
/// sink failure should degrade to dropped output, not a failed run.
pub trait EventSink: Send {
    /// Offers one recorded event to the sink.
    fn accept(&mut self, event: &Event);

    /// Signals that no further events will arrive. Channel-backed sinks
    /// hang up; file-backed sinks flush. The default does nothing.
    fn close(&mut self) {}
}

/// An [`EventSink`] that collects events into a shared `Vec` — the batch
/// [`Trace`] expressed as one more stream consumer.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl VecSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sink plus a shared handle onto its backing vector, for
    /// observing what was collected after the sink was boxed away.
    pub fn shared() -> (Self, Arc<Mutex<Vec<Event>>>) {
        let sink = Self::new();
        let handle = Arc::clone(&sink.events);
        (sink, handle)
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the collected events as a canonical [`Trace`].
    pub fn trace(&self) -> Trace {
        Trace::from_events(self.events.lock().clone())
    }
}

impl EventSink for VecSink {
    fn accept(&mut self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// The sending half of a bounded live-event channel; pair it with the
/// [`EventStream`] returned by [`channel`].
///
/// Sends block when the stream consumer falls `capacity` events behind
/// (bounded memory, applied as backpressure on the recording side). Once
/// the consumer hangs up, the sink silently drops further events.
#[derive(Debug)]
pub struct ChannelSink {
    sender: Option<SyncSender<Event>>,
}

impl EventSink for ChannelSink {
    fn accept(&mut self, event: &Event) {
        if let Some(sender) = &self.sender {
            if sender.send(event.clone()).is_err() {
                self.sender = None;
            }
        }
    }

    fn close(&mut self) {
        self.sender = None;
    }
}

/// A bounded min-heap that re-establishes canonical `(at, seq)` order over
/// an almost-sorted event stream.
///
/// Events arrive in logging order; an event can be logged late by at most
/// the scheduling/clock-skew window, so holding back the most recent
/// `depth` events and emitting the canonically smallest once the buffer
/// overflows restores canonical order for any displacement ≤ `depth`.
#[derive(Debug)]
pub struct ReorderBuffer {
    depth: usize,
    heap: BinaryHeap<Reverse<OrdByKey>>,
}

#[derive(Debug)]
struct OrdByKey(Event);

impl PartialEq for OrdByKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.ord_key() == other.0.ord_key()
    }
}

impl Eq for OrdByKey {}

impl PartialOrd for OrdByKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdByKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.ord_key().cmp(&other.0.ord_key())
    }
}

impl ReorderBuffer {
    /// Creates a buffer that holds back at most `depth` events.
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            heap: BinaryHeap::new(),
        }
    }

    /// Inserts an event; returns the canonically smallest buffered event
    /// once more than `depth` events are held.
    pub fn push(&mut self, event: Event) -> Option<Event> {
        self.heap.push(Reverse(OrdByKey(event)));
        if self.heap.len() > self.depth {
            self.pop()
        } else {
            None
        }
    }

    /// Removes and returns the canonically smallest buffered event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(OrdByKey(event))| event)
    }

    /// Number of events currently held back.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The receiving half of a live-event channel: iterates events in
/// canonical `(at, seq)` order, terminating once every [`ChannelSink`]
/// clone has closed and the reorder buffer has drained.
#[derive(Debug)]
pub struct EventStream {
    receiver: Receiver<Event>,
    buffer: ReorderBuffer,
    disconnected: bool,
}

impl EventStream {
    /// Events currently held in the reorder buffer (resident state of the
    /// transport, for memory accounting).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl Iterator for EventStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if self.disconnected {
                return self.buffer.pop();
            }
            match self.receiver.recv() {
                Ok(event) => {
                    if let Some(ready) = self.buffer.push(event) {
                        return Some(ready);
                    }
                }
                Err(_) => self.disconnected = true,
            }
        }
    }
}

/// Creates a bounded live-event channel: a [`ChannelSink`] to attach to a
/// [`Recorder`](crate::Recorder) and the [`EventStream`] a consumer
/// iterates.
///
/// `reorder_depth` bounds how far out of canonical order logging may run
/// (events displaced further are emitted out of order — the differential
/// tests catch a too-small depth); `capacity` bounds the channel, applying
/// backpressure to recording when the consumer lags.
pub fn channel(reorder_depth: usize, capacity: usize) -> (ChannelSink, EventStream) {
    let (sender, receiver) = std::sync::mpsc::sync_channel(capacity.max(1));
    (
        ChannelSink {
            sender: Some(sender),
        },
        EventStream {
            receiver,
            buffer: ReorderBuffer::new(reorder_depth),
            disconnected: false,
        },
    )
}

/// An [`EventSink`] that spills events to a JSON-Lines writer — the
/// streaming counterpart of [`crate::disk::write_jsonl`].
///
/// Events are written in logging order; [`crate::disk::read_jsonl`]
/// re-sorts on load. Write errors disable the sink (the run must not fail
/// because a spill target did).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Option<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Creates a sink spilling to `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Some(writer),
        }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn accept(&mut self, event: &Event) {
        if let Some(writer) = &mut self.writer {
            let ok = serde_json::to_writer(&mut *writer, event).is_ok()
                && writer.write_all(b"\n").is_ok();
            if !ok {
                self.writer = None;
            }
        }
    }

    fn close(&mut self) {
        if let Some(mut writer) = self.writer.take() {
            let _ = writer.flush();
        }
    }
}

/// An [`EventSink`] that spills send/receive events to a CSV writer — the
/// streaming counterpart of [`crate::csv::trace_to_csv`], sharing its
/// column schema.
#[derive(Debug)]
pub struct CsvSink<W: Write + Send> {
    writer: Option<W>,
    header_written: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Creates a sink spilling to `writer`; the header row is written
    /// before the first event.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Some(writer),
            header_written: false,
        }
    }
}

impl<W: Write + Send> EventSink for CsvSink<W> {
    fn accept(&mut self, event: &Event) {
        let Some(writer) = &mut self.writer else {
            return;
        };
        if !self.header_written {
            self.header_written = true;
            if writer
                .write_all(crate::csv::event_csv_header().as_bytes())
                .is_err()
            {
                self.writer = None;
                return;
            }
        }
        if let Some(line) = crate::csv::event_csv_line(event) {
            if writer.write_all(line.as_bytes()).is_err() {
                self.writer = None;
            }
        }
    }

    fn close(&mut self) {
        if let Some(mut writer) = self.writer.take() {
            let _ = writer.flush();
        }
    }
}

/// An [`EventSink`] that fans each event out to several sinks.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl TeeSink {
    /// Creates an empty tee.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a downstream sink.
    pub fn add(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Builder form of [`TeeSink::add`].
    #[must_use]
    pub fn with(mut self, sink: Box<dyn EventSink>) -> Self {
        self.add(sink);
        self
    }
}

impl EventSink for TeeSink {
    fn accept(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.accept(event);
        }
    }

    fn close(&mut self) {
        for sink in &mut self.sinks {
            sink.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use jmst_api::id::NodeId;
    use jmst_api::time::Timestamp;

    fn event(seq: u64, at_ms: u64) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::BrokerCrashed,
        }
    }

    #[test]
    fn reorder_buffer_restores_canonical_order_within_depth() {
        let mut buffer = ReorderBuffer::new(4);
        let mut out = Vec::new();
        // Logging order scrambled by up to 3 positions.
        for e in [
            event(3, 30),
            event(1, 10),
            event(2, 20),
            event(0, 5),
            event(5, 50),
            event(4, 40),
        ] {
            out.extend(buffer.push(e));
        }
        while let Some(e) = buffer.pop() {
            out.push(e);
        }
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn reorder_buffer_ties_break_on_seq() {
        let mut buffer = ReorderBuffer::new(8);
        buffer.push(event(2, 10));
        buffer.push(event(1, 10));
        buffer.push(event(0, 10));
        assert_eq!(buffer.pop().unwrap().seq, 0);
        assert_eq!(buffer.pop().unwrap().seq, 1);
        assert_eq!(buffer.pop().unwrap().seq, 2);
        assert!(buffer.is_empty());
    }

    #[test]
    fn channel_stream_yields_canonical_order_and_terminates() {
        let (mut sink, stream) = channel(8, 64);
        for e in [event(1, 10), event(0, 5), event(2, 20)] {
            sink.accept(&e);
        }
        sink.close();
        let seqs: Vec<u64> = stream.map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn channel_sink_survives_dropped_receiver() {
        let (mut sink, stream) = channel(8, 2);
        drop(stream);
        // Would deadlock on a blocking send if the hang-up were not
        // detected; must simply drop the events instead.
        for i in 0..8 {
            sink.accept(&event(i, i));
        }
    }

    #[test]
    fn vec_sink_collects_and_snapshots() {
        let (mut sink, handle) = VecSink::shared();
        assert!(sink.is_empty());
        sink.accept(&event(1, 10));
        sink.accept(&event(0, 5));
        assert_eq!(sink.len(), 2);
        assert_eq!(handle.lock().len(), 2);
        let seqs: Vec<u64> = sink.trace().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1]);
    }

    #[test]
    fn jsonl_sink_round_trips_through_disk_reader() {
        let mut buffer = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buffer);
            sink.accept(&event(1, 10));
            sink.accept(&event(0, 5));
            sink.close();
        }
        let trace = crate::disk::read_jsonl(buffer.as_slice()).unwrap();
        let seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1]);
    }

    #[test]
    fn tee_fans_out_and_closes_all() {
        let (a, a_events) = VecSink::shared();
        let (b, b_events) = VecSink::shared();
        let mut tee = TeeSink::new().with(Box::new(a)).with(Box::new(b));
        tee.accept(&event(0, 1));
        tee.close();
        assert_eq!(a_events.lock().len(), 1);
        assert_eq!(b_events.lock().len(), 1);
    }
}
