//! Trace persistence: JSON-Lines event logs.
//!
//! The paper's tests log each event "to disk, along with the unique
//! message identifier and a timestamp", and the daemon prince later
//! collects the logs (§4). This module provides that durable form: one
//! JSON object per line, append-friendly, mergeable across nodes, and
//! diffable by humans.

use crate::event::Event;
use crate::trace::Trace;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// An error reading or writing persisted traces.
#[derive(Debug)]
pub enum DiskError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not a valid event record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The JSON decoder's complaint.
        reason: String,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(error) => write!(f, "trace i/o failed: {error}"),
            DiskError::Malformed { line, reason } => {
                write!(f, "malformed trace record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(error) => Some(error),
            DiskError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for DiskError {
    fn from(error: std::io::Error) -> Self {
        DiskError::Io(error)
    }
}

/// Writes a trace as JSON Lines. A mutable reference to any `Write`
/// works (`&mut file`).
///
/// # Errors
///
/// Returns [`DiskError::Io`] on write failure.
pub fn write_jsonl<W: Write>(trace: &Trace, mut writer: W) -> Result<(), DiskError> {
    for event in trace {
        serde_json::to_writer(&mut writer, event)
            .map_err(|e| DiskError::Io(std::io::Error::other(e)))?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON-Lines trace, re-sorting into canonical order (so logs
/// appended by concurrent nodes merge correctly). Blank lines are
/// skipped.
///
/// # Errors
///
/// Returns [`DiskError::Malformed`] with the offending line number if a
/// record does not parse.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Trace, DiskError> {
    let mut events = Vec::new();
    for (index, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(&line).map_err(|e| DiskError::Malformed {
            line: index + 1,
            reason: e.to_string(),
        })?;
        events.push(event);
    }
    Ok(Trace::from_events(events))
}

impl Trace {
    /// Saves the trace to `path` as JSON Lines.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Io`] on file-system failure.
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> Result<(), DiskError> {
        let file = std::fs::File::create(path)?;
        write_jsonl(self, std::io::BufWriter::new(file))
    }

    /// Loads a trace previously saved with [`Trace::save_jsonl`] (or
    /// assembled by concatenating several such files).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Io`] on file-system failure or
    /// [`DiskError::Malformed`] for corrupt records.
    pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Trace, DiskError> {
        read_jsonl(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, MessageRecord, Phase};
    use jmst_api::destination::{Destination, EndpointId};
    use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId};
    use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
    use jmst_api::time::Timestamp;
    use jmst_api::value::Value;

    fn sample_trace() -> Trace {
        let mut properties = jmst_api::properties::Properties::new();
        properties.set("region", Value::from("emea")).unwrap();
        properties.set("attempt", Value::Int(2)).unwrap();
        let record = MessageRecord {
            message: MessageId::from_raw(7),
            producer: ProducerId::from_raw(1),
            sequence: 3,
            destination: Destination::topic("t"),
            priority: Priority::HIGHEST,
            delivery_mode: DeliveryMode::NonPersistent,
            time_to_live: TimeToLive::from_millis(250),
            sent_at: Timestamp::from_millis(12),
            body_bytes: 64,
            redelivered: true,
            delivery_count: 1,
            properties,
        };
        Trace::from_events(vec![
            Event {
                seq: 0,
                at: Timestamp::ZERO,
                node: NodeId::from_raw(0),
                kind: EventKind::PhaseStarted { phase: Phase::Run },
            },
            Event {
                seq: 1,
                at: Timestamp::from_millis(12),
                node: NodeId::from_raw(1),
                kind: EventKind::Send {
                    record: record.clone(),
                    session: SessionId::from_raw(5),
                    tx: None,
                },
            },
            Event {
                seq: 2,
                at: Timestamp::from_millis(15),
                node: NodeId::from_raw(2),
                kind: EventKind::Receive {
                    consumer: ConsumerId::from_raw(9),
                    endpoint: EndpointId::non_durable("t".into(), ConsumerId::from_raw(9)),
                    record,
                    session: SessionId::from_raw(6),
                    tx: None,
                },
            },
            Event {
                seq: 3,
                at: Timestamp::from_millis(20),
                node: NodeId::from_raw(0),
                kind: EventKind::BrokerCrashed,
            },
        ])
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_jsonl(&trace, &mut buffer).unwrap();
        let loaded = read_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn one_event_per_line() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_jsonl(&trace, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), trace.len());
        assert!(text.lines().all(|l| l.starts_with('{')));
    }

    #[test]
    fn concatenated_node_logs_merge_on_load() {
        let trace = sample_trace();
        // Split by node, as separate per-node log files would be.
        let mut parts = Vec::new();
        for node in 0..3u64 {
            let part: Trace = trace
                .iter()
                .filter(|e| e.node.as_u64() == node)
                .cloned()
                .collect();
            let mut buffer = Vec::new();
            write_jsonl(&part, &mut buffer).unwrap();
            parts.push(buffer);
        }
        let concatenated: Vec<u8> = parts.concat();
        let loaded = read_jsonl(concatenated.as_slice()).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_is_reported() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_jsonl(&trace, &mut buffer).unwrap();
        let mut text = String::from_utf8(buffer).unwrap();
        text.insert_str(0, "\n\n");
        assert_eq!(read_jsonl(text.as_bytes()).unwrap(), trace);
        text.push_str("not json\n");
        let error = read_jsonl(text.as_bytes()).unwrap_err();
        match error {
            DiskError::Malformed { line, .. } => assert_eq!(line, trace.len() + 3),
            other => panic!("expected malformed, got {other}"),
        }
    }

    #[test]
    fn file_save_and_load() {
        let trace = sample_trace();
        let path =
            std::env::temp_dir().join(format!("jmst-trace-test-{}.jsonl", std::process::id()));
        trace.save_jsonl(&path).unwrap();
        let loaded = Trace::load_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let error = Trace::load_jsonl("/nonexistent/trace.jsonl").unwrap_err();
        assert!(matches!(error, DiskError::Io(_)));
        assert!(error.to_string().contains("i/o"));
    }
}
