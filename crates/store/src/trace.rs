//! Traces and the thread-safe recorder the harness logs through.

use crate::event::{Event, EventKind, Phase};
use jmst_api::id::NodeId;
use jmst_api::time::{Clock, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An execution trace: the complete, ordered log of one test run.
///
/// Events are ordered by `(at, seq)` — timestamp first, recorder sequence
/// as the tie-breaker — which is the order the analysis model consumes
/// them in.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from raw events, sorting them into canonical order.
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|event| (event.at, event.seq));
        Self { events }
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Merges several per-node traces into one, re-sorting into canonical
    /// order — what the daemon prince does when test logs "are collected
    /// and returned" (paper §4).
    pub fn merge<I: IntoIterator<Item = Trace>>(traces: I) -> Trace {
        let mut events = Vec::new();
        for trace in traces {
            events.extend(trace.events);
        }
        Trace::from_events(events)
    }

    /// Returns the time the given phase started, if recorded.
    pub fn phase_start(&self, phase: Phase) -> Option<Timestamp> {
        self.events.iter().find_map(|event| match &event.kind {
            EventKind::PhaseStarted { phase: p } if *p == phase => Some(event.at),
            _ => None,
        })
    }

    /// Returns the measured window `[run start, warm-down start)`, the
    /// period the paper computes performance over. Falls back to the whole
    /// trace when phase markers are missing.
    pub fn run_window(&self) -> (Timestamp, Timestamp) {
        let start = self
            .phase_start(Phase::Run)
            .or_else(|| self.events.first().map(|e| e.at))
            .unwrap_or(Timestamp::ZERO);
        let end = self
            .phase_start(Phase::WarmDown)
            .or_else(|| self.events.last().map(|e| e.at))
            .unwrap_or(start);
        (start, end)
    }

    /// The timestamp of the last event, or zero for an empty trace.
    pub fn end(&self) -> Timestamp {
        self.events.last().map(|e| e.at).unwrap_or(Timestamp::ZERO)
    }
}

impl IntoIterator for Trace {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::from_events(iter.into_iter().collect())
    }
}

impl Extend<Event> for Trace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
        self.events.sort_by_key(|event| (event.at, event.seq));
    }
}

#[derive(Debug, Default)]
struct RecorderShared {
    events: Mutex<Vec<Event>>,
    next_seq: AtomicU64,
}

/// A thread-safe event recorder shared by every driver in a test run.
///
/// Cloning is cheap; all clones append to the same log. Each harness node
/// logs through a [`NodeRecorder`] that stamps its node id and reads its
/// own clock — which may be deliberately skewed to model imperfect NTP
/// synchronisation.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    shared: Arc<RecorderShared>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the per-node logging handle.
    pub fn node(&self, node: NodeId, clock: Arc<dyn Clock>) -> NodeRecorder {
        NodeRecorder {
            shared: Arc::clone(&self.shared),
            node,
            clock,
        }
    }

    /// Number of events logged so far.
    pub fn len(&self) -> usize {
        self.shared.events.lock().len()
    }

    /// Returns `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a snapshot of the log as a canonical [`Trace`].
    pub fn snapshot(&self) -> Trace {
        Trace::from_events(self.shared.events.lock().clone())
    }

    /// Consumes the recorder, returning the final trace. Other clones keep
    /// working; this simply snapshots and drops this handle.
    pub fn into_trace(self) -> Trace {
        self.snapshot()
    }
}

/// A recorder handle bound to one harness node and its clock.
#[derive(Debug, Clone)]
pub struct NodeRecorder {
    shared: Arc<RecorderShared>,
    node: NodeId,
    clock: Arc<dyn Clock>,
}

impl NodeRecorder {
    /// Logs an event, stamping the node id, node clock time, and a global
    /// sequence number.
    pub fn record(&self, kind: EventKind) {
        let event = Event {
            seq: self.shared.next_seq.fetch_add(1, Ordering::Relaxed),
            at: self.clock.now(),
            node: self.node,
            kind,
        };
        self.shared.events.lock().push(event);
    }

    /// Logs an event with an explicit timestamp (used when the moment of
    /// interest is not "now", e.g. a send stamped by the provider).
    pub fn record_at(&self, at: Timestamp, kind: EventKind) {
        let event = Event {
            seq: self.shared.next_seq.fetch_add(1, Ordering::Relaxed),
            at,
            node: self.node,
            kind,
        };
        self.shared.events.lock().push(event);
    }

    /// The node this handle logs as.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The clock this handle stamps events with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::time::SystemClock;

    fn event(seq: u64, at_ms: u64) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::BrokerCrashed,
        }
    }

    #[test]
    fn from_events_sorts_canonically() {
        let trace = Trace::from_events(vec![event(2, 30), event(0, 10), event(1, 10)]);
        let seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert_eq!(trace.end(), Timestamp::from_millis(30));
    }

    #[test]
    fn merge_combines_and_sorts() {
        let a = Trace::from_events(vec![event(0, 10), event(2, 30)]);
        let b = Trace::from_events(vec![event(1, 20)]);
        let merged = Trace::merge([a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, [10, 20, 30]);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn phase_markers_define_run_window() {
        let mut events = vec![event(0, 0)];
        events.push(Event {
            seq: 1,
            at: Timestamp::from_millis(100),
            node: NodeId::from_raw(0),
            kind: EventKind::PhaseStarted { phase: Phase::Run },
        });
        events.push(Event {
            seq: 2,
            at: Timestamp::from_millis(900),
            node: NodeId::from_raw(0),
            kind: EventKind::PhaseStarted {
                phase: Phase::WarmDown,
            },
        });
        let trace = Trace::from_events(events);
        assert_eq!(
            trace.run_window(),
            (Timestamp::from_millis(100), Timestamp::from_millis(900))
        );
        assert_eq!(trace.phase_start(Phase::WarmUp), None);
    }

    #[test]
    fn run_window_falls_back_to_whole_trace() {
        let trace = Trace::from_events(vec![event(0, 5), event(1, 50)]);
        assert_eq!(
            trace.run_window(),
            (Timestamp::from_millis(5), Timestamp::from_millis(50))
        );
        let empty = Trace::new();
        assert_eq!(empty.run_window(), (Timestamp::ZERO, Timestamp::ZERO));
    }

    #[test]
    fn recorder_clones_share_the_log() {
        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let a = recorder.node(NodeId::from_raw(1), Arc::clone(&clock));
        let b = recorder.node(NodeId::from_raw(2), clock);
        a.record(EventKind::BrokerCrashed);
        b.record(EventKind::BrokerRecovered);
        assert_eq!(recorder.len(), 2);
        let trace = recorder.snapshot();
        let nodes: Vec<u64> = trace.iter().map(|e| e.node.as_u64()).collect();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.contains(&1) && nodes.contains(&2));
    }

    #[test]
    fn recorder_seq_is_globally_unique_across_threads() {
        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let node = recorder.node(NodeId::from_raw(i), Arc::clone(&clock));
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        node.record(EventKind::BrokerCrashed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let trace = recorder.into_trace();
        let mut seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 1000);
    }

    #[test]
    fn record_at_uses_explicit_timestamp() {
        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let node = recorder.node(NodeId::from_raw(0), clock);
        node.record_at(Timestamp::from_millis(123), EventKind::BrokerCrashed);
        assert_eq!(
            recorder.snapshot().events()[0].at,
            Timestamp::from_millis(123)
        );
    }

    #[test]
    fn trace_collect_and_extend() {
        let mut trace: Trace = vec![event(1, 20)].into_iter().collect();
        trace.extend(vec![event(0, 10)]);
        let times: Vec<u64> = trace.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, [10, 20]);
    }
}
