//! Traces and the thread-safe recorder the harness logs through.

use crate::event::{Event, EventKind, Phase};
use crate::sink::EventSink;
use jmst_api::id::NodeId;
use jmst_api::time::{Clock, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Two events in one trace carried the same canonical `(at, seq)` key, so
/// their relative order is meaningless. Returned by
/// [`Trace::try_from_events`]; a recorder-produced trace can never trigger
/// it because recorder sequence numbers are globally unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateOrdKey {
    /// The timestamp shared by the colliding events.
    pub at: Timestamp,
    /// The sequence number shared by the colliding events.
    pub seq: u64,
}

impl fmt::Display for DuplicateOrdKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duplicate canonical order key (at={}, seq={})",
            self.at, self.seq
        )
    }
}

impl std::error::Error for DuplicateOrdKey {}

/// An execution trace: the complete, ordered log of one test run.
///
/// Events are ordered by `(at, seq)` — timestamp first, recorder sequence
/// as the tie-breaker — which is the order the analysis model consumes
/// them in.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from raw events, sorting them into canonical order.
    ///
    /// The sort is stable and keyed on [`Event::ord_key`], so events that
    /// share an `(at, seq)` key keep their input (first-logged) order
    /// deterministically rather than an arbitrary one. Such collisions
    /// indicate a malformed trace; use [`Trace::try_from_events`] to reject
    /// them instead of tolerating them.
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort_by_key(Event::ord_key);
        Self { events }
    }

    /// Builds a trace from raw events, rejecting duplicate `(at, seq)` keys.
    ///
    /// Recorder-stamped traces have globally unique sequence numbers, so a
    /// collision means the events came from different runs or a corrupted
    /// log — analysing them would silently depend on an arbitrary order.
    ///
    /// # Errors
    ///
    /// Returns the first colliding key as a [`DuplicateOrdKey`].
    pub fn try_from_events(events: Vec<Event>) -> Result<Self, DuplicateOrdKey> {
        let trace = Self::from_events(events);
        for pair in trace.events.windows(2) {
            if pair[0].ord_key() == pair[1].ord_key() {
                return Err(DuplicateOrdKey {
                    at: pair[0].at,
                    seq: pair[0].seq,
                });
            }
        }
        Ok(trace)
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Merges several per-node traces into one, re-sorting into canonical
    /// order — what the daemon prince does when test logs "are collected
    /// and returned" (paper §4).
    pub fn merge<I: IntoIterator<Item = Trace>>(traces: I) -> Trace {
        let mut events = Vec::new();
        for trace in traces {
            events.extend(trace.events);
        }
        Trace::from_events(events)
    }

    /// Returns the time the given phase started, if recorded.
    pub fn phase_start(&self, phase: Phase) -> Option<Timestamp> {
        self.events.iter().find_map(|event| match &event.kind {
            EventKind::PhaseStarted { phase: p } if *p == phase => Some(event.at),
            _ => None,
        })
    }

    /// Returns the measured window `[run start, warm-down start)`, the
    /// period the paper computes performance over. Falls back to the whole
    /// trace when phase markers are missing.
    pub fn run_window(&self) -> (Timestamp, Timestamp) {
        let start = self
            .phase_start(Phase::Run)
            .or_else(|| self.events.first().map(|e| e.at))
            .unwrap_or(Timestamp::ZERO);
        let end = self
            .phase_start(Phase::WarmDown)
            .or_else(|| self.events.last().map(|e| e.at))
            .unwrap_or(start);
        (start, end)
    }

    /// The timestamp of the last event, or zero for an empty trace.
    pub fn end(&self) -> Timestamp {
        self.events.last().map(|e| e.at).unwrap_or(Timestamp::ZERO)
    }
}

impl IntoIterator for Trace {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::from_events(iter.into_iter().collect())
    }
}

impl Extend<Event> for Trace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
        self.events.sort_by_key(Event::ord_key);
    }
}

#[derive(Default)]
struct RecorderShared {
    events: Mutex<Vec<Event>>,
    next_seq: AtomicU64,
    sinks: Mutex<Vec<Box<dyn EventSink>>>,
}

impl fmt::Debug for RecorderShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecorderShared")
            .field("events", &self.events.lock().len())
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .field("sinks", &self.sinks.lock().len())
            .finish()
    }
}

impl RecorderShared {
    fn log(&self, event: Event) {
        let mut sinks = self.sinks.lock();
        if !sinks.is_empty() {
            for sink in sinks.iter_mut() {
                sink.accept(&event);
            }
        }
        drop(sinks);
        self.events.lock().push(event);
    }
}

/// A thread-safe event recorder shared by every driver in a test run.
///
/// Cloning is cheap; all clones append to the same log. Each harness node
/// logs through a [`NodeRecorder`] that stamps its node id and reads its
/// own clock — which may be deliberately skewed to model imperfect NTP
/// synchronisation.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    shared: Arc<RecorderShared>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the per-node logging handle.
    pub fn node(&self, node: NodeId, clock: Arc<dyn Clock>) -> NodeRecorder {
        NodeRecorder {
            shared: Arc::clone(&self.shared),
            node,
            clock,
        }
    }

    /// Number of events logged so far.
    pub fn len(&self) -> usize {
        self.shared.events.lock().len()
    }

    /// Returns `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a snapshot of the log as a canonical [`Trace`].
    pub fn snapshot(&self) -> Trace {
        Trace::from_events(self.shared.events.lock().clone())
    }

    /// Consumes the recorder, returning the final trace. Other clones keep
    /// working; this simply snapshots and drops this handle.
    pub fn into_trace(self) -> Trace {
        self.snapshot()
    }

    /// Attaches a live [`EventSink`]: every event recorded from now on is
    /// offered to the sink (in logging order, before canonical reordering)
    /// in addition to the in-memory log.
    ///
    /// This is the streaming tap: attach a
    /// [`ChannelSink`](crate::ChannelSink) and the paired
    /// [`EventStream`](crate::EventStream) sees the run live, while
    /// [`Recorder::snapshot`] keeps working for batch consumers.
    pub fn attach_sink(&self, sink: Box<dyn EventSink>) {
        self.shared.sinks.lock().push(sink);
    }

    /// Closes and detaches every attached sink.
    ///
    /// Channel-backed sinks hang up their sending side, which lets the
    /// consuming [`EventStream`](crate::EventStream) drain its reorder
    /// buffer and terminate. The runner calls this once the drivers are
    /// done, on every exit path.
    pub fn close_sinks(&self) {
        let mut sinks = std::mem::take(&mut *self.shared.sinks.lock());
        for sink in sinks.iter_mut() {
            sink.close();
        }
    }
}

/// A recorder handle bound to one harness node and its clock.
#[derive(Debug, Clone)]
pub struct NodeRecorder {
    shared: Arc<RecorderShared>,
    node: NodeId,
    clock: Arc<dyn Clock>,
}

impl NodeRecorder {
    /// Logs an event, stamping the node id, node clock time, and a global
    /// sequence number.
    pub fn record(&self, kind: EventKind) {
        let event = Event {
            seq: self.shared.next_seq.fetch_add(1, Ordering::Relaxed),
            at: self.clock.now(),
            node: self.node,
            kind,
        };
        self.shared.log(event);
    }

    /// Logs an event with an explicit timestamp (used when the moment of
    /// interest is not "now", e.g. a send stamped by the provider).
    pub fn record_at(&self, at: Timestamp, kind: EventKind) {
        let event = Event {
            seq: self.shared.next_seq.fetch_add(1, Ordering::Relaxed),
            at,
            node: self.node,
            kind,
        };
        self.shared.log(event);
    }

    /// The node this handle logs as.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The clock this handle stamps events with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::time::SystemClock;

    fn event(seq: u64, at_ms: u64) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::BrokerCrashed,
        }
    }

    #[test]
    fn from_events_sorts_canonically() {
        let trace = Trace::from_events(vec![event(2, 30), event(0, 10), event(1, 10)]);
        let seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert_eq!(trace.end(), Timestamp::from_millis(30));
    }

    #[test]
    fn from_events_is_stable_on_duplicate_keys() {
        // Two events with the same (at, seq) key: the stable sort must keep
        // their input order, deterministically, however many times we sort.
        let mut first = event(7, 10);
        first.node = NodeId::from_raw(1);
        let mut second = event(7, 10);
        second.node = NodeId::from_raw(2);
        let trace = Trace::from_events(vec![first.clone(), second.clone(), event(0, 5)]);
        let nodes: Vec<u64> = trace.iter().map(|e| e.node.as_u64()).collect();
        assert_eq!(nodes, [0, 1, 2]);
    }

    #[test]
    fn try_from_events_rejects_duplicate_keys() {
        let error = Trace::try_from_events(vec![event(7, 10), event(7, 10)]).unwrap_err();
        assert_eq!(
            error,
            DuplicateOrdKey {
                at: Timestamp::from_millis(10),
                seq: 7
            }
        );
        assert!(error.to_string().contains("seq=7"));
    }

    #[test]
    fn try_from_events_accepts_unique_keys() {
        let trace = Trace::try_from_events(vec![event(1, 10), event(0, 10), event(2, 5)]).unwrap();
        let seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 0, 1]);
    }

    #[test]
    fn attached_sink_sees_every_recorded_event_and_close() {
        use crate::sink::VecSink;
        use std::sync::atomic::AtomicBool;

        #[derive(Debug)]
        struct ClosedFlag(Arc<AtomicBool>);
        impl EventSink for ClosedFlag {
            fn accept(&mut self, _event: &Event) {}
            fn close(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }

        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let node = recorder.node(NodeId::from_raw(0), clock);
        node.record(EventKind::BrokerCrashed);

        let (sink, collected) = VecSink::shared();
        recorder.attach_sink(Box::new(sink));
        let closed = Arc::new(AtomicBool::new(false));
        recorder.attach_sink(Box::new(ClosedFlag(Arc::clone(&closed))));

        node.record(EventKind::BrokerRecovered);
        node.record(EventKind::BrokerCrashed);
        // The sink only sees events recorded after it was attached.
        assert_eq!(collected.lock().len(), 2);
        assert_eq!(recorder.len(), 3);

        recorder.close_sinks();
        assert!(closed.load(Ordering::SeqCst));
        node.record(EventKind::BrokerRecovered);
        // Detached after close: no further deliveries.
        assert_eq!(collected.lock().len(), 2);
        assert_eq!(recorder.len(), 4);
    }

    #[test]
    fn merge_combines_and_sorts() {
        let a = Trace::from_events(vec![event(0, 10), event(2, 30)]);
        let b = Trace::from_events(vec![event(1, 20)]);
        let merged = Trace::merge([a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, [10, 20, 30]);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn phase_markers_define_run_window() {
        let mut events = vec![event(0, 0)];
        events.push(Event {
            seq: 1,
            at: Timestamp::from_millis(100),
            node: NodeId::from_raw(0),
            kind: EventKind::PhaseStarted { phase: Phase::Run },
        });
        events.push(Event {
            seq: 2,
            at: Timestamp::from_millis(900),
            node: NodeId::from_raw(0),
            kind: EventKind::PhaseStarted {
                phase: Phase::WarmDown,
            },
        });
        let trace = Trace::from_events(events);
        assert_eq!(
            trace.run_window(),
            (Timestamp::from_millis(100), Timestamp::from_millis(900))
        );
        assert_eq!(trace.phase_start(Phase::WarmUp), None);
    }

    #[test]
    fn run_window_falls_back_to_whole_trace() {
        let trace = Trace::from_events(vec![event(0, 5), event(1, 50)]);
        assert_eq!(
            trace.run_window(),
            (Timestamp::from_millis(5), Timestamp::from_millis(50))
        );
        let empty = Trace::new();
        assert_eq!(empty.run_window(), (Timestamp::ZERO, Timestamp::ZERO));
    }

    #[test]
    fn recorder_clones_share_the_log() {
        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let a = recorder.node(NodeId::from_raw(1), Arc::clone(&clock));
        let b = recorder.node(NodeId::from_raw(2), clock);
        a.record(EventKind::BrokerCrashed);
        b.record(EventKind::BrokerRecovered);
        assert_eq!(recorder.len(), 2);
        let trace = recorder.snapshot();
        let nodes: Vec<u64> = trace.iter().map(|e| e.node.as_u64()).collect();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.contains(&1) && nodes.contains(&2));
    }

    #[test]
    fn recorder_seq_is_globally_unique_across_threads() {
        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let node = recorder.node(NodeId::from_raw(i), Arc::clone(&clock));
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        node.record(EventKind::BrokerCrashed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let trace = recorder.into_trace();
        let mut seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 1000);
    }

    #[test]
    fn record_at_uses_explicit_timestamp() {
        let recorder = Recorder::new();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let node = recorder.node(NodeId::from_raw(0), clock);
        node.record_at(Timestamp::from_millis(123), EventKind::BrokerCrashed);
        assert_eq!(
            recorder.snapshot().events()[0].at,
            Timestamp::from_millis(123)
        );
    }

    #[test]
    fn trace_collect_and_extend() {
        let mut trace: Trace = vec![event(1, 20)].into_iter().collect();
        trace.extend(vec![event(0, 10)]);
        let times: Vec<u64> = trace.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, [10, 20]);
    }
}
