//! Append-only, tamper-evident campaign journal.
//!
//! The multi-process prince logs every control decision and every
//! collected trace event to a journal file so an interrupted campaign
//! (crash, `kill -9`, power loss) can be resumed from the last completed
//! test instead of being rerun from scratch. The journal is designed for
//! the two failure modes that actually happen to append-only logs:
//!
//! * **Truncation** — the process died mid-write. The file ends with a
//!   partial frame; everything before it is intact and trustworthy.
//! * **Corruption/tampering** — bytes changed after being written. Each
//!   frame carries a CRC32 of its payload (catches bit rot cheaply) and
//!   a chained HMAC-SHA256 (catches deliberate modification, record
//!   reordering, and splicing records between journals keyed
//!   differently).
//!
//! ## Wire format
//!
//! ```text
//! file   := magic record*
//! magic  := "JMSTJNL1" (8 bytes)
//! record := len:u32le crc:u32le payload[len] mac[32]
//! mac_i  := HMAC-SHA256(key, mac_{i-1} || payload_i)   (mac_{-1} = 0^32)
//! ```
//!
//! The payload is the JSON encoding of one [`JournalRecord`]. Because
//! each MAC covers the previous MAC, verifying record *i* transitively
//! verifies the whole prefix: a reader that walks the file front to back
//! and checks each MAC either accepts the entire prefix or pinpoints the
//! first bad frame. [`Journal::salvage`] does exactly that, returning
//! the valid prefix plus a typed description of the damage, which the
//! prince maps onto the existing `Inconclusive` machinery.
//!
//! SHA-256, HMAC, and CRC32 are implemented here (the build is offline;
//! no crypto crates are available). They are checked against published
//! test vectors in this module's tests.

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// File magic: identifies a v1 jmst journal.
pub const JOURNAL_MAGIC: &[u8; 8] = b"JMSTJNL1";

/// Upper bound on a single record's payload. A frame whose length field
/// exceeds this is corrupt (a flipped bit in `len` must not make the
/// reader treat the rest of the file as one giant truncated record).
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

const MAC_LEN: usize = 32;
const FRAME_HEADER_LEN: usize = 8; // len + crc

// ---------------------------------------------------------------------
// SHA-256 / HMAC-SHA256 / CRC32 (self-contained; offline build)
// ---------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4).
struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Sha256 {
    fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut buf = [0u8; 64];
            buf.copy_from_slice(block);
            self.compress(&buf);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.update(&bit_length.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finish()
}

/// HMAC-SHA256 over the concatenation of `parts` (RFC 2104).
pub fn hmac_sha256(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// CRC32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Key
// ---------------------------------------------------------------------

/// The HMAC key authenticating a journal.
///
/// The same key must be supplied on resume; a journal written under a
/// different key fails verification at its first record with
/// [`JournalError::MacMismatch`].
#[derive(Clone)]
pub struct JournalKey([u8; 32]);

impl JournalKey {
    /// A key from exact bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Derives a key from a passphrase (SHA-256 of the UTF-8 bytes).
    pub fn from_passphrase(passphrase: &str) -> Self {
        Self(sha256(passphrase.as_bytes()))
    }

    fn bytes(&self) -> &[u8] {
        &self.0
    }
}

impl Default for JournalKey {
    /// The key used when no explicit key is configured — campaigns keyed
    /// this way are tamper-*evident*, not tamper-*proof* (anyone with the
    /// source can re-sign), which is all the harness needs to distinguish
    /// its own clean shutdowns from damaged files.
    fn default() -> Self {
        Self::from_passphrase("jmst-journal-v1")
    }
}

impl fmt::Debug for JournalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("JournalKey(..)")
    }
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// Provider-independent summary of a finished test, rich enough to
/// re-render a campaign report without re-running the test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictRecord {
    /// `"passed"`, `"violated"`, `"hung"`, `"inconclusive"`, `"invalid"`.
    pub status: String,
    /// Hung stage / inconclusive reason / invalid message; empty otherwise.
    pub detail: String,
    /// Number of property violations found.
    pub violations: u64,
    /// Messages sent in the analysed trace.
    pub sends: u64,
    /// Messages received in the analysed trace.
    pub receives: u64,
}

/// One entry in the campaign journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum JournalRecord {
    /// Campaign opened: the schedule the prince committed to.
    CampaignStarted {
        /// Campaign name (journal files are one campaign each).
        campaign: String,
        /// Scheduled test names, in order.
        tests: Vec<String>,
        /// SHA-256 (hex) over the serialized specs, so a resume refuses
        /// to continue a journal under a different schedule.
        spec_digest: String,
    },
    /// A test attempt began.
    TestStarted {
        /// Index into the campaign schedule.
        index: usize,
        /// Test name.
        name: String,
        /// 1-based attempt number (respawns rerun the same index).
        attempt: u32,
    },
    /// One collected trace event (streamed from the driver).
    Event {
        /// Index of the test the event belongs to.
        index: usize,
        /// The event itself.
        event: Event,
    },
    /// An attempt was abandoned (worker death, timeout); its events are
    /// superseded by the next attempt's.
    AttemptAborted {
        /// Index of the test.
        index: usize,
        /// The attempt that died.
        attempt: u32,
        /// Why.
        reason: String,
    },
    /// A test completed with a verdict. Only tests with this marker are
    /// skipped on resume.
    TestFinished {
        /// Index into the campaign schedule.
        index: usize,
        /// Test name.
        name: String,
        /// The verdict.
        verdict: VerdictRecord,
    },
    /// The campaign ran to completion.
    CampaignFinished {
        /// Count of passed tests.
        passed: usize,
        /// Count of violated tests.
        violated: usize,
        /// Count of hung/inconclusive/invalid tests.
        failed: usize,
    },
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a journal could not be read (or read completely).
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadHeader,
    /// The file ends mid-frame: a crash interrupted an append. The bytes
    /// before `offset` form a verified prefix.
    TruncatedTail {
        /// Byte offset where the partial frame starts.
        offset: u64,
        /// Index the truncated record would have had.
        index: usize,
    },
    /// A frame's payload fails its CRC (bit rot / corruption in place).
    CorruptRecord {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// Record index of the damaged frame.
        index: usize,
    },
    /// A frame's chained HMAC does not verify: the payload was altered
    /// after writing, records were reordered, or the key is wrong.
    MacMismatch {
        /// Byte offset of the unverifiable frame.
        offset: u64,
        /// Record index of the unverifiable frame.
        index: usize,
    },
    /// A frame verified (CRC and MAC) but its payload is not a valid
    /// [`JournalRecord`] — a version skew, not damage.
    Malformed {
        /// Record index of the undecodable payload.
        index: usize,
        /// Decoder diagnostic.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::BadHeader => write!(f, "not a jmst journal (bad magic)"),
            JournalError::TruncatedTail { offset, index } => write!(
                f,
                "journal truncated mid-record {index} at byte {offset} (interrupted append)"
            ),
            JournalError::CorruptRecord { offset, index } => {
                write!(f, "journal record {index} at byte {offset} fails its CRC")
            }
            JournalError::MacMismatch { offset, index } => write!(
                f,
                "journal record {index} at byte {offset} fails HMAC verification \
                 (tampering or wrong key)"
            ),
            JournalError::Malformed { index, reason } => {
                write!(f, "journal record {index} does not decode: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Appends records to a journal, maintaining the MAC chain.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    key: JournalKey,
    mac: [u8; 32],
    records: usize,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path`.
    pub fn create(path: impl AsRef<Path>, key: &JournalKey) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        Ok(Self {
            file,
            key: key.clone(),
            mac: [0u8; 32],
            records: 0,
        })
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write fails; the journal should be
    /// considered dead at that point.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload = serde_json::to_string(record)
            .map_err(|e| JournalError::Malformed {
                index: self.records,
                reason: e.to_string(),
            })?
            .into_bytes();
        let mac = hmac_sha256(self.key.bytes(), &[&self.mac, &payload]);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + MAC_LEN);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&mac);
        // One write call per record: a crash can truncate the tail frame
        // but never interleave two frames.
        self.file.write_all(&frame)?;
        self.mac = mac;
        self.records += 1;
        Ok(())
    }

    /// Asks the OS to push appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Number of records appended through this writer (plus any salvaged
    /// prefix it resumed after).
    pub fn records(&self) -> usize {
        self.records
    }
}

// ---------------------------------------------------------------------
// Reader / salvage / resume
// ---------------------------------------------------------------------

/// The result of scanning a journal front to back.
#[derive(Debug)]
pub struct Salvage {
    /// The verified prefix, in order.
    pub records: Vec<JournalRecord>,
    /// What stopped the scan, if anything: `None` means the file is
    /// intact end to end.
    pub damage: Option<JournalError>,
    /// Byte length of the verified prefix (including the magic). The
    /// file can be truncated to this length to discard the damage.
    pub valid_len: u64,
    /// MAC-chain state after the last verified record — the state a
    /// writer needs to append after the prefix.
    mac: [u8; 32],
}

impl Salvage {
    /// `true` when the whole file verified.
    pub fn intact(&self) -> bool {
        self.damage.is_none()
    }
}

/// Entry points for reading and resuming journals.
#[derive(Debug)]
pub struct Journal;

impl Journal {
    /// Reads and fully verifies a journal.
    ///
    /// # Errors
    ///
    /// Any damage anywhere in the file is an error ([`JournalError`]
    /// pinpointing the first bad frame); use [`Journal::salvage`] to
    /// recover the valid prefix instead.
    pub fn read(
        path: impl AsRef<Path>,
        key: &JournalKey,
    ) -> Result<Vec<JournalRecord>, JournalError> {
        let salvage = Self::salvage(path, key)?;
        match salvage.damage {
            None => Ok(salvage.records),
            Some(damage) => Err(damage),
        }
    }

    /// Scans a journal front to back, verifying CRCs and the MAC chain,
    /// and returns the longest valid prefix along with the damage (if
    /// any) that stopped the scan.
    ///
    /// # Errors
    ///
    /// Only environmental failures ([`JournalError::Io`],
    /// [`JournalError::BadHeader`]) are errors — damage *within* the
    /// file is reported in [`Salvage::damage`], not as an `Err`.
    pub fn salvage(path: impl AsRef<Path>, key: &JournalKey) -> Result<Salvage, JournalError> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < JOURNAL_MAGIC.len() || &data[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(JournalError::BadHeader);
        }
        let mut records = Vec::new();
        let mut mac = [0u8; 32];
        let mut pos = JOURNAL_MAGIC.len();
        let mut index = 0usize;
        let damage = loop {
            if pos == data.len() {
                break None;
            }
            let offset = pos as u64;
            if data.len() - pos < FRAME_HEADER_LEN {
                break Some(JournalError::TruncatedTail { offset, index });
            }
            let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
            let crc =
                u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            if len > MAX_RECORD_LEN {
                // A length this absurd is a damaged header, not a record
                // the writer could have produced.
                break Some(JournalError::CorruptRecord { offset, index });
            }
            let body_start = pos + FRAME_HEADER_LEN;
            let frame_end = body_start + len as usize + MAC_LEN;
            if frame_end > data.len() {
                break Some(JournalError::TruncatedTail { offset, index });
            }
            let payload = &data[body_start..body_start + len as usize];
            if crc32(payload) != crc {
                break Some(JournalError::CorruptRecord { offset, index });
            }
            let expected = hmac_sha256(key.bytes(), &[&mac, payload]);
            let stored = &data[body_start + len as usize..frame_end];
            if stored != expected {
                break Some(JournalError::MacMismatch { offset, index });
            }
            let record = match std::str::from_utf8(payload)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
            {
                Ok(record) => record,
                Err(reason) => break Some(JournalError::Malformed { index, reason }),
            };
            records.push(record);
            mac = expected;
            pos = frame_end;
            index += 1;
        };
        Ok(Salvage {
            records,
            damage,
            valid_len: pos as u64,
            mac,
        })
    }

    /// Opens a journal for appending after verification: the valid
    /// prefix is kept, any damaged suffix is truncated away, and the
    /// returned writer continues the MAC chain from the last verified
    /// record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] / [`JournalError::BadHeader`] as in
    /// [`Journal::salvage`].
    pub fn resume(
        path: impl AsRef<Path>,
        key: &JournalKey,
    ) -> Result<(JournalWriter, Salvage), JournalError> {
        let path = path.as_ref();
        let salvage = Self::salvage(path, key)?;
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(salvage.valid_len)?;
        let mut file = file;
        file.seek_end()?;
        let writer = JournalWriter {
            file,
            key: key.clone(),
            mac: salvage.mac,
            records: salvage.records.len(),
        };
        Ok((writer, salvage))
    }
}

/// `Seek::seek(SeekFrom::End(0))` without importing the trait at every
/// call site.
trait SeekEnd {
    fn seek_end(&mut self) -> std::io::Result<u64>;
}

impl SeekEnd for File {
    fn seek_end(&mut self) -> std::io::Result<u64> {
        use std::io::{Seek, SeekFrom};
        self.seek(SeekFrom::End(0))
    }
}

/// Computes the campaign schedule digest recorded in
/// [`JournalRecord::CampaignStarted`]: SHA-256 (hex) over the
/// length-prefixed serialized specs, so reordering or editing any spec
/// changes the digest.
pub fn schedule_digest<S: AsRef<str>>(serialized_specs: &[S]) -> String {
    let mut hasher = Sha256::new();
    for spec in serialized_specs {
        let bytes = spec.as_ref().as_bytes();
        hasher.update(&(bytes.len() as u64).to_le_bytes());
        hasher.update(bytes);
    }
    hex(&hasher.finish())
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push(char::from_digit(u32::from(byte >> 4), 16).unwrap());
        out.push(char::from_digit(u32::from(byte & 0xf), 16).unwrap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_published_vectors() {
        // FIPS 180-4 / NIST examples.
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A multi-block message exercising the buffered path.
        let long = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&long)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_sha256_matches_rfc_4231() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, &[b"Hi There"]);
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2 ("Jefe"), split across parts to check the
        // multi-part path concatenates correctly.
        let mac = hmac_sha256(b"Jefe", &[b"what do ya want ", b"for nothing?"]);
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 131-byte key (hashed-key path).
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            &[b"Test Using Larger Than Block-Size Key - Hash Key First".as_ref()],
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn crc32_matches_the_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn record(i: usize) -> JournalRecord {
        JournalRecord::TestStarted {
            index: i,
            name: format!("test-{i}"),
            attempt: 1,
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jmst-journal-{tag}-{}.jrnl", std::process::id()))
    }

    #[test]
    fn round_trips_records_through_the_file() {
        let path = temp_path("roundtrip");
        let key = JournalKey::default();
        let mut writer = JournalWriter::create(&path, &key).unwrap();
        let written: Vec<JournalRecord> = (0..5).map(record).collect();
        for r in &written {
            writer.append(r).unwrap();
        }
        drop(writer);
        let read = Journal::read(&path, &key).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(read, written);
    }

    #[test]
    fn resume_continues_the_chain_seamlessly() {
        let path = temp_path("resume");
        let key = JournalKey::default();
        let mut writer = JournalWriter::create(&path, &key).unwrap();
        writer.append(&record(0)).unwrap();
        writer.append(&record(1)).unwrap();
        drop(writer);
        let (mut writer, salvage) = Journal::resume(&path, &key).unwrap();
        assert!(salvage.intact());
        assert_eq!(salvage.records.len(), 2);
        assert_eq!(writer.records(), 2);
        writer.append(&record(2)).unwrap();
        drop(writer);
        let read = Journal::read(&path, &key).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(read, vec![record(0), record(1), record(2)]);
    }

    #[test]
    fn wrong_key_is_a_mac_mismatch_at_the_first_record() {
        let path = temp_path("wrongkey");
        let mut writer = JournalWriter::create(&path, &JournalKey::default()).unwrap();
        writer.append(&record(0)).unwrap();
        drop(writer);
        let err = Journal::read(&path, &JournalKey::from_passphrase("other")).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, JournalError::MacMismatch { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn not_a_journal_is_a_bad_header() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        let err = Journal::read(&path, &JournalKey::default()).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, JournalError::BadHeader), "{err}");
    }

    #[test]
    fn schedule_digest_is_order_sensitive() {
        let a = schedule_digest(&["alpha", "beta"]);
        let b = schedule_digest(&["beta", "alpha"]);
        let c = schedule_digest(&["alphabeta"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, schedule_digest(&["alpha", "beta"]));
    }
}
