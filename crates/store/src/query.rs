//! Small relational combinators — the grouping and aggregation the
//! paper's SQL reports are built from, over the typed tables of
//! [`TraceStore`](crate::table::TraceStore).

use std::collections::HashMap;
use std::hash::Hash;

/// Groups rows by a key function (SQL `GROUP BY`).
///
/// # Examples
///
/// ```
/// use jmst_store::query::group_by;
///
/// let rows = ["apple", "avocado", "banana"];
/// let groups = group_by(rows.iter(), |s| s.chars().next().unwrap());
/// assert_eq!(groups[&'a'].len(), 2);
/// assert_eq!(groups[&'b'].len(), 1);
/// ```
pub fn group_by<T, K, I, F>(rows: I, key: F) -> HashMap<K, Vec<T>>
where
    I: IntoIterator<Item = T>,
    K: Eq + Hash,
    F: Fn(&T) -> K,
{
    let mut groups: HashMap<K, Vec<T>> = HashMap::new();
    for row in rows {
        groups.entry(key(&row)).or_default().push(row);
    }
    groups
}

/// Counts rows per key (SQL `SELECT key, COUNT(*) … GROUP BY key`).
pub fn count_by<T, K, I, F>(rows: I, key: F) -> HashMap<K, u64>
where
    I: IntoIterator<Item = T>,
    K: Eq + Hash,
    F: Fn(&T) -> K,
{
    let mut counts: HashMap<K, u64> = HashMap::new();
    for row in rows {
        *counts.entry(key(&row)).or_insert(0) += 1;
    }
    counts
}

/// Sums a value per key (SQL `SELECT key, SUM(v) … GROUP BY key`).
pub fn sum_by<T, K, I, F, V>(rows: I, key: F, value: V) -> HashMap<K, f64>
where
    I: IntoIterator<Item = T>,
    K: Eq + Hash,
    F: Fn(&T) -> K,
    V: Fn(&T) -> f64,
{
    let mut sums: HashMap<K, f64> = HashMap::new();
    for row in rows {
        *sums.entry(key(&row)).or_insert(0.0) += value(&row);
    }
    sums
}

/// Means of a value per key (SQL `SELECT key, AVG(v) … GROUP BY key`).
pub fn mean_by<T, K, I, F, V>(rows: I, key: F, value: V) -> HashMap<K, f64>
where
    I: IntoIterator<Item = T>,
    K: Eq + Hash,
    F: Fn(&T) -> K,
    V: Fn(&T) -> f64,
{
    let mut sums: HashMap<K, (f64, u64)> = HashMap::new();
    for row in rows {
        let entry = sums.entry(key(&row)).or_insert((0.0, 0));
        entry.0 += value(&row);
        entry.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (sum, n))| (k, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_by_partitions_rows() {
        let groups = group_by(1..=10, |n| n % 3);
        assert_eq!(groups[&0], vec![3, 6, 9]);
        assert_eq!(groups[&1], vec![1, 4, 7, 10]);
        assert_eq!(groups[&2], vec![2, 5, 8]);
    }

    #[test]
    fn count_by_counts() {
        let counts = count_by(["a", "b", "a", "a"], |s| *s);
        assert_eq!(counts[&"a"], 3);
        assert_eq!(counts[&"b"], 1);
    }

    #[test]
    fn sum_by_sums() {
        let sums = sum_by([(1, 2.0), (1, 3.0), (2, 5.0)], |r| r.0, |r| r.1);
        assert_eq!(sums[&1], 5.0);
        assert_eq!(sums[&2], 5.0);
    }

    #[test]
    fn mean_by_averages() {
        let means = mean_by([(1, 2.0), (1, 4.0), (2, 5.0)], |r| r.0, |r| r.1);
        assert_eq!(means[&1], 3.0);
        assert_eq!(means[&2], 5.0);
    }

    #[test]
    fn empty_inputs_give_empty_maps() {
        let groups: HashMap<i32, Vec<i32>> = group_by(std::iter::empty::<i32>(), |n| *n);
        assert!(groups.is_empty());
        let counts: HashMap<i32, u64> = count_by(std::iter::empty::<i32>(), |n| *n);
        assert!(counts.is_empty());
    }
}
