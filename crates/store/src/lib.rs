//! # jmst-store — execution-trace storage and relational analysis views
//!
//! The paper's harness inserts test logs into a SQL database (Microsoft
//! Access over JDBC) and analyses them with SQL statements. This crate is
//! the embedded replacement:
//!
//! * [`event`] — the trace event schema (sends, receives, lifecycles,
//!   transaction outcomes, crashes, phase markers);
//! * [`trace`] — the ordered log and the thread-safe [`Recorder`] the
//!   harness writes through;
//! * [`sink`] — live [`EventSink`]s / [`EventStream`]s: the recorder
//!   feeds attached sinks as events happen, so the in-memory batch trace,
//!   a streaming analyzer behind a bounded channel, and the disk/CSV
//!   spill formats are all consumers of one emission path;
//! * [`journal`] — the append-only, HMAC-chained campaign journal the
//!   multi-process prince writes so interrupted campaigns survive and
//!   resume;
//! * [`table`] — [`TraceStore`], typed and indexed relational views;
//! * [`query`] — grouping/aggregation combinators (the `GROUP BY` layer);
//! * [`stats`] — summary statistics and delay histograms;
//! * [`csv`] — exports for human inspection.
//!
//! Splitting storage from analysis mirrors the paper's design and enables
//! its §4.1 ablation (per-event database insertion vs. streaming
//! aggregation), reproduced in the `store_ablation` benchmark.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod disk;
pub mod event;
pub mod journal;
pub mod query;
pub mod sink;
pub mod stats;
pub mod table;
pub mod trace;

pub use disk::DiskError;
pub use event::{Event, EventKind, MessageRecord, Phase};
pub use journal::{
    Journal, JournalError, JournalKey, JournalRecord, JournalWriter, Salvage, VerdictRecord,
};
pub use sink::{
    channel, ChannelSink, CsvSink, EventSink, EventStream, JsonlSink, ReorderBuffer, TeeSink,
    VecSink,
};
pub use stats::{DelayHistogram, LogHistogram, SummaryStats};
pub use table::{ConsumerRow, DeadLetterRow, ReceiveRow, SendRow, TraceStore};
pub use trace::{DuplicateOrdKey, NodeRecorder, Recorder, Trace};
