//! Summary statistics and histograms used by the performance analysis and
//! the delay expectation models.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Running min / max / mean / standard deviation over `f64` samples
/// (Welford's algorithm, numerically stable for long runs).
///
/// # Examples
///
/// ```
/// use jmst_store::stats::SummaryStats;
///
/// let stats: SummaryStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.mean(), 2.5);
/// assert_eq!(stats.min(), Some(1.0));
/// assert_eq!(stats.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or zero with no samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or zero with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` with no samples.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` with no samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for SummaryStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = SummaryStats::new();
        for sample in iter {
            stats.push(sample);
        }
        stats
    }
}

impl Extend<f64> for SummaryStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for sample in iter {
            self.push(sample);
        }
    }
}

impl fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return f.write_str("no samples");
        }
        write!(
            f,
            "n={} mean={:.3} σ={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-width histogram of durations, the structure behind the paper's
/// future-work suggestion of "constructing a histogram of message delays
/// throughout the run period" for a better expiry expectation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayHistogram {
    bucket_width_nanos: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl DelayHistogram {
    /// Creates a histogram of `buckets` buckets of `bucket_width` each;
    /// samples beyond the last bucket land in an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: Duration, buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            bucket_width_nanos: bucket_width.as_nanos() as u64,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one delay sample.
    pub fn push(&mut self, delay: Duration) {
        let index = (delay.as_nanos() as u64 / self.bucket_width_nanos) as usize;
        if index < self.buckets.len() {
            self.buckets[index] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The fraction of samples that were `<= bound`, counting whole
    /// buckets (each sample is attributed to its bucket's upper edge, so
    /// the estimate is conservative for expiry: it never claims a delay
    /// was short when it might not have been).
    pub fn fraction_at_most(&self, bound: Duration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let full_buckets = (bound.as_nanos() as u64 / self.bucket_width_nanos) as usize;
        let covered: u64 = self.buckets.iter().take(full_buckets).sum();
        covered as f64 / self.count as f64
    }

    /// An upper estimate of the `q`-quantile (0 ≤ q ≤ 1) of the delays.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return Some(Duration::from_nanos(
                    (index as u64 + 1) * self.bucket_width_nanos,
                ));
            }
        }
        // In the overflow bucket: unbounded above; report the histogram
        // ceiling.
        Some(Duration::from_nanos(
            self.buckets.len() as u64 * self.bucket_width_nanos,
        ))
    }

    /// Bucket counts (for reports).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_computation() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let stats: SummaryStats = samples.into_iter().collect();
        let naive_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let naive_var = samples
            .iter()
            .map(|x| (x - naive_mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        assert!((stats.mean() - naive_mean).abs() < 1e-12);
        assert!((stats.variance() - naive_var).abs() < 1e-12);
        assert_eq!(stats.min(), Some(1.0));
        assert_eq!(stats.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = SummaryStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.min(), None);
        assert_eq!(stats.max(), None);
        assert_eq!(stats.to_string(), "no samples");
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let stats: SummaryStats = [5.0].into_iter().collect();
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.mean(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: SummaryStats = (0..100).map(f64::from).collect();
        let mut left: SummaryStats = (0..37).map(f64::from).collect();
        let right: SummaryStats = (37..100).map(f64::from).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats: SummaryStats = [1.0, 2.0].into_iter().collect();
        let before = stats;
        stats.merge(&SummaryStats::new());
        assert_eq!(stats, before);
        let mut empty = SummaryStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn extend_accumulates() {
        let mut stats = SummaryStats::new();
        stats.extend([1.0, 2.0, 3.0]);
        assert_eq!(stats.count(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(10), 5);
        histogram.push(Duration::from_millis(5)); // bucket 0
        histogram.push(Duration::from_millis(15)); // bucket 1
        histogram.push(Duration::from_millis(49)); // bucket 4
        histogram.push(Duration::from_millis(500)); // overflow
        assert_eq!(histogram.count(), 4);
        assert_eq!(histogram.buckets(), &[1, 1, 0, 0, 1]);
        assert_eq!(histogram.overflow(), 1);
    }

    #[test]
    fn fraction_at_most_counts_whole_buckets() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(10), 10);
        for ms in [1u64, 2, 3, 25, 95] {
            histogram.push(Duration::from_millis(ms));
        }
        // Bound 10 ms covers bucket 0 only → 3 of 5 samples.
        assert!((histogram.fraction_at_most(Duration::from_millis(10)) - 0.6).abs() < 1e-12);
        // Bound 30 ms covers buckets 0..3 → 4 of 5.
        assert!((histogram.fraction_at_most(Duration::from_millis(30)) - 0.8).abs() < 1e-12);
        // Tiny bound covers nothing.
        assert_eq!(histogram.fraction_at_most(Duration::from_millis(5)), 0.0);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(1), 100);
        for ms in 0..100u64 {
            histogram.push(Duration::from_millis(ms));
        }
        let median = histogram.quantile(0.5).unwrap();
        assert!(median >= Duration::from_millis(49) && median <= Duration::from_millis(51));
        assert_eq!(histogram.quantile(0.0).unwrap(), Duration::from_millis(1));
        assert!(histogram.quantile(1.0).unwrap() >= Duration::from_millis(99));
        assert_eq!(
            DelayHistogram::new(Duration::from_millis(1), 1).quantile(0.5),
            None
        );
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_width_rejected() {
        DelayHistogram::new(Duration::ZERO, 5);
    }
}
