//! Summary statistics and histograms used by the performance analysis and
//! the delay expectation models.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Running min / max / mean / standard deviation over `f64` samples
/// (Welford's algorithm, numerically stable for long runs).
///
/// # Examples
///
/// ```
/// use jmst_store::stats::SummaryStats;
///
/// let stats: SummaryStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.mean(), 2.5);
/// assert_eq!(stats.min(), Some(1.0));
/// assert_eq!(stats.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or zero with no samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or zero with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` with no samples.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` with no samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for SummaryStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = SummaryStats::new();
        for sample in iter {
            stats.push(sample);
        }
        stats
    }
}

impl Extend<f64> for SummaryStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for sample in iter {
            self.push(sample);
        }
    }
}

impl fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return f.write_str("no samples");
        }
        write!(
            f,
            "n={} mean={:.3} σ={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-width histogram of durations, the structure behind the paper's
/// future-work suggestion of "constructing a histogram of message delays
/// throughout the run period" for a better expiry expectation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayHistogram {
    bucket_width_nanos: u64,
    buckets: Vec<u64>,
    overflow: u64,
    /// Largest overflow sample, so quantiles that land in the overflow
    /// bucket can report a real upper bound instead of the bucket
    /// ceiling. Defaults to zero for histograms serialized before the
    /// field existed.
    #[serde(default)]
    overflow_max: u64,
    count: u64,
}

impl DelayHistogram {
    /// Creates a histogram of `buckets` buckets of `bucket_width` each;
    /// samples beyond the last bucket land in an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: Duration, buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            bucket_width_nanos: bucket_width.as_nanos() as u64,
            buckets: vec![0; buckets],
            overflow: 0,
            overflow_max: 0,
            count: 0,
        }
    }

    /// Adds one delay sample.
    pub fn push(&mut self, delay: Duration) {
        let nanos = delay.as_nanos() as u64;
        let index = (nanos / self.bucket_width_nanos) as usize;
        if index < self.buckets.len() {
            self.buckets[index] += 1;
        } else {
            self.overflow += 1;
            self.overflow_max = self.overflow_max.max(nanos);
        }
        self.count += 1;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The fraction of samples that were `<= bound`, counting whole
    /// buckets (each sample is attributed to its bucket's upper edge, so
    /// the estimate is conservative for expiry: it never claims a delay
    /// was short when it might not have been). Overflow mass counts only
    /// once `bound` reaches the largest overflow sample — the one point
    /// at which the overflow bucket's contents are provably covered.
    pub fn fraction_at_most(&self, bound: Duration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let full_buckets = (bound.as_nanos() as u64 / self.bucket_width_nanos) as usize;
        let mut covered: u64 = self.buckets.iter().take(full_buckets).sum();
        if self.overflow > 0 && bound.as_nanos() as u64 >= self.overflow_max {
            covered += self.overflow;
        }
        covered as f64 / self.count as f64
    }

    /// An upper estimate of the `q`-quantile (0 ≤ q ≤ 1) of the delays.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return Some(Duration::from_nanos(
                    (index as u64 + 1) * self.bucket_width_nanos,
                ));
            }
        }
        // In the overflow bucket: the largest recorded overflow sample is
        // the sound upper bound. (The old behaviour reported the histogram
        // ceiling, *under*-stating any quantile that landed here.) The
        // ceiling survives only as a floor for pre-`overflow_max` data.
        Some(Duration::from_nanos(
            self.overflow_max
                .max(self.buckets.len() as u64 * self.bucket_width_nanos),
        ))
    }

    /// Bucket counts (for reports).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The largest sample that landed in the overflow bucket, in
    /// nanoseconds; zero when nothing overflowed.
    pub fn overflow_max_nanos(&self) -> u64 {
        self.overflow_max
    }
}

/// Number of linear sub-buckets per power-of-two octave in a
/// [`LogHistogram`]: 2^5 = 32, bounding relative quantile error at
/// 1/32 ≈ 3.1%.
const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Octaves above the exact range. A u64 of nanoseconds has at most 64
/// significant bits; values below `SUB_BUCKETS` are stored exactly, the
/// remaining `64 - 5 = 59` octaves each get `SUB_BUCKETS` buckets.
const OCTAVES: usize = 64 - SUB_BUCKET_BITS as usize;
const LOG_BUCKETS: usize = SUB_BUCKETS as usize * (OCTAVES + 1);

/// A log-bucketed (HDR-style) histogram of durations for open-loop load
/// measurement: full `u64` nanosecond range, fixed memory, ≤ ~3.1%
/// relative quantile error, and mergeable across worker threads.
///
/// The fixed-width [`DelayHistogram`] needs its range chosen up front —
/// fine for expiry models, useless for latency under overload where the
/// tail spans six orders of magnitude. This histogram uses 32 linear
/// sub-buckets per power-of-two octave, so bucket width scales with
/// magnitude and p50 through p99.9 are all resolved to a few percent.
///
/// # Examples
///
/// ```
/// use jmst_store::stats::LogHistogram;
/// use std::time::Duration;
///
/// let mut hist = LogHistogram::new();
/// for ms in 1..=1000u64 {
///     hist.record(Duration::from_millis(ms));
/// }
/// let p99 = hist.quantile(0.99).unwrap();
/// assert!(p99 >= Duration::from_millis(990) && p99 <= Duration::from_millis(1024));
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; LOG_BUCKETS]>,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// Creates an empty histogram covering the full `u64` nanosecond
    /// range.
    pub fn new() -> Self {
        Self {
            buckets: vec![0u64; LOG_BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("bucket count is fixed"),
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for a value: exact below [`SUB_BUCKETS`], then 32
    /// linear sub-buckets per octave.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let sub = (value >> shift) - SUB_BUCKETS;
        (SUB_BUCKETS + u64::from(shift) * SUB_BUCKETS + sub) as usize
    }

    /// The largest value a bucket can hold (its inclusive upper edge).
    fn upper_edge(index: usize) -> u64 {
        if index < SUB_BUCKETS as usize {
            return index as u64;
        }
        let shift = (index as u64 - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (index as u64 - SUB_BUCKETS) % SUB_BUCKETS;
        // The bucket covers [(32 + sub) << shift, (32 + sub + 1) << shift).
        // The very top bucket's exclusive edge is 2^64, which wraps to 0;
        // wrapping_sub turns it into the correct u64::MAX.
        ((SUB_BUCKETS + sub + 1) << shift).wrapping_sub(1)
    }

    /// Records one duration sample.
    pub fn record(&mut self, sample: Duration) {
        self.record_nanos(sample.as_nanos() as u64);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::index_of(nanos)] += 1;
        self.count += 1;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, or `None` when empty. Exact.
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.min))
    }

    /// Largest recorded sample, or `None` when empty. Exact.
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.max))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1): the upper edge of the bucket holding
    /// the rank-`ceil(q·count)` sample, clamped to the exact recorded
    /// maximum. Relative error is bounded by the sub-bucket width,
    /// ≈ 3.1%.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return Some(Duration::from_nanos(Self::upper_edge(index).min(self.max)));
            }
        }
        Some(Duration::from_nanos(self.max))
    }

    /// Merges another histogram into this one. Equivalent to having
    /// recorded both sample streams into a single histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The standard report line for benchmarks: p50/p90/p99/p99.9/max in
    /// milliseconds.
    pub fn percentile_summary(&self) -> String {
        let ms = |d: Option<Duration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e3);
        format!(
            "p50={:.2}ms p90={:.2}ms p99={:.2}ms p99.9={:.2}ms max={:.2}ms",
            ms(self.quantile(0.50)),
            ms(self.quantile(0.90)),
            ms(self.quantile(0.99)),
            ms(self.quantile(0.999)),
            ms(self.max()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_computation() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let stats: SummaryStats = samples.into_iter().collect();
        let naive_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let naive_var = samples
            .iter()
            .map(|x| (x - naive_mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        assert!((stats.mean() - naive_mean).abs() < 1e-12);
        assert!((stats.variance() - naive_var).abs() < 1e-12);
        assert_eq!(stats.min(), Some(1.0));
        assert_eq!(stats.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = SummaryStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
        assert_eq!(stats.min(), None);
        assert_eq!(stats.max(), None);
        assert_eq!(stats.to_string(), "no samples");
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let stats: SummaryStats = [5.0].into_iter().collect();
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.mean(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: SummaryStats = (0..100).map(f64::from).collect();
        let mut left: SummaryStats = (0..37).map(f64::from).collect();
        let right: SummaryStats = (37..100).map(f64::from).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats: SummaryStats = [1.0, 2.0].into_iter().collect();
        let before = stats;
        stats.merge(&SummaryStats::new());
        assert_eq!(stats, before);
        let mut empty = SummaryStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn extend_accumulates() {
        let mut stats = SummaryStats::new();
        stats.extend([1.0, 2.0, 3.0]);
        assert_eq!(stats.count(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(10), 5);
        histogram.push(Duration::from_millis(5)); // bucket 0
        histogram.push(Duration::from_millis(15)); // bucket 1
        histogram.push(Duration::from_millis(49)); // bucket 4
        histogram.push(Duration::from_millis(500)); // overflow
        assert_eq!(histogram.count(), 4);
        assert_eq!(histogram.buckets(), &[1, 1, 0, 0, 1]);
        assert_eq!(histogram.overflow(), 1);
    }

    #[test]
    fn fraction_at_most_counts_whole_buckets() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(10), 10);
        for ms in [1u64, 2, 3, 25, 95] {
            histogram.push(Duration::from_millis(ms));
        }
        // Bound 10 ms covers bucket 0 only → 3 of 5 samples.
        assert!((histogram.fraction_at_most(Duration::from_millis(10)) - 0.6).abs() < 1e-12);
        // Bound 30 ms covers buckets 0..3 → 4 of 5.
        assert!((histogram.fraction_at_most(Duration::from_millis(30)) - 0.8).abs() < 1e-12);
        // Tiny bound covers nothing.
        assert_eq!(histogram.fraction_at_most(Duration::from_millis(5)), 0.0);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(1), 100);
        for ms in 0..100u64 {
            histogram.push(Duration::from_millis(ms));
        }
        let median = histogram.quantile(0.5).unwrap();
        assert!(median >= Duration::from_millis(49) && median <= Duration::from_millis(51));
        assert_eq!(histogram.quantile(0.0).unwrap(), Duration::from_millis(1));
        assert!(histogram.quantile(1.0).unwrap() >= Duration::from_millis(99));
        assert_eq!(
            DelayHistogram::new(Duration::from_millis(1), 1).quantile(0.5),
            None
        );
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_width_rejected() {
        DelayHistogram::new(Duration::ZERO, 5);
    }

    #[test]
    fn overflow_mass_is_accounted_in_quantiles() {
        // Regression: quantiles landing in the overflow bucket used to
        // report the histogram ceiling (50 ms here), *under*-stating the
        // quantile of a sample known to be ≥ the ceiling.
        let mut histogram = DelayHistogram::new(Duration::from_millis(10), 5);
        for ms in [1u64, 2, 3, 4] {
            histogram.push(Duration::from_millis(ms));
        }
        histogram.push(Duration::from_millis(800));
        histogram.push(Duration::from_millis(900));
        // p99 rank (6 of 6) lands in overflow: the answer must be the
        // largest overflow sample, not the 50 ms ceiling.
        assert_eq!(
            histogram.quantile(0.99).unwrap(),
            Duration::from_millis(900)
        );
        assert_eq!(histogram.quantile(1.0).unwrap(), Duration::from_millis(900));
        assert_eq!(histogram.overflow_max_nanos(), 900_000_000);
        // In-bucket quantiles are unchanged.
        assert_eq!(histogram.quantile(0.5).unwrap(), Duration::from_millis(10));
    }

    #[test]
    fn overflow_mass_is_accounted_in_fraction_at_most() {
        let mut histogram = DelayHistogram::new(Duration::from_millis(10), 5);
        histogram.push(Duration::from_millis(5));
        histogram.push(Duration::from_millis(500));
        // Below the largest overflow sample the overflow mass cannot be
        // credited…
        assert!((histogram.fraction_at_most(Duration::from_millis(100)) - 0.5).abs() < 1e-12);
        // …but a bound at or past it provably covers everything.
        assert!((histogram.fraction_at_most(Duration::from_millis(500)) - 1.0).abs() < 1e-12);
        assert!((histogram.fraction_at_most(Duration::from_secs(10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_is_exact_below_32ns() {
        let mut hist = LogHistogram::new();
        for n in 0..32u64 {
            hist.record_nanos(n);
        }
        assert_eq!(hist.count(), 32);
        assert_eq!(hist.min(), Some(Duration::from_nanos(0)));
        assert_eq!(hist.max(), Some(Duration::from_nanos(31)));
        assert_eq!(hist.quantile(0.5).unwrap(), Duration::from_nanos(15));
    }

    #[test]
    fn log_histogram_quantile_error_is_bounded() {
        let mut hist = LogHistogram::new();
        // Samples spanning six orders of magnitude.
        for i in 1..=100_000u64 {
            hist.record_nanos(i * 997);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = ((q * 100_000f64).ceil() as u64) * 997;
            let measured = hist.quantile(q).unwrap().as_nanos() as u64;
            // The reported value is a bucket upper edge: never below the
            // exact quantile, and within one sub-bucket (~3.2%) above it.
            assert!(measured >= exact, "q={q}: {measured} < {exact}");
            let relative = (measured - exact) as f64 / exact as f64;
            assert!(relative <= 1.0 / 31.0, "q={q}: error {relative}");
        }
    }

    #[test]
    fn log_histogram_quantiles_clamp_to_exact_max() {
        let mut hist = LogHistogram::new();
        hist.record_nanos(1_000_003);
        assert_eq!(hist.quantile(1.0).unwrap(), Duration::from_nanos(1_000_003));
        assert_eq!(hist.quantile(0.5).unwrap(), Duration::from_nanos(1_000_003));
    }

    #[test]
    fn log_histogram_handles_extremes() {
        let mut hist = LogHistogram::new();
        hist.record_nanos(0);
        hist.record_nanos(u64::MAX);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.quantile(0.0).unwrap(), Duration::from_nanos(0));
        assert_eq!(hist.quantile(1.0).unwrap(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn log_histogram_merge_equals_single_stream() {
        let samples: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(2654435761) >> 16)
            .collect();
        let mut single = LogHistogram::new();
        for &s in &samples {
            single.record_nanos(s);
        }
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record_nanos(s);
            } else {
                right.record_nanos(s);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), single.count());
        assert_eq!(left.min(), single.min());
        assert_eq!(left.max(), single.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(left.quantile(q), single.quantile(q), "q={q}");
        }
    }

    #[test]
    fn log_histogram_empty_and_summary() {
        let empty = LogHistogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        let mut hist = LogHistogram::new();
        hist.record(Duration::from_millis(5));
        let summary = hist.percentile_summary();
        assert!(summary.contains("p99"), "{summary}");
        assert!(summary.contains("max=5.00ms"), "{summary}");
    }

    #[test]
    fn log_histogram_bucket_edges_are_consistent() {
        // Every value must land in a bucket whose upper edge is >= the
        // value and within the sub-bucket width of it.
        for &value in &[
            1u64,
            31,
            32,
            33,
            63,
            64,
            1_000,
            1_000_000,
            1_000_000_007,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let index = LogHistogram::index_of(value);
            let edge = LogHistogram::upper_edge(index);
            assert!(edge >= value, "value {value}: edge {edge} below value");
            if index > 0 {
                let below = LogHistogram::upper_edge(index - 1);
                assert!(below < value, "value {value} fits earlier bucket {below}");
            }
        }
    }
}
