//! Materialised relational views over a trace.
//!
//! The paper loads test logs into a SQL database and expresses both
//! correctness and performance analysis as SQL statements. [`TraceStore`]
//! is the embedded equivalent: it normalises a [`Trace`] into typed row
//! tables (sends, receives, consumer lifetimes, transaction outcomes) with
//! the indexes those queries join on (message id, producer, end-point).

use crate::event::{Event, EventKind, MessageRecord, Phase};
use crate::trace::Trace;
use jmst_api::destination::EndpointId;
use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId, TxId};
use jmst_api::modes::SessionMode;
use jmst_api::time::Timestamp;
use std::collections::{BTreeSet, HashMap, HashSet};

/// One row of the *sends* table.
#[derive(Debug, Clone, PartialEq)]
pub struct SendRow {
    /// When the send was logged.
    pub at: Timestamp,
    /// The logging node.
    pub node: NodeId,
    /// The sending session.
    pub session: SessionId,
    /// The enclosing transaction, if any.
    pub tx: Option<TxId>,
    /// The message.
    pub record: MessageRecord,
}

/// One row of the *receives* table.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiveRow {
    /// When the receive was logged.
    pub at: Timestamp,
    /// The logging node.
    pub node: NodeId,
    /// The receiving consumer.
    pub consumer: ConsumerId,
    /// The consumer group the delivery belongs to.
    pub endpoint: EndpointId,
    /// The receiving session.
    pub session: SessionId,
    /// The enclosing transaction, if any.
    pub tx: Option<TxId>,
    /// The message.
    pub record: MessageRecord,
}

/// One row of the *consumer lifetimes* table.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumerRow {
    /// The consumer.
    pub consumer: ConsumerId,
    /// The consumer group it served.
    pub endpoint: EndpointId,
    /// Its session mode.
    pub session_mode: SessionMode,
    /// Its selector, if any.
    pub selector: Option<String>,
    /// When it was created.
    pub created_at: Timestamp,
    /// When it was closed, if it was.
    pub closed_at: Option<Timestamp>,
}

/// One row of the *dead letters* table: a poison message parked on a
/// dead-letter queue after exceeding the broker's redelivery bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetterRow {
    /// When the parking was logged.
    pub at: Timestamp,
    /// The parked message, as last delivered.
    pub record: MessageRecord,
    /// The dead-letter queue it was parked on.
    pub parked_on: jmst_api::destination::QueueName,
}

/// Typed, indexed tables materialised from one trace.
#[derive(Debug, Default)]
pub struct TraceStore {
    sends: Vec<SendRow>,
    receives: Vec<ReceiveRow>,
    consumers: Vec<ConsumerRow>,
    committed: HashSet<TxId>,
    rolled_back: HashSet<TxId>,
    crashes: Vec<Timestamp>,
    acks: Vec<(Timestamp, SessionId)>,
    dead_letters: Vec<DeadLetterRow>,
    dead_lettered: HashSet<MessageId>,
    phase_starts: Vec<(Phase, Timestamp)>,
    send_by_message: HashMap<MessageId, usize>,
    receives_by_message: HashMap<MessageId, Vec<usize>>,
    endpoints: BTreeSet<EndpointId>,
    producers: BTreeSet<ProducerId>,
    run_window: (Timestamp, Timestamp),
    trace_end: Timestamp,
}

impl TraceStore {
    /// Builds the tables from a trace — the paper's "insert the logs into
    /// a SQL database" step.
    pub fn build(trace: &Trace) -> Self {
        let mut store = TraceStore {
            run_window: trace.run_window(),
            trace_end: trace.end(),
            ..TraceStore::default()
        };
        let mut open_consumers: HashMap<ConsumerId, usize> = HashMap::new();
        for event in trace {
            store.ingest(event, &mut open_consumers);
        }
        store
    }

    fn ingest(&mut self, event: &Event, open_consumers: &mut HashMap<ConsumerId, usize>) {
        match &event.kind {
            EventKind::Send {
                record,
                session,
                tx,
            } => {
                let index = self.sends.len();
                self.send_by_message.insert(record.message, index);
                self.producers.insert(record.producer);
                // A queue is a consumer-group end-point even before (or
                // without) any receiver appearing — messages wait there,
                // and Property 2 must see it.
                if let jmst_api::destination::Destination::Queue(queue) = &record.destination {
                    self.endpoints.insert(EndpointId::Queue(queue.clone()));
                }
                self.sends.push(SendRow {
                    at: event.at,
                    node: event.node,
                    session: *session,
                    tx: *tx,
                    record: record.clone(),
                });
            }
            EventKind::Receive {
                consumer,
                endpoint,
                record,
                session,
                tx,
            } => {
                let index = self.receives.len();
                self.receives_by_message
                    .entry(record.message)
                    .or_default()
                    .push(index);
                self.endpoints.insert(endpoint.clone());
                self.receives.push(ReceiveRow {
                    at: event.at,
                    node: event.node,
                    consumer: *consumer,
                    endpoint: endpoint.clone(),
                    session: *session,
                    tx: *tx,
                    record: record.clone(),
                });
            }
            EventKind::ConsumerCreated {
                consumer,
                endpoint,
                session_mode,
                selector,
            } => {
                let index = self.consumers.len();
                open_consumers.insert(*consumer, index);
                self.endpoints.insert(endpoint.clone());
                self.consumers.push(ConsumerRow {
                    consumer: *consumer,
                    endpoint: endpoint.clone(),
                    session_mode: *session_mode,
                    selector: selector.clone(),
                    created_at: event.at,
                    closed_at: None,
                });
            }
            EventKind::ConsumerClosed { consumer, .. } => {
                if let Some(&index) = open_consumers.get(consumer) {
                    self.consumers[index].closed_at = Some(event.at);
                }
            }
            EventKind::Acknowledge { session } => {
                self.acks.push((event.at, *session));
            }
            EventKind::Commit { session, tx } => {
                // A commit settles the transaction's receives, so it also
                // acts as the session's acknowledgement point.
                self.acks.push((event.at, *session));
                self.committed.insert(*tx);
            }
            EventKind::Rollback { tx, .. } => {
                self.rolled_back.insert(*tx);
            }
            EventKind::DeadLettered { record, parked_on } => {
                self.dead_lettered.insert(record.message);
                self.dead_letters.push(DeadLetterRow {
                    at: event.at,
                    record: record.clone(),
                    parked_on: parked_on.clone(),
                });
            }
            EventKind::BrokerCrashed => self.crashes.push(event.at),
            EventKind::PhaseStarted { phase } => self.phase_starts.push((*phase, event.at)),
            _ => {}
        }
    }

    /// The sends table (log order).
    pub fn sends(&self) -> &[SendRow] {
        &self.sends
    }

    /// The receives table (log order).
    pub fn receives(&self) -> &[ReceiveRow] {
        &self.receives
    }

    /// The consumer-lifetimes table.
    pub fn consumers(&self) -> &[ConsumerRow] {
        &self.consumers
    }

    /// All transaction ids that committed.
    pub fn committed(&self) -> &HashSet<TxId> {
        &self.committed
    }

    /// All transaction ids that rolled back.
    pub fn rolled_back(&self) -> &HashSet<TxId> {
        &self.rolled_back
    }

    /// Times at which the broker crashed.
    pub fn crashes(&self) -> &[Timestamp] {
        &self.crashes
    }

    /// Acknowledgement points `(at, session)`, in log order. Client
    /// acknowledgements and transaction commits both settle a session's
    /// outstanding deliveries, so both appear here.
    pub fn acks(&self) -> &[(Timestamp, SessionId)] {
        &self.acks
    }

    /// The dead-letters table: poison messages parked after exceeding the
    /// broker's redelivery bound.
    pub fn dead_letters(&self) -> &[DeadLetterRow] {
        &self.dead_letters
    }

    /// Whether a message was parked on a dead-letter queue.
    pub fn is_dead_lettered(&self, message: MessageId) -> bool {
        self.dead_lettered.contains(&message)
    }

    /// Every end-point observed in the trace.
    pub fn endpoints(&self) -> impl Iterator<Item = &EndpointId> {
        self.endpoints.iter()
    }

    /// Every producer observed in the trace.
    pub fn producers(&self) -> impl Iterator<Item = &ProducerId> {
        self.producers.iter()
    }

    /// The measured window `[run start, warm-down start)`.
    pub fn run_window(&self) -> (Timestamp, Timestamp) {
        self.run_window
    }

    /// The timestamp of the last event.
    pub fn trace_end(&self) -> Timestamp {
        self.trace_end
    }

    /// Looks up the send row of a message.
    pub fn send_of(&self, message: MessageId) -> Option<&SendRow> {
        self.send_by_message
            .get(&message)
            .map(|&index| &self.sends[index])
    }

    /// Looks up all receive rows of a message.
    pub fn receives_of(&self, message: MessageId) -> impl Iterator<Item = &ReceiveRow> {
        self.receives_by_message
            .get(&message)
            .into_iter()
            .flatten()
            .map(move |&index| &self.receives[index])
    }

    /// Whether a send is *effective* under Definition 1 of the paper:
    /// non-transacted, or inside a transaction that later committed.
    pub fn send_is_effective(&self, row: &SendRow) -> bool {
        match row.tx {
            None => true,
            Some(tx) => self.committed.contains(&tx),
        }
    }

    /// Whether a receive is *effective* under Definition 2 of the paper:
    /// non-transacted, or inside a transaction that later committed.
    pub fn receive_is_effective(&self, row: &ReceiveRow) -> bool {
        match row.tx {
            None => true,
            Some(tx) => self.committed.contains(&tx),
        }
    }

    /// Iterator over effective sends (Definition 1).
    pub fn effective_sends(&self) -> impl Iterator<Item = &SendRow> {
        self.sends.iter().filter(|row| self.send_is_effective(row))
    }

    /// Iterator over effective receives (Definition 2).
    pub fn effective_receives(&self) -> impl Iterator<Item = &ReceiveRow> {
        self.receives
            .iter()
            .filter(|row| self.receive_is_effective(row))
    }

    /// The last close of an end-point (Definition 4), if any consumer of
    /// it ever closed.
    pub fn last_close(&self, endpoint: &EndpointId) -> Option<Timestamp> {
        self.consumers
            .iter()
            .filter(|row| &row.endpoint == endpoint)
            .filter_map(|row| row.closed_at)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::destination::Destination;
    use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};

    fn record(message: u64, producer: u64, sequence: u64) -> MessageRecord {
        MessageRecord {
            message: MessageId::from_raw(message),
            producer: ProducerId::from_raw(producer),
            sequence,
            destination: Destination::queue("q"),
            priority: Priority::DEFAULT,
            delivery_mode: DeliveryMode::Persistent,
            time_to_live: TimeToLive::FOREVER,
            sent_at: Timestamp::from_millis(sequence),
            body_bytes: 10,
            redelivered: false,
            delivery_count: 1,
            properties: Default::default(),
        }
    }

    fn event(seq: u64, at_ms: u64, kind: EventKind) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind,
        }
    }

    fn endpoint() -> EndpointId {
        EndpointId::for_queue("q".into())
    }

    #[test]
    fn builds_send_and_receive_tables_with_indexes() {
        let trace = Trace::from_events(vec![
            event(
                0,
                1,
                EventKind::Send {
                    record: record(1, 1, 0),
                    session: SessionId::from_raw(1),
                    tx: None,
                },
            ),
            event(
                1,
                2,
                EventKind::Receive {
                    consumer: ConsumerId::from_raw(9),
                    endpoint: endpoint(),
                    record: record(1, 1, 0),
                    session: SessionId::from_raw(2),
                    tx: None,
                },
            ),
        ]);
        let store = TraceStore::build(&trace);
        assert_eq!(store.sends().len(), 1);
        assert_eq!(store.receives().len(), 1);
        assert!(store.send_of(MessageId::from_raw(1)).is_some());
        assert_eq!(store.receives_of(MessageId::from_raw(1)).count(), 1);
        assert_eq!(store.receives_of(MessageId::from_raw(2)).count(), 0);
        assert_eq!(store.producers().count(), 1);
        assert_eq!(store.endpoints().count(), 1);
    }

    #[test]
    fn transactional_effectiveness_follows_commit_outcome() {
        let committed_tx = TxId::from_raw(10);
        let aborted_tx = TxId::from_raw(11);
        let trace = Trace::from_events(vec![
            event(
                0,
                1,
                EventKind::Send {
                    record: record(1, 1, 0),
                    session: SessionId::from_raw(1),
                    tx: Some(committed_tx),
                },
            ),
            event(
                1,
                2,
                EventKind::Send {
                    record: record(2, 1, 1),
                    session: SessionId::from_raw(1),
                    tx: Some(aborted_tx),
                },
            ),
            event(
                2,
                3,
                EventKind::Send {
                    record: record(3, 1, 2),
                    session: SessionId::from_raw(1),
                    tx: None,
                },
            ),
            event(
                3,
                4,
                EventKind::Commit {
                    session: SessionId::from_raw(1),
                    tx: committed_tx,
                },
            ),
            event(
                4,
                5,
                EventKind::Rollback {
                    session: SessionId::from_raw(1),
                    tx: aborted_tx,
                },
            ),
        ]);
        let store = TraceStore::build(&trace);
        let effective: Vec<u64> = store
            .effective_sends()
            .map(|row| row.record.message.as_u64())
            .collect();
        assert_eq!(effective, [1, 3]);
        assert!(store.committed().contains(&committed_tx));
        assert!(store.rolled_back().contains(&aborted_tx));
    }

    #[test]
    fn uncommitted_transaction_is_not_effective() {
        // A transaction with no commit/rollback record (e.g. crashed) is
        // treated as not committed.
        let trace = Trace::from_events(vec![event(
            0,
            1,
            EventKind::Send {
                record: record(1, 1, 0),
                session: SessionId::from_raw(1),
                tx: Some(TxId::from_raw(99)),
            },
        )]);
        let store = TraceStore::build(&trace);
        assert_eq!(store.effective_sends().count(), 0);
    }

    #[test]
    fn consumer_lifetimes_and_last_close() {
        let trace = Trace::from_events(vec![
            event(
                0,
                1,
                EventKind::ConsumerCreated {
                    consumer: ConsumerId::from_raw(1),
                    endpoint: endpoint(),
                    session_mode: SessionMode::AutoAcknowledge,
                    selector: None,
                },
            ),
            event(
                1,
                5,
                EventKind::ConsumerClosed {
                    consumer: ConsumerId::from_raw(1),
                    endpoint: endpoint(),
                },
            ),
            event(
                2,
                6,
                EventKind::ConsumerCreated {
                    consumer: ConsumerId::from_raw(2),
                    endpoint: endpoint(),
                    session_mode: SessionMode::AutoAcknowledge,
                    selector: None,
                },
            ),
            event(
                3,
                9,
                EventKind::ConsumerClosed {
                    consumer: ConsumerId::from_raw(2),
                    endpoint: endpoint(),
                },
            ),
        ]);
        let store = TraceStore::build(&trace);
        assert_eq!(store.consumers().len(), 2);
        assert_eq!(
            store.consumers()[0].closed_at,
            Some(Timestamp::from_millis(5))
        );
        assert_eq!(
            store.last_close(&endpoint()),
            Some(Timestamp::from_millis(9))
        );
        let other = EndpointId::for_queue("other".into());
        assert_eq!(store.last_close(&other), None);
    }

    #[test]
    fn crashes_and_phases_are_captured() {
        let trace = Trace::from_events(vec![
            event(
                0,
                1,
                EventKind::PhaseStarted {
                    phase: Phase::WarmUp,
                },
            ),
            event(1, 10, EventKind::PhaseStarted { phase: Phase::Run }),
            event(2, 15, EventKind::BrokerCrashed),
            event(3, 16, EventKind::BrokerRecovered),
            event(
                4,
                90,
                EventKind::PhaseStarted {
                    phase: Phase::WarmDown,
                },
            ),
        ]);
        let store = TraceStore::build(&trace);
        assert_eq!(store.crashes(), &[Timestamp::from_millis(15)]);
        assert_eq!(
            store.run_window(),
            (Timestamp::from_millis(10), Timestamp::from_millis(90))
        );
        assert_eq!(store.trace_end(), Timestamp::from_millis(90));
    }

    #[test]
    fn duplicate_receives_indexed_per_message() {
        let trace = Trace::from_events(vec![
            event(
                0,
                1,
                EventKind::Send {
                    record: record(1, 1, 0),
                    session: SessionId::from_raw(1),
                    tx: None,
                },
            ),
            event(
                1,
                2,
                EventKind::Receive {
                    consumer: ConsumerId::from_raw(9),
                    endpoint: endpoint(),
                    record: record(1, 1, 0),
                    session: SessionId::from_raw(2),
                    tx: None,
                },
            ),
            event(
                2,
                3,
                EventKind::Receive {
                    consumer: ConsumerId::from_raw(9),
                    endpoint: endpoint(),
                    record: record(1, 1, 0),
                    session: SessionId::from_raw(2),
                    tx: None,
                },
            ),
        ]);
        let store = TraceStore::build(&trace);
        assert_eq!(store.receives_of(MessageId::from_raw(1)).count(), 2);
    }
}
