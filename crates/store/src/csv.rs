//! CSV export of traces and report tables, for inspection outside the
//! harness (the paper's Access forms/reports stand-in is plain files).

use crate::event::EventKind;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Quotes a CSV field if needed (commas, quotes, or newlines present).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders a header plus rows as CSV text.
///
/// # Examples
///
/// ```
/// use jmst_store::csv::render;
///
/// let text = render(&["a", "b"], [vec!["1".into(), "x,y".into()]]);
/// assert_eq!(text, "a,b\n1,\"x,y\"\n");
/// ```
pub fn render<I>(header: &[&str], rows: I) -> String
where
    I: IntoIterator<Item = Vec<String>>,
{
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        let line = row.iter().map(|f| quote(f)).collect::<Vec<_>>().join(",");
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Exports the send/receive rows of a trace as CSV: one line per message
/// event with the columns the paper's analysis joins on.
pub fn trace_to_csv(trace: &Trace) -> String {
    let rows = trace.iter().filter_map(|event| {
        let (direction, actor, record) = match &event.kind {
            EventKind::Send { record, .. } => ("send", String::new(), record),
            EventKind::Receive {
                consumer, record, ..
            } => ("receive", consumer.to_string(), record),
            _ => return None,
        };
        Some(vec![
            event.seq.to_string(),
            event.at.as_nanos().to_string(),
            event.node.to_string(),
            direction.to_owned(),
            record.message.to_string(),
            record.producer.to_string(),
            record.sequence.to_string(),
            record.destination.to_string(),
            record.priority.to_string(),
            record.delivery_mode.to_string(),
            record.time_to_live.to_string(),
            record.body_bytes.to_string(),
            actor,
        ])
    });
    render(
        &[
            "seq",
            "at_nanos",
            "node",
            "direction",
            "message",
            "producer",
            "producer_seq",
            "destination",
            "priority",
            "delivery_mode",
            "ttl",
            "body_bytes",
            "consumer",
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MessageRecord};
    use jmst_api::destination::{Destination, EndpointId};
    use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId};
    use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
    use jmst_api::time::Timestamp;

    #[test]
    fn quoting_rules() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(quote("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn render_produces_header_and_rows() {
        let text = render(&["x"], [vec!["1".to_owned()], vec!["2".to_owned()]]);
        assert_eq!(text, "x\n1\n2\n");
    }

    fn record() -> MessageRecord {
        MessageRecord {
            message: MessageId::from_raw(1),
            producer: ProducerId::from_raw(2),
            sequence: 0,
            destination: Destination::queue("q"),
            priority: Priority::DEFAULT,
            delivery_mode: DeliveryMode::Persistent,
            time_to_live: TimeToLive::FOREVER,
            sent_at: Timestamp::ZERO,
            body_bytes: 3,
            redelivered: false,
            delivery_count: 1,
            properties: Default::default(),
        }
    }

    #[test]
    fn trace_export_includes_sends_and_receives_only() {
        let trace = Trace::from_events(vec![
            Event {
                seq: 0,
                at: Timestamp::from_millis(1),
                node: NodeId::from_raw(0),
                kind: EventKind::Send {
                    record: record(),
                    session: SessionId::from_raw(1),
                    tx: None,
                },
            },
            Event {
                seq: 1,
                at: Timestamp::from_millis(2),
                node: NodeId::from_raw(0),
                kind: EventKind::BrokerCrashed,
            },
            Event {
                seq: 2,
                at: Timestamp::from_millis(3),
                node: NodeId::from_raw(0),
                kind: EventKind::Receive {
                    consumer: ConsumerId::from_raw(7),
                    endpoint: EndpointId::for_queue("q".into()),
                    record: record(),
                    session: SessionId::from_raw(2),
                    tx: None,
                },
            },
        ]);
        let csv = trace_to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + send + receive
        assert!(lines[1].contains("send"));
        assert!(lines[2].contains("receive"));
        assert!(lines[2].contains("cons-7"));
    }
}
