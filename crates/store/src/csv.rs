//! CSV export of traces and report tables, for inspection outside the
//! harness (the paper's Access forms/reports stand-in is plain files),
//! plus a best-effort importer so exported traces can be replayed through
//! the analyzers (`examples/jmst_replay.rs`).

use crate::event::{Event, EventKind, MessageRecord};
use crate::trace::Trace;
use jmst_api::destination::{Destination, EndpointId, QueueName, TopicName};
use jmst_api::id::{ClientId, MessageId, NodeId, ProducerId, SessionId};
use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
use jmst_api::time::Timestamp;
use std::fmt;
use std::fmt::Write as _;

/// Quotes a CSV field if needed (commas, quotes, or newlines present).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders a header plus rows as CSV text.
///
/// # Examples
///
/// ```
/// use jmst_store::csv::render;
///
/// let text = render(&["a", "b"], [vec!["1".into(), "x,y".into()]]);
/// assert_eq!(text, "a,b\n1,\"x,y\"\n");
/// ```
pub fn render<I>(header: &[&str], rows: I) -> String
where
    I: IntoIterator<Item = Vec<String>>,
{
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        let line = row.iter().map(|f| quote(f)).collect::<Vec<_>>().join(",");
        let _ = writeln!(out, "{line}");
    }
    out
}

/// The column schema of trace CSV exports, shared by [`trace_to_csv`],
/// the streaming [`crate::CsvSink`], and the [`trace_from_csv`] importer.
pub const TRACE_COLUMNS: [&str; 18] = [
    "seq",
    "at_nanos",
    "node",
    "direction",
    "message",
    "producer",
    "producer_seq",
    "destination",
    "priority",
    "delivery_mode",
    "ttl",
    "body_bytes",
    "consumer",
    "endpoint",
    "session",
    "sent_at_nanos",
    "redelivered",
    "delivery_count",
];

/// Renders one send/receive event as the field vector matching
/// [`TRACE_COLUMNS`]; other event kinds export as `None`.
pub fn event_row(event: &Event) -> Option<Vec<String>> {
    let (direction, actor, endpoint, session, record) = match &event.kind {
        EventKind::Send {
            record, session, ..
        } => ("send", String::new(), String::new(), *session, record),
        EventKind::Receive {
            consumer,
            endpoint,
            record,
            session,
            ..
        } => (
            "receive",
            consumer.to_string(),
            endpoint.to_string(),
            *session,
            record,
        ),
        _ => return None,
    };
    Some(vec![
        event.seq.to_string(),
        event.at.as_nanos().to_string(),
        event.node.to_string(),
        direction.to_owned(),
        record.message.to_string(),
        record.producer.to_string(),
        record.sequence.to_string(),
        record.destination.to_string(),
        record.priority.to_string(),
        record.delivery_mode.to_string(),
        record.time_to_live.to_string(),
        record.body_bytes.to_string(),
        actor,
        endpoint,
        session.to_string(),
        record.sent_at.as_nanos().to_string(),
        record.redelivered.to_string(),
        record.delivery_count.to_string(),
    ])
}

/// The [`TRACE_COLUMNS`] header as one CSV line (with trailing newline).
pub fn event_csv_header() -> String {
    let mut line = TRACE_COLUMNS.join(",");
    line.push('\n');
    line
}

/// Renders one send/receive event as a CSV line (with trailing newline);
/// other event kinds render as `None`.
pub fn event_csv_line(event: &Event) -> Option<String> {
    let row = event_row(event)?;
    let mut line = row.iter().map(|f| quote(f)).collect::<Vec<_>>().join(",");
    line.push('\n');
    Some(line)
}

/// Exports the send/receive rows of a trace as CSV: one line per message
/// event with the columns the paper's analysis joins on.
pub fn trace_to_csv(trace: &Trace) -> String {
    let rows = trace.iter().filter_map(event_row);
    render(&TRACE_COLUMNS, rows)
}

/// An error importing a CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvImportError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for CsvImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CsvImportError {}

/// Splits one CSV line into fields, honouring the quoting rules
/// [`render`] applies.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    fields.push(field);
    fields
}

fn parse_id<T: From<u64>>(text: &str, prefix: &str) -> Result<T, String> {
    text.strip_prefix(prefix)
        .and_then(|raw| raw.strip_prefix('-'))
        .and_then(|raw| raw.parse::<u64>().ok())
        .map(T::from)
        .ok_or_else(|| format!("expected {prefix}-N id, got {text:?}"))
}

fn parse_destination(text: &str) -> Result<Destination, String> {
    if let Some(name) = text.strip_prefix("queue:") {
        Ok(Destination::queue(name))
    } else if let Some(name) = text.strip_prefix("topic:") {
        Ok(Destination::topic(name))
    } else {
        Err(format!("expected queue:NAME or topic:NAME, got {text:?}"))
    }
}

fn parse_endpoint(text: &str) -> Result<EndpointId, String> {
    if let Some(name) = text.strip_prefix("queue:") {
        return Ok(EndpointId::Queue(QueueName::new(name)));
    }
    if let Some(rest) = text.strip_prefix("durable:") {
        let (owner, topic) = rest
            .rsplit_once("@topic:")
            .ok_or_else(|| format!("malformed durable endpoint {text:?}"))?;
        let (client, name) = owner
            .split_once('/')
            .ok_or_else(|| format!("malformed durable endpoint {text:?}"))?;
        return Ok(EndpointId::durable(
            TopicName::new(topic),
            ClientId::new(client),
            name,
        ));
    }
    if let Some(rest) = text.strip_prefix("sub:") {
        let (consumer, topic) = rest
            .rsplit_once("@topic:")
            .ok_or_else(|| format!("malformed subscription endpoint {text:?}"))?;
        return Ok(EndpointId::non_durable(
            TopicName::new(topic),
            parse_id(consumer, "cons")?,
        ));
    }
    Err(format!("unrecognised endpoint {text:?}"))
}

fn parse_ttl(text: &str) -> Result<TimeToLive, String> {
    if text == "forever" {
        return Ok(TimeToLive::FOREVER);
    }
    text.strip_suffix("ms")
        .and_then(|raw| raw.parse::<u64>().ok())
        .map(TimeToLive::from_millis)
        .ok_or_else(|| format!("expected forever or Nms, got {text:?}"))
}

fn parse_event(fields: &[String]) -> Result<Event, String> {
    if fields.len() != TRACE_COLUMNS.len() {
        return Err(format!(
            "expected {} fields, got {}",
            TRACE_COLUMNS.len(),
            fields.len()
        ));
    }
    let number = |index: usize, what: &str| -> Result<u64, String> {
        fields[index]
            .parse::<u64>()
            .map_err(|_| format!("bad {what}: {:?}", fields[index]))
    };
    let record = MessageRecord {
        message: parse_id::<MessageId>(&fields[4], "msg")?,
        producer: parse_id::<ProducerId>(&fields[5], "prod")?,
        sequence: number(6, "producer_seq")?,
        destination: parse_destination(&fields[7])?,
        priority: fields[8]
            .parse::<u8>()
            .ok()
            .and_then(Priority::new)
            .ok_or_else(|| format!("bad priority: {:?}", fields[8]))?,
        delivery_mode: match fields[9].as_str() {
            "persistent" => DeliveryMode::Persistent,
            "non-persistent" => DeliveryMode::NonPersistent,
            other => return Err(format!("bad delivery mode: {other:?}")),
        },
        time_to_live: parse_ttl(&fields[10])?,
        sent_at: Timestamp::from_nanos(number(15, "sent_at_nanos")?),
        body_bytes: number(11, "body_bytes")?,
        redelivered: match fields[16].as_str() {
            "true" => true,
            "false" => false,
            other => return Err(format!("bad redelivered flag: {other:?}")),
        },
        delivery_count: number(17, "delivery_count")? as u32,
        properties: Default::default(),
    };
    let session: SessionId = parse_id(&fields[14], "sess")?;
    let kind = match fields[3].as_str() {
        "send" => EventKind::Send {
            record,
            session,
            tx: None,
        },
        "receive" => EventKind::Receive {
            consumer: parse_id(&fields[12], "cons")?,
            endpoint: parse_endpoint(&fields[13])?,
            record,
            session,
            tx: None,
        },
        other => return Err(format!("bad direction: {other:?}")),
    };
    Ok(Event {
        seq: number(0, "seq")?,
        at: Timestamp::from_nanos(number(1, "at_nanos")?),
        node: parse_id::<NodeId>(&fields[2], "node")?,
        kind,
    })
}

/// Imports a trace previously exported with [`trace_to_csv`] (or spilled
/// by [`crate::CsvSink`]).
///
/// The import is best-effort by construction: CSV only carries
/// send/receive rows, so consumer lifecycles, acknowledgements,
/// transactions (all rows import as untransacted), message properties and
/// phase markers are absent. Replaying an imported trace is meaningful
/// for comparing analyzers against each other on the same input, not for
/// recovering the original verdict.
///
/// # Errors
///
/// Returns a [`CsvImportError`] naming the first malformed line.
pub fn trace_from_csv(text: &str) -> Result<Trace, CsvImportError> {
    let mut events = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if index == 0 || line.trim().is_empty() {
            continue; // header
        }
        let fields = split_line(line);
        let event = parse_event(&fields).map_err(|reason| CsvImportError {
            line: index + 1,
            reason,
        })?;
        events.push(event);
    }
    Ok(Trace::from_events(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MessageRecord};
    use jmst_api::destination::{Destination, EndpointId};
    use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId};
    use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
    use jmst_api::time::Timestamp;

    #[test]
    fn quoting_rules() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(quote("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn render_produces_header_and_rows() {
        let text = render(&["x"], [vec!["1".to_owned()], vec!["2".to_owned()]]);
        assert_eq!(text, "x\n1\n2\n");
    }

    fn record() -> MessageRecord {
        MessageRecord {
            message: MessageId::from_raw(1),
            producer: ProducerId::from_raw(2),
            sequence: 0,
            destination: Destination::queue("q"),
            priority: Priority::DEFAULT,
            delivery_mode: DeliveryMode::Persistent,
            time_to_live: TimeToLive::FOREVER,
            sent_at: Timestamp::ZERO,
            body_bytes: 3,
            redelivered: false,
            delivery_count: 1,
            properties: Default::default(),
        }
    }

    #[test]
    fn trace_export_includes_sends_and_receives_only() {
        let trace = Trace::from_events(vec![
            Event {
                seq: 0,
                at: Timestamp::from_millis(1),
                node: NodeId::from_raw(0),
                kind: EventKind::Send {
                    record: record(),
                    session: SessionId::from_raw(1),
                    tx: None,
                },
            },
            Event {
                seq: 1,
                at: Timestamp::from_millis(2),
                node: NodeId::from_raw(0),
                kind: EventKind::BrokerCrashed,
            },
            Event {
                seq: 2,
                at: Timestamp::from_millis(3),
                node: NodeId::from_raw(0),
                kind: EventKind::Receive {
                    consumer: ConsumerId::from_raw(7),
                    endpoint: EndpointId::for_queue("q".into()),
                    record: record(),
                    session: SessionId::from_raw(2),
                    tx: None,
                },
            },
        ]);
        let csv = trace_to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + send + receive
        assert!(lines[1].contains("send"));
        assert!(lines[2].contains("receive"));
        assert!(lines[2].contains("cons-7"));
    }

    #[test]
    fn csv_round_trips_send_and_receive_rows() {
        let send = Event {
            seq: 0,
            at: Timestamp::from_millis(1),
            node: NodeId::from_raw(3),
            kind: EventKind::Send {
                record: MessageRecord {
                    redelivered: false,
                    ..record()
                },
                session: SessionId::from_raw(1),
                tx: None,
            },
        };
        let receive = Event {
            seq: 1,
            at: Timestamp::from_millis(2),
            node: NodeId::from_raw(4),
            kind: EventKind::Receive {
                consumer: ConsumerId::from_raw(7),
                endpoint: EndpointId::for_queue("q".into()),
                record: MessageRecord {
                    redelivered: true,
                    delivery_count: 2,
                    sent_at: Timestamp::from_millis(1),
                    time_to_live: TimeToLive::from_millis(250),
                    ..record()
                },
                session: SessionId::from_raw(2),
                tx: None,
            },
        };
        let trace = Trace::from_events(vec![send, receive]);
        let imported = trace_from_csv(&trace_to_csv(&trace)).unwrap();
        assert_eq!(imported, trace);
    }

    #[test]
    fn csv_round_trips_subscription_endpoints() {
        let receive = |endpoint: EndpointId| Event {
            seq: 0,
            at: Timestamp::from_millis(2),
            node: NodeId::from_raw(0),
            kind: EventKind::Receive {
                consumer: ConsumerId::from_raw(7),
                endpoint,
                record: MessageRecord {
                    destination: Destination::topic("t"),
                    ..record()
                },
                session: SessionId::from_raw(2),
                tx: None,
            },
        };
        for endpoint in [
            EndpointId::non_durable("t".into(), ConsumerId::from_raw(7)),
            EndpointId::durable("t".into(), jmst_api::id::ClientId::new("client"), "audit"),
        ] {
            let trace = Trace::from_events(vec![receive(endpoint)]);
            let imported = trace_from_csv(&trace_to_csv(&trace)).unwrap();
            assert_eq!(imported, trace);
        }
    }

    #[test]
    fn csv_import_reports_malformed_lines() {
        let trace = Trace::from_events(vec![Event {
            seq: 0,
            at: Timestamp::from_millis(1),
            node: NodeId::from_raw(0),
            kind: EventKind::Send {
                record: record(),
                session: SessionId::from_raw(1),
                tx: None,
            },
        }]);
        let mut text = trace_to_csv(&trace);
        text.push_str("garbage line\n");
        let error = trace_from_csv(&text).unwrap_err();
        assert_eq!(error.line, 3);
        assert!(error.to_string().contains("csv line 3"));
    }

    #[test]
    fn split_line_honours_quotes() {
        assert_eq!(split_line("a,b"), ["a", "b"]);
        assert_eq!(split_line("\"a,b\",c"), ["a,b", "c"]);
        assert_eq!(split_line("\"say \"\"hi\"\"\",x"), ["say \"hi\"", "x"]);
    }
}
