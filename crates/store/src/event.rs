//! The execution-trace event schema.
//!
//! "As each message is sent and received, these events are logged to disk,
//! along with the unique message identifier and a timestamp" (paper §4).
//! Every analysable fact — lifecycle, sends, receives, transaction
//! boundaries, crashes, test phases — is one [`Event`] row; the analysis
//! in `jmst-core` is queries over these rows, as the paper's analysis is
//! SQL over its event tables.

use jmst_api::destination::{Destination, EndpointId};
use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId, TxId};
use jmst_api::message::Message;
use jmst_api::modes::{DeliveryMode, Priority, SessionMode, TimeToLive};
use jmst_api::properties::Properties;
use jmst_api::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The message fields the analysis model needs, denormalised into the
/// trace so analysis never needs the provider again (black-box testing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Unique message id.
    pub message: MessageId,
    /// Sending producer.
    pub producer: ProducerId,
    /// Per-producer send sequence number.
    pub sequence: u64,
    /// Destination the message was sent to.
    pub destination: Destination,
    /// Message priority.
    pub priority: Priority,
    /// Delivery mode.
    pub delivery_mode: DeliveryMode,
    /// Time-to-live at send.
    pub time_to_live: TimeToLive,
    /// Provider send timestamp.
    pub sent_at: Timestamp,
    /// Body payload size in bytes.
    pub body_bytes: u64,
    /// Whether the provider flagged the delivery as a redelivery.
    pub redelivered: bool,
    /// 1-based delivery attempt this record represents (the JMS
    /// `JMSXDeliveryCount`): `1` for a first delivery, `n > 1` for the
    /// (n−1)-th redelivery.
    pub delivery_count: u32,
    /// User properties, kept so the analysis can re-evaluate message
    /// selectors when computing which messages a subscription covers.
    pub properties: Properties,
}

impl MessageRecord {
    /// Extracts the record of a stamped message.
    pub fn from_message(message: &Message) -> Self {
        Self {
            message: message.id(),
            producer: message.producer(),
            sequence: message.sequence(),
            destination: message.destination().clone(),
            priority: message.priority(),
            delivery_mode: message.delivery_mode(),
            time_to_live: message.time_to_live(),
            sent_at: message.sent_at(),
            body_bytes: message.body_size() as u64,
            redelivered: message.is_redelivered(),
            delivery_count: message.delivery_count(),
            properties: message.properties().clone(),
        }
    }
}

impl From<&Message> for MessageRecord {
    fn from(message: &Message) -> Self {
        Self::from_message(message)
    }
}

/// A test-run phase (paper §3.2: warm-up, run, warm-down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Before the system reaches steady state.
    WarmUp,
    /// The measured period.
    Run,
    /// Producers stopped; consumers drain the backlog.
    WarmDown,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::WarmUp => "warm-up",
            Phase::Run => "run",
            Phase::WarmDown => "warm-down",
        })
    }
}

/// The kind of a trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// A producer was created.
    ProducerCreated {
        /// The producer.
        producer: ProducerId,
        /// Its destination.
        destination: Destination,
        /// Whether its session is transacted.
        transacted: bool,
    },
    /// A producer was closed.
    ProducerClosed {
        /// The producer.
        producer: ProducerId,
    },
    /// A consumer was created (opening its consumer-group end-point).
    ConsumerCreated {
        /// The consumer.
        consumer: ConsumerId,
        /// The consumer group it serves.
        endpoint: EndpointId,
        /// Its session's mode.
        session_mode: SessionMode,
        /// Its message selector, if any.
        selector: Option<String>,
    },
    /// A consumer was closed (a close of its consumer group, Definition 4).
    ConsumerClosed {
        /// The consumer.
        consumer: ConsumerId,
        /// The consumer group it served.
        endpoint: EndpointId,
    },
    /// A message was sent (or buffered, in a transaction).
    Send {
        /// The stamped message.
        record: MessageRecord,
        /// The session that sent it.
        session: SessionId,
        /// The enclosing transaction, if the session is transacted.
        tx: Option<TxId>,
    },
    /// A send attempt failed.
    SendFailed {
        /// The producer whose send failed.
        producer: ProducerId,
        /// The provider's error, as text.
        reason: String,
    },
    /// A message was received.
    Receive {
        /// The receiving consumer.
        consumer: ConsumerId,
        /// The consumer group the delivery belongs to.
        endpoint: EndpointId,
        /// The received message.
        record: MessageRecord,
        /// The receiving session.
        session: SessionId,
        /// The enclosing transaction, if the session is transacted.
        tx: Option<TxId>,
    },
    /// A client acknowledgement.
    Acknowledge {
        /// The acknowledging session.
        session: SessionId,
    },
    /// A transaction committed.
    Commit {
        /// The session.
        session: SessionId,
        /// The committed transaction.
        tx: TxId,
    },
    /// A transaction rolled back.
    Rollback {
        /// The session.
        session: SessionId,
        /// The rolled-back transaction.
        tx: TxId,
    },
    /// A poison message exceeded the broker's redelivery bound and was
    /// parked on a dead-letter queue instead of being redelivered.
    DeadLettered {
        /// The parked message, as last delivered (its `delivery_count`
        /// records the attempts burned on it).
        record: MessageRecord,
        /// The dead-letter queue it was parked on.
        parked_on: jmst_api::destination::QueueName,
    },
    /// A durable subscription was deleted.
    Unsubscribed {
        /// The deleted subscription's end-point.
        endpoint: EndpointId,
    },
    /// The broker crashed (injected by the harness).
    BrokerCrashed,
    /// The broker recovered.
    BrokerRecovered,
    /// A test phase began.
    PhaseStarted {
        /// The phase.
        phase: Phase,
    },
}

impl EventKind {
    /// Returns the message record if the event is a send or a receive.
    pub fn message_record(&self) -> Option<&MessageRecord> {
        match self {
            EventKind::Send { record, .. } | EventKind::Receive { record, .. } => Some(record),
            _ => None,
        }
    }

    /// A short tag naming the event type, for CSV export and debugging.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::ProducerCreated { .. } => "producer_created",
            EventKind::ProducerClosed { .. } => "producer_closed",
            EventKind::ConsumerCreated { .. } => "consumer_created",
            EventKind::ConsumerClosed { .. } => "consumer_closed",
            EventKind::Send { .. } => "send",
            EventKind::SendFailed { .. } => "send_failed",
            EventKind::Receive { .. } => "receive",
            EventKind::Acknowledge { .. } => "acknowledge",
            EventKind::Commit { .. } => "commit",
            EventKind::Rollback { .. } => "rollback",
            EventKind::DeadLettered { .. } => "dead_lettered",
            EventKind::Unsubscribed { .. } => "unsubscribed",
            EventKind::BrokerCrashed => "broker_crashed",
            EventKind::BrokerRecovered => "broker_recovered",
            EventKind::PhaseStarted { .. } => "phase_started",
        }
    }
}

/// One trace event: what happened, where, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global sequence number assigned by the recorder (total order of
    /// logging, which is also the tie-breaker for identical timestamps).
    pub seq: u64,
    /// When the event happened, by the logging node's clock.
    pub at: Timestamp,
    /// The harness node that logged the event.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The canonical ordering key `(at, seq)`: timestamp first, recorder
    /// sequence as the tie-breaker.
    ///
    /// Every component that orders events — [`crate::Trace::from_events`],
    /// the streaming [`crate::ReorderBuffer`], and the analyzers in
    /// `jmst-core` — sorts by this one key, so "canonical order" means
    /// exactly one thing across the codebase.
    pub fn ord_key(&self) -> (Timestamp, u64) {
        (self.at, self.seq)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.seq,
            self.at,
            self.node,
            self.kind.tag()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::body::Body;
    use jmst_api::message::{MessageDraft, Stamp};

    fn sample_message() -> Message {
        MessageDraft::new(Body::bytes(vec![7u8; 64]))
            .priority(Priority::new(3).unwrap())
            .delivery_mode(DeliveryMode::NonPersistent)
            .time_to_live(TimeToLive::from_millis(9))
            .stamp(Stamp {
                id: MessageId::from_raw(5),
                producer: ProducerId::from_raw(2),
                sequence: 11,
                destination: Destination::queue("q"),
                sent_at: Timestamp::from_millis(1),
            })
    }

    #[test]
    fn record_captures_message_fields() {
        let record = MessageRecord::from_message(&sample_message());
        assert_eq!(record.message, MessageId::from_raw(5));
        assert_eq!(record.producer, ProducerId::from_raw(2));
        assert_eq!(record.sequence, 11);
        assert_eq!(record.priority.level(), 3);
        assert_eq!(record.delivery_mode, DeliveryMode::NonPersistent);
        assert_eq!(record.time_to_live.as_millis(), 9);
        assert_eq!(record.body_bytes, 64);
        assert!(!record.redelivered);
        assert_eq!(record.delivery_count, 1);
    }

    #[test]
    fn dead_lettered_event_has_its_own_tag() {
        let record = MessageRecord::from_message(&sample_message());
        let event = EventKind::DeadLettered {
            record,
            parked_on: jmst_api::destination::QueueName::new("DLQ.q"),
        };
        assert_eq!(event.tag(), "dead_lettered");
    }

    #[test]
    fn record_from_reference_conversion() {
        let message = sample_message();
        let a = MessageRecord::from(&message);
        let b = MessageRecord::from_message(&message);
        assert_eq!(a, b);
    }

    #[test]
    fn message_record_accessor() {
        let record = MessageRecord::from_message(&sample_message());
        let send = EventKind::Send {
            record: record.clone(),
            session: SessionId::from_raw(1),
            tx: None,
        };
        assert_eq!(send.message_record(), Some(&record));
        assert_eq!(EventKind::BrokerCrashed.message_record(), None);
    }

    #[test]
    fn tags_are_distinct_for_send_and_receive() {
        let record = MessageRecord::from_message(&sample_message());
        let send = EventKind::Send {
            record: record.clone(),
            session: SessionId::from_raw(1),
            tx: None,
        };
        let receive = EventKind::Receive {
            consumer: ConsumerId::from_raw(1),
            endpoint: EndpointId::for_queue("q".into()),
            record,
            session: SessionId::from_raw(1),
            tx: None,
        };
        assert_eq!(send.tag(), "send");
        assert_eq!(receive.tag(), "receive");
    }

    #[test]
    fn phases_display() {
        assert_eq!(Phase::WarmUp.to_string(), "warm-up");
        assert_eq!(Phase::Run.to_string(), "run");
        assert_eq!(Phase::WarmDown.to_string(), "warm-down");
    }

    #[test]
    fn ord_key_orders_by_time_then_seq() {
        let make = |seq, at_ms| Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::BrokerCrashed,
        };
        assert!(make(5, 1).ord_key() < make(0, 2).ord_key());
        assert!(make(0, 2).ord_key() < make(1, 2).ord_key());
        assert_eq!(make(3, 4).ord_key(), (Timestamp::from_millis(4), 3));
    }

    #[test]
    fn event_display_includes_tag() {
        let event = Event {
            seq: 1,
            at: Timestamp::from_millis(3),
            node: NodeId::from_raw(0),
            kind: EventKind::BrokerCrashed,
        };
        assert!(event.to_string().contains("broker_crashed"));
    }
}
