//! Property-based tests of the trace store: canonical ordering, merge
//! semantics, index consistency, and statistics invariants.

use jmst_api::destination::{Destination, EndpointId};
use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId, TxId};
use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind, MessageRecord};
use jmst_store::stats::SummaryStats;
use jmst_store::trace::Trace;
use jmst_store::TraceStore;
use proptest::prelude::*;

fn record(message: u64, producer: u64, sequence: u64) -> MessageRecord {
    MessageRecord {
        message: MessageId::from_raw(message),
        producer: ProducerId::from_raw(producer),
        sequence,
        destination: Destination::queue("q"),
        priority: Priority::DEFAULT,
        delivery_mode: DeliveryMode::Persistent,
        time_to_live: TimeToLive::FOREVER,
        sent_at: Timestamp::from_millis(sequence),
        body_bytes: 16,
        redelivered: false,
        delivery_count: 1,
        properties: Default::default(),
    }
}

/// Generates an arbitrary soup of events with random timestamps.
fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (
            0u64..1_000,
            0u64..5,
            0u64..100,
            prop_oneof![Just(0u8), Just(1), Just(2), Just(3)],
        ),
        0..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (at, node, message, kind))| Event {
                seq: i as u64,
                at: Timestamp::from_millis(at),
                node: NodeId::from_raw(node),
                kind: match kind {
                    0 => EventKind::Send {
                        record: record(message, message % 3, message),
                        session: SessionId::from_raw(1),
                        tx: None,
                    },
                    1 => EventKind::Receive {
                        consumer: ConsumerId::from_raw(7),
                        endpoint: EndpointId::for_queue("q".into()),
                        record: record(message, message % 3, message),
                        session: SessionId::from_raw(2),
                        tx: None,
                    },
                    2 => EventKind::Commit {
                        session: SessionId::from_raw(1),
                        tx: TxId::from_raw(message),
                    },
                    _ => EventKind::BrokerCrashed,
                },
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn from_events_produces_canonical_order(events in arb_events()) {
        let trace = Trace::from_events(events.clone());
        prop_assert_eq!(trace.len(), events.len());
        for window in trace.events().windows(2) {
            prop_assert!(
                (window[0].at, window[0].seq) <= (window[1].at, window[1].seq),
                "not canonically ordered"
            );
        }
    }

    #[test]
    fn merge_is_order_insensitive(events in arb_events(), split in any::<prop::sample::Index>()) {
        let cut = if events.is_empty() { 0 } else { split.index(events.len()) };
        let (left, right) = events.split_at(cut);
        let a = Trace::merge([
            Trace::from_events(left.to_vec()),
            Trace::from_events(right.to_vec()),
        ]);
        let b = Trace::merge([
            Trace::from_events(right.to_vec()),
            Trace::from_events(left.to_vec()),
        ]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn store_tables_are_consistent_with_the_trace(events in arb_events()) {
        let trace = Trace::from_events(events);
        let store = TraceStore::build(&trace);
        let sends = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .count();
        let receives = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Receive { .. }))
            .count();
        let crashes = trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BrokerCrashed))
            .count();
        prop_assert_eq!(store.sends().len(), sends);
        prop_assert_eq!(store.receives().len(), receives);
        prop_assert_eq!(store.crashes().len(), crashes);
        // Indexes resolve every row.
        for row in store.receives() {
            let found = store.receives_of(row.record.message).count();
            prop_assert!(found >= 1);
        }
        for row in store.sends() {
            // Later sends of the same message id overwrite the index, but
            // the index must always point at *a* send of that id.
            let indexed = store.send_of(row.record.message).expect("indexed");
            prop_assert_eq!(indexed.record.message, row.record.message);
        }
        // Effective sets are subsets.
        prop_assert!(store.effective_sends().count() <= sends);
        prop_assert!(store.effective_receives().count() <= receives);
    }

    #[test]
    fn summary_stats_merge_any_split(
        samples in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in any::<prop::sample::Index>(),
    ) {
        let cut = split.index(samples.len());
        let all: SummaryStats = samples.iter().copied().collect();
        let mut left: SummaryStats = samples[..cut].iter().copied().collect();
        let right: SummaryStats = samples[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!(
            (left.variance() - all.variance()).abs()
                < 1e-6 * (1.0 + all.variance().abs())
        );
    }

    #[test]
    fn stats_bounds_hold(samples in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let stats: SummaryStats = samples.iter().copied().collect();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.min(), Some(min));
        prop_assert_eq!(stats.max(), Some(max));
        prop_assert!(stats.mean() >= min - 1e-9 && stats.mean() <= max + 1e-9);
        prop_assert!(stats.variance() >= 0.0);
    }

    // The open-loop engine records latency into one `LogHistogram` per
    // worker and merges them at the end; the merged histogram must be
    // indistinguishable from recording the whole stream into one.
    #[test]
    fn merged_per_worker_log_histograms_match_single_stream(
        samples in prop::collection::vec(0u64..5_000_000_000, 1..400),
        workers in 1usize..8,
    ) {
        use jmst_store::LogHistogram;
        let mut single = LogHistogram::new();
        let mut per_worker = vec![LogHistogram::new(); workers];
        for (index, &nanos) in samples.iter().enumerate() {
            single.record_nanos(nanos);
            per_worker[index % workers].record_nanos(nanos);
        }
        let mut merged = LogHistogram::new();
        for histogram in &per_worker {
            merged.merge(histogram);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q), "q = {}", q);
        }
    }

    #[test]
    fn csv_export_row_count_matches_message_events(events in arb_events()) {
        let trace = Trace::from_events(events);
        let csv = jmst_store::csv::trace_to_csv(&trace);
        let message_events = trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Send { .. } | EventKind::Receive { .. }
                )
            })
            .count();
        prop_assert_eq!(csv.lines().count(), message_events + 1); // + header
    }
}
