//! Robustness of the campaign journal against the damage a real crash
//! (or a hostile editor) inflicts on an append-only file: truncated
//! tails, flipped bits, and wrong keys must each surface as their own
//! typed error, and salvage must recover exactly the records whose
//! frames verify — never more, never fewer.

use jmst_store::journal::{
    schedule_digest, Journal, JournalError, JournalKey, JournalRecord, JournalWriter,
    VerdictRecord, JOURNAL_MAGIC,
};
use proptest::prelude::*;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "jmst-journal-robust-{tag}-{}-{:?}.jrnl",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A mixed batch of records resembling a real campaign journal.
fn campaign_records(tests: usize) -> Vec<JournalRecord> {
    let mut records = vec![JournalRecord::CampaignStarted {
        campaign: "robustness".to_owned(),
        tests: (0..tests).map(|i| format!("t{i}")).collect(),
        spec_digest: schedule_digest(&(0..tests).map(|i| format!("spec {i}")).collect::<Vec<_>>()),
    }];
    for index in 0..tests {
        records.push(JournalRecord::TestStarted {
            index,
            name: format!("t{index}"),
            attempt: 1,
        });
        records.push(JournalRecord::TestFinished {
            index,
            name: format!("t{index}"),
            verdict: VerdictRecord {
                status: "passed".to_owned(),
                detail: String::new(),
                violations: 0,
                sends: 10 + index as u64,
                receives: 10 + index as u64,
            },
        });
    }
    records
}

fn write_journal(path: &std::path::Path, key: &JournalKey, records: &[JournalRecord]) {
    let mut writer = JournalWriter::create(path, key).unwrap();
    for record in records {
        writer.append(record).unwrap();
    }
}

#[test]
fn truncated_tail_is_typed_and_salvage_keeps_the_prefix() {
    let key = JournalKey::default();
    let path = temp_path("trunc");
    let records = campaign_records(3);
    write_journal(&path, &key, &records);
    let full = std::fs::read(&path).unwrap();
    // Chop 5 bytes off the last frame: an append interrupted mid-write.
    std::fs::write(&path, &full[..full.len() - 5]).unwrap();
    let err = Journal::read(&path, &key).unwrap_err();
    assert!(
        matches!(err, JournalError::TruncatedTail { index, .. } if index == records.len() - 1),
        "{err}"
    );
    let salvage = Journal::salvage(&path, &key).unwrap();
    assert_eq!(salvage.records, records[..records.len() - 1]);
    assert!(!salvage.intact());
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flip_in_a_payload_is_a_crc_error() {
    let key = JournalKey::default();
    let path = temp_path("flip");
    let records = campaign_records(2);
    write_journal(&path, &key, &records);
    let mut data = std::fs::read(&path).unwrap();
    // Flip one bit somewhere inside the first record's JSON payload
    // (magic is 8 bytes, frame header 8 more; +4 lands in the payload).
    let target = JOURNAL_MAGIC.len() + 8 + 4;
    data[target] ^= 0x01;
    std::fs::write(&path, &data).unwrap();
    let err = Journal::read(&path, &key).unwrap_err();
    assert!(
        matches!(err, JournalError::CorruptRecord { index: 0, .. }),
        "{err}"
    );
    // Nothing before the damage, so salvage recovers nothing.
    let salvage = Journal::salvage(&path, &key).unwrap();
    assert!(salvage.records.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn consistent_forgery_is_caught_by_the_mac() {
    let key = JournalKey::default();
    let path = temp_path("forge");
    let records = campaign_records(2);
    write_journal(&path, &key, &records);
    let mut data = std::fs::read(&path).unwrap();
    // A smarter attacker edits the payload AND recomputes the CRC, so
    // only the HMAC can catch it. Locate the first frame.
    let base = JOURNAL_MAGIC.len();
    let len = u32::from_le_bytes(data[base..base + 4].try_into().unwrap()) as usize;
    let payload_start = base + 8;
    // Swap two bytes inside the JSON (keeps length identical).
    data.swap(payload_start + 3, payload_start + 4);
    let forged_crc = jmst_store::journal::crc32(&data[payload_start..payload_start + len]);
    data[base + 4..base + 8].copy_from_slice(&forged_crc.to_le_bytes());
    std::fs::write(&path, &data).unwrap();
    let err = Journal::read(&path, &key).unwrap_err();
    assert!(
        matches!(err, JournalError::MacMismatch { index: 0, .. }),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_key_rejects_the_whole_journal() {
    let path = temp_path("key");
    write_journal(
        &path,
        &JournalKey::from_passphrase("alpha"),
        &campaign_records(2),
    );
    let err = Journal::read(&path, &JournalKey::from_passphrase("beta")).unwrap_err();
    assert!(
        matches!(err, JournalError::MacMismatch { index: 0, .. }),
        "{err}"
    );
    let salvage = Journal::salvage(&path, &JournalKey::from_passphrase("beta")).unwrap();
    assert!(
        salvage.records.is_empty(),
        "no record verifies under the wrong key"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn record_reordering_breaks_the_chain() {
    let key = JournalKey::default();
    let path = temp_path("reorder");
    // Two identical-length records so a swap keeps the frame structure
    // byte-valid; only the chain position differs.
    let records = vec![
        JournalRecord::TestStarted {
            index: 0,
            name: "same-len-a".to_owned(),
            attempt: 1,
        },
        JournalRecord::TestStarted {
            index: 1,
            name: "same-len-b".to_owned(),
            attempt: 1,
        },
    ];
    write_journal(&path, &key, &records);
    let data = std::fs::read(&path).unwrap();
    let base = JOURNAL_MAGIC.len();
    let frame_len = (data.len() - base) / 2;
    let mut swapped = data[..base].to_vec();
    swapped.extend_from_slice(&data[base + frame_len..]);
    swapped.extend_from_slice(&data[base..base + frame_len]);
    std::fs::write(&path, &swapped).unwrap();
    let err = Journal::read(&path, &key).unwrap_err();
    assert!(
        matches!(err, JournalError::MacMismatch { index: 0, .. }),
        "swapping records must break the chained MAC: {err}"
    );
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Cutting the file at ANY byte position salvages exactly the
    // records whose complete frames fit before the cut.
    #[test]
    fn salvage_recovers_exactly_the_valid_prefix_at_any_cut(
        tests in 1usize..5,
        cut_fraction in 0.0f64..1.0,
    ) {
        let key = JournalKey::default();
        let path = temp_path(&format!("cut-{tests}"));
        let records = campaign_records(tests);
        write_journal(&path, &key, &records);
        let full = std::fs::read(&path).unwrap();

        // Record each frame's end offset so we can predict the prefix.
        let mut frame_ends = Vec::new();
        let mut pos = JOURNAL_MAGIC.len();
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len + 32;
            frame_ends.push(pos);
        }
        prop_assert_eq!(frame_ends.len(), records.len());

        let cut = JOURNAL_MAGIC.len()
            + ((full.len() - JOURNAL_MAGIC.len()) as f64 * cut_fraction) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let salvage = Journal::salvage(&path, &key).unwrap();
        std::fs::remove_file(&path).ok();

        let expected = frame_ends.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(
            &salvage.records[..],
            &records[..expected],
            "cut at byte {} of {} should salvage {} records",
            cut,
            full.len(),
            expected
        );
        prop_assert_eq!(salvage.intact(), expected == records.len());
        // And the salvage point is exactly the last surviving frame end.
        let valid_len = frame_ends
            .iter()
            .copied()
            .rfind(|&end| end <= cut)
            .unwrap_or(JOURNAL_MAGIC.len());
        prop_assert_eq!(salvage.valid_len, valid_len as u64);
    }

    // Resuming at any cut point truncates the damage and yields a
    // journal that — after appending the remaining records — reads
    // back identical to one written without interruption.
    #[test]
    fn resume_after_any_cut_rebuilds_an_identical_journal(
        tests in 1usize..4,
        cut_fraction in 0.0f64..1.0,
    ) {
        let key = JournalKey::default();
        let records = campaign_records(tests);

        let uncut = temp_path(&format!("uncut-{tests}"));
        write_journal(&uncut, &key, &records);
        let reference = std::fs::read(&uncut).unwrap();
        std::fs::remove_file(&uncut).ok();

        let path = temp_path(&format!("resume-{tests}"));
        write_journal(&path, &key, &records);
        let full = std::fs::read(&path).unwrap();
        let cut = JOURNAL_MAGIC.len()
            + ((full.len() - JOURNAL_MAGIC.len()) as f64 * cut_fraction) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (mut writer, salvage) = Journal::resume(&path, &key).unwrap();
        for record in &records[salvage.records.len()..] {
            writer.append(record).unwrap();
        }
        drop(writer);
        let rebuilt = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(rebuilt, reference, "resumed journal must be byte-identical");
    }
}
