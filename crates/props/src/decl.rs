//! The property declaration language: one named assertion per line.
//!
//! ```text
//! name = decl
//! ```
//!
//! where `decl` is one of:
//!
//! * `ordered` / `no_duplicates` / `redelivery <= N` / `required` /
//!   `integrity` / `priority` / `expiry` — mirrors of the built-in
//!   checkers (guards are not permitted on these, so a mirror is always
//!   verdict-identical to its built-in twin);
//! * `deadline DUR [where GUARD]` — every (guarded) delivery must arrive
//!   within `DUR` of its send;
//! * `latency STAT <= DUR [where GUARD]` — a delivery-latency statistic
//!   (`mean`, `p50`, `p95`, `p99`, `max`) over the measurement window;
//! * `throughput >= RATE [where GUARD]` — delivered messages per second
//!   over the measurement window;
//! * `fairness <= RATIO [where GUARD]` — max/min per-consumer delivery
//!   counts over the measurement window;
//! * `receives >= N` / `receives <= N` `[where GUARD]` — whole-trace
//!   delivered-message count bounds.
//!
//! `GUARD` is a JMS message-selector expression (the same grammar the
//! broker evaluates), applied to each delivered message's headers and
//! user properties. Durations take `ns`/`us`/`µs`/`ms`/`s`/`m` suffixes.
//! The same grammar parses standalone `.prop` files (`#` comments,
//! blank lines) and the `[properties]` section of a scenario file.

use jmst_api::selector::Selector;
use serde::{Deserialize, Serialize, Serializer};
use std::fmt;
use std::time::Duration;

/// A parsed guard: the original selector text plus its compiled form.
#[derive(Debug, Clone)]
pub struct Guard {
    text: String,
    selector: Selector,
}

impl Guard {
    /// Parses a selector expression into a guard.
    pub fn parse(text: &str) -> Result<Guard, String> {
        let selector = Selector::parse(text).map_err(|e| format!("guard: {e}"))?;
        Ok(Guard {
            text: text.trim().to_owned(),
            selector,
        })
    }

    /// The guard's original selector text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The compiled selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }
}

impl PartialEq for Guard {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Which latency statistic an SLO bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyStat {
    /// Arithmetic mean.
    Mean,
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// Maximum.
    Max,
}

impl LatencyStat {
    /// The statistic's keyword in the DSL.
    pub fn keyword(self) -> &'static str {
        match self {
            LatencyStat::Mean => "mean",
            LatencyStat::P50 => "p50",
            LatencyStat::P95 => "p95",
            LatencyStat::P99 => "p99",
            LatencyStat::Max => "max",
        }
    }

    fn parse(text: &str) -> Option<LatencyStat> {
        Some(match text {
            "mean" => LatencyStat::Mean,
            "p50" => LatencyStat::P50,
            "p95" => LatencyStat::P95,
            "p99" => LatencyStat::P99,
            "max" => LatencyStat::Max,
            _ => return None,
        })
    }
}

/// Direction of a receive-count bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountOp {
    /// `receives >= N`: at least N deliveries by end of trace.
    AtLeast,
    /// `receives <= N`: at most N deliveries, ever.
    AtMost,
}

/// One property declaration (the right-hand side of a DSL line).
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyDecl {
    /// Mirror of the built-in P3 ordering checker.
    Ordered,
    /// Mirror of the built-in duplicate-delivery checker.
    NoDuplicates,
    /// Mirror of the built-in bounded-redelivery checker.
    RedeliveryBound(u32),
    /// Mirror of the built-in P2 required-messages checker.
    Required,
    /// Mirror of the built-in P1 delivery-integrity checker.
    Integrity,
    /// Mirror of the built-in P4 priority checker (default config).
    Priority,
    /// Mirror of the built-in P5 expiry checker (default config).
    Expiry,
    /// Per-message deadline: every guarded delivery within `bound`.
    Deadline {
        /// Maximum send-to-receive latency.
        bound: Duration,
        /// Optional message guard.
        guard: Option<Guard>,
    },
    /// A latency-statistic SLO over the measurement window.
    Latency {
        /// The bounded statistic.
        stat: LatencyStat,
        /// Its maximum value.
        bound: Duration,
        /// Optional message guard.
        guard: Option<Guard>,
    },
    /// A minimum delivered-throughput SLO over the measurement window.
    Throughput {
        /// Minimum messages per second.
        min_rate: f64,
        /// Optional message guard.
        guard: Option<Guard>,
    },
    /// A per-consumer fairness bound over the measurement window.
    Fairness {
        /// Maximum allowed max/min delivery-count ratio.
        max_ratio: f64,
        /// Optional message guard.
        guard: Option<Guard>,
    },
    /// A whole-trace delivered-message count bound.
    ReceiveCount {
        /// Bound direction.
        op: CountOp,
        /// The bound.
        count: u64,
        /// Optional message guard.
        guard: Option<Guard>,
    },
}

impl PropertyDecl {
    /// The guard, if the declaration carries one.
    pub fn guard(&self) -> Option<&Guard> {
        match self {
            PropertyDecl::Deadline { guard, .. }
            | PropertyDecl::Latency { guard, .. }
            | PropertyDecl::Throughput { guard, .. }
            | PropertyDecl::Fairness { guard, .. }
            | PropertyDecl::ReceiveCount { guard, .. } => guard.as_ref(),
            _ => None,
        }
    }

    /// Renders the declaration back to its DSL text (re-parseable).
    pub fn render(&self) -> String {
        let with_guard = |head: String, guard: &Option<Guard>| match guard {
            Some(guard) => format!("{head} where {guard}"),
            None => head,
        };
        match self {
            PropertyDecl::Ordered => "ordered".to_owned(),
            PropertyDecl::NoDuplicates => "no_duplicates".to_owned(),
            PropertyDecl::RedeliveryBound(bound) => format!("redelivery <= {bound}"),
            PropertyDecl::Required => "required".to_owned(),
            PropertyDecl::Integrity => "integrity".to_owned(),
            PropertyDecl::Priority => "priority".to_owned(),
            PropertyDecl::Expiry => "expiry".to_owned(),
            PropertyDecl::Deadline { bound, guard } => {
                with_guard(format!("deadline {}", fmt_duration(*bound)), guard)
            }
            PropertyDecl::Latency { stat, bound, guard } => with_guard(
                format!("latency {} <= {}", stat.keyword(), fmt_duration(*bound)),
                guard,
            ),
            PropertyDecl::Throughput { min_rate, guard } => {
                with_guard(format!("throughput >= {min_rate:?}"), guard)
            }
            PropertyDecl::Fairness { max_ratio, guard } => {
                with_guard(format!("fairness <= {max_ratio:?}"), guard)
            }
            PropertyDecl::ReceiveCount { op, count, guard } => {
                let op = match op {
                    CountOp::AtLeast => ">=",
                    CountOp::AtMost => "<=",
                };
                with_guard(format!("receives {op} {count}"), guard)
            }
        }
    }

    /// Parses a declaration (everything after the `=` of a DSL line).
    pub fn parse(text: &str) -> Result<PropertyDecl, String> {
        let (head, guard_text) = split_guard(text);
        let guard = match guard_text {
            Some(text) if text.trim().is_empty() => {
                return Err("empty guard after 'where'".to_owned())
            }
            Some(text) => Some(Guard::parse(text)?),
            None => None,
        };
        let tokens: Vec<&str> = head.split_whitespace().collect();
        let require_no_guard = |kind: &str| {
            if guard.is_some() {
                Err(format!(
                    "'{kind}' mirrors a built-in checker and does not take a guard"
                ))
            } else {
                Ok(())
            }
        };
        let decl = match tokens.as_slice() {
            ["ordered"] => {
                require_no_guard("ordered")?;
                PropertyDecl::Ordered
            }
            ["no_duplicates"] => {
                require_no_guard("no_duplicates")?;
                PropertyDecl::NoDuplicates
            }
            ["required"] => {
                require_no_guard("required")?;
                PropertyDecl::Required
            }
            ["integrity"] => {
                require_no_guard("integrity")?;
                PropertyDecl::Integrity
            }
            ["priority"] => {
                require_no_guard("priority")?;
                PropertyDecl::Priority
            }
            ["expiry"] => {
                require_no_guard("expiry")?;
                PropertyDecl::Expiry
            }
            ["redelivery", "<=", bound] => {
                require_no_guard("redelivery")?;
                PropertyDecl::RedeliveryBound(
                    bound
                        .parse()
                        .map_err(|_| format!("invalid redelivery bound '{bound}'"))?,
                )
            }
            ["deadline", duration] => PropertyDecl::Deadline {
                bound: parse_duration(duration)?,
                guard,
            },
            ["latency", stat, "<=", duration] => PropertyDecl::Latency {
                stat: LatencyStat::parse(stat)
                    .ok_or_else(|| format!("unknown latency statistic '{stat}'"))?,
                bound: parse_duration(duration)?,
                guard,
            },
            ["throughput", ">=", rate] => PropertyDecl::Throughput {
                min_rate: parse_bound_f64(rate, "throughput rate")?,
                guard,
            },
            ["fairness", "<=", ratio] => PropertyDecl::Fairness {
                max_ratio: parse_bound_f64(ratio, "fairness ratio")?,
                guard,
            },
            ["receives", op @ (">=" | "<="), count] => PropertyDecl::ReceiveCount {
                op: if *op == ">=" {
                    CountOp::AtLeast
                } else {
                    CountOp::AtMost
                },
                count: count
                    .parse()
                    .map_err(|_| format!("invalid receive count '{count}'"))?,
                guard,
            },
            [] => return Err("empty property declaration".to_owned()),
            [kind, ..] => return Err(format!("unknown property declaration '{kind}'")),
        };
        Ok(decl)
    }
}

/// A named property declaration: one DSL line.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySpec {
    /// The property's name (an identifier).
    pub name: String,
    /// The declaration.
    pub decl: PropertyDecl,
}

impl PropertySpec {
    /// Builds a named property.
    pub fn new(name: impl Into<String>, decl: PropertyDecl) -> Self {
        Self {
            name: name.into(),
            decl,
        }
    }

    /// Parses one `name = decl` line.
    pub fn parse_line(line: &str) -> Result<PropertySpec, String> {
        let Some((name, decl)) = line.split_once('=') else {
            return Err(format!("expected 'name = declaration', got '{line}'"));
        };
        let name = name.trim();
        if !is_identifier(name) {
            return Err(format!("invalid property name '{name}'"));
        }
        Ok(PropertySpec {
            name: name.to_owned(),
            decl: PropertyDecl::parse(decl.trim())
                .map_err(|e| format!("property '{name}': {e}"))?,
        })
    }

    /// Renders the property back to its DSL line.
    pub fn render(&self) -> String {
        format!("{} = {}", self.name, self.decl.render())
    }
}

impl fmt::Display for PropertySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl Serialize for PropertySpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.render())
    }
}

impl<'de> Deserialize<'de> for PropertySpec {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        PropertySpec::parse_line(&text).map_err(serde::de::Error::custom)
    }
}

/// A parse error with the 1-based line it occurred on (0 for single-line
/// parses).
#[derive(Debug, Clone, PartialEq)]
pub struct PropParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PropParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for PropParseError {}

/// Parses a whole property file (or `[properties]` section body): one
/// declaration per line, `#` comments, blank lines ignored. Property
/// names must be unique.
pub fn parse_properties(text: &str) -> Result<Vec<PropertySpec>, PropParseError> {
    let mut properties: Vec<PropertySpec> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(at) => &raw[..at],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let property = PropertySpec::parse_line(line).map_err(|message| PropParseError {
            line: index + 1,
            message,
        })?;
        if properties.iter().any(|p| p.name == property.name) {
            return Err(PropParseError {
                line: index + 1,
                message: format!("duplicate property name '{}'", property.name),
            });
        }
        properties.push(property);
    }
    Ok(properties)
}

/// Renders a property list back to file text (the inverse of
/// [`parse_properties`]).
pub fn render_properties(properties: &[PropertySpec]) -> String {
    let mut text = String::new();
    for property in properties {
        text.push_str(&property.render());
        text.push('\n');
    }
    text
}

fn is_identifier(text: &str) -> bool {
    let mut chars = text.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits a declaration at its `where` keyword, respecting selector
/// string literals (single quotes), so a guard containing the word in a
/// string is not cut.
fn split_guard(text: &str) -> (&str, Option<&str>) {
    let bytes = text.as_bytes();
    let mut in_string = false;
    for (at, _) in text.char_indices() {
        if bytes[at] == b'\'' {
            in_string = !in_string;
            continue;
        }
        if !in_string
            && text[at..].starts_with("where")
            && (at == 0 || bytes[at - 1].is_ascii_whitespace())
            && bytes
                .get(at + 5)
                .is_none_or(|next| next.is_ascii_whitespace())
        {
            return (&text[..at], Some(&text[at + 5..]));
        }
    }
    (text, None)
}

fn parse_bound_f64(text: &str, what: &str) -> Result<f64, String> {
    let value: f64 = text
        .parse()
        .map_err(|_| format!("invalid {what} '{text}'"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "{what} must be finite and non-negative, got {text}"
        ));
    }
    Ok(value)
}

/// Parses a duration with a `ns`/`us`/`µs`/`ms`/`s`/`m` suffix (the same
/// units scenario files use).
pub fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, scale_nanos) = if let Some(d) = text.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = text.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix("µs") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000_000)
    } else if let Some(d) = text.strip_suffix('m') {
        (d, 60_000_000_000)
    } else {
        return Err(format!(
            "duration '{text}' needs a unit suffix (ns/us/ms/s/m)"
        ));
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration '{text}'"))?;
    value
        .checked_mul(scale_nanos)
        .map(Duration::from_nanos)
        .ok_or_else(|| format!("duration '{text}' overflows"))
}

/// Renders a duration with the largest exact unit (inverse of
/// [`parse_duration`]).
pub fn fmt_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos == 0 {
        return "0s".to_owned();
    }
    if nanos.is_multiple_of(60_000_000_000) {
        format!("{}m", nanos / 60_000_000_000)
    } else if nanos.is_multiple_of(1_000_000_000) {
        format!("{}s", nanos / 1_000_000_000)
    } else if nanos.is_multiple_of(1_000_000) {
        format!("{}ms", nanos / 1_000_000)
    } else if nanos.is_multiple_of(1_000) {
        format!("{}us", nanos / 1_000)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_declaration_kind() {
        let text = "\
# built-in mirrors
order = ordered
dedup = no_duplicates
poison = redelivery <= 2
complete = required
honest = integrity
fast_lanes = priority
ttl = expiry
# QoS assertions
late = deadline 100ms
tail = latency p99 <= 250ms
floor = throughput >= 150.0
fair = fairness <= 3.0
cap = receives <= 1000
minimum = receives >= 10 where JMSPriority > 4
";
        let properties = parse_properties(text).expect("parses");
        assert_eq!(properties.len(), 13);
        assert_eq!(
            properties[7].decl,
            PropertyDecl::Deadline {
                bound: Duration::from_millis(100),
                guard: None
            }
        );
        assert!(properties[12].decl.guard().is_some());
    }

    #[test]
    fn round_trips_through_render() {
        let text = "\
late = deadline 100ms where JMSPriority > 4
tail = latency p99 <= 250ms
floor = throughput >= 150.0
poison = redelivery <= 2
";
        let properties = parse_properties(text).expect("parses");
        let rendered = render_properties(&properties);
        assert_eq!(parse_properties(&rendered).expect("re-parses"), properties);
    }

    #[test]
    fn rejects_malformed_declarations() {
        assert!(parse_properties("late = deadline").is_err());
        assert!(parse_properties("late = deadline 100").is_err());
        assert!(parse_properties("x = frobnicate 3").is_err());
        assert!(parse_properties("9bad = ordered").is_err());
        assert!(parse_properties("a = ordered\na = ordered").is_err());
        assert!(parse_properties("g = ordered where JMSPriority > 4").is_err());
        assert!(parse_properties("late = deadline 10ms where").is_err());
        assert!(parse_properties("late = deadline 10ms where ???").is_err());
        assert!(parse_properties("f = fairness <= NaN").is_err());
    }

    #[test]
    fn where_inside_string_literal_is_not_a_guard_split() {
        let properties = parse_properties("tag = receives >= 1 where jmst_tag = 'where it goes'")
            .expect("parses");
        assert_eq!(
            properties[0].decl.guard().unwrap().text(),
            "jmst_tag = 'where it goes'"
        );
    }

    #[test]
    fn duration_units_round_trip() {
        for text in ["250ms", "3s", "2m", "750us", "15ns"] {
            let parsed = parse_duration(text).expect(text);
            assert_eq!(fmt_duration(parsed), text);
        }
        assert!(parse_duration("100").is_err());
        assert!(parse_duration("ms").is_err());
    }
}
