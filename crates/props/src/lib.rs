//! # jmst-props — the QoS property DSL
//!
//! The paper analyzes providers against a fixed set of hard-coded
//! properties; this crate makes that set open-ended. A scenario (or a
//! standalone `.prop` file) declares named assertions in a small
//! line-based language — per-message deadlines, latency/throughput SLO
//! windows, fairness bounds, receive-count bounds, plus mirrors of every
//! built-in checker — and each declaration is:
//!
//! 1. **parsed** ([`decl`]) into a [`PropertySpec`];
//! 2. **statically verified** ([`analyze`]) against the trace-event
//!    schema and the scenario's own configuration — ill-typed guards,
//!    vacuous guards, spec-unsatisfiable bounds, and non-monitorable
//!    properties are rejected or flagged *before any driver starts*;
//! 3. **compiled** ([`compile`]) onto the streaming checker core: each
//!    surviving property becomes a [`jmst_core::PropertyChecker`] fed by
//!    the same observe/finish pipeline as the built-ins, so live
//!    watching, `fail_fast`, batch replay, and divergence checking work
//!    on DSL properties unchanged.
//!
//! # Example
//!
//! ```
//! use jmst_props::{analyze_properties, compile_registry, parse_properties, SpecContext};
//!
//! let properties = parse_properties(
//!     "late = deadline 100ms\ntail = latency p99 <= 250ms\n",
//! )
//! .expect("parses");
//! let diagnostics = analyze_properties(&properties, &SpecContext::default());
//! assert!(diagnostics.iter().all(|d| !d.error));
//! let registry = compile_registry(&properties);
//! assert_eq!(registry.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod compile;
pub mod decl;

pub use analyze::{analyze_properties, Monitorability, PropDiagnostic, SpecContext};
pub use compile::{compile, compile_registry};
pub use decl::{
    fmt_duration, parse_duration, parse_properties, render_properties, CountOp, Guard, LatencyStat,
    PropParseError, PropertyDecl, PropertySpec,
};
