//! Compilation of surviving property declarations onto the streaming
//! checker core: every declaration becomes a [`PropertyChecker`] driven
//! through the same observe/finish lifecycle as the built-ins, so the
//! live watcher, `fail_fast`, batch replay, and divergence checking all
//! work on DSL properties unchanged.
//!
//! The built-in mirrors (`ordered`, `no_duplicates`, …) wrap the actual
//! built-in checker structs — not re-implementations — so a mirror is
//! verdict-identical to its twin by construction. The QoS checkers
//! front themselves with a [`TxResolver`] (only committed operations
//! count, judged at their original timestamps) and, where the assertion
//! is windowed, gate samples through the same [`RunWindowTracker`] /
//! [`WindowGate`] pair the performance accumulator uses.

use crate::decl::{CountOp, Guard, LatencyStat, PropertyDecl, PropertySpec};
use jmst_api::id::ConsumerId;
use jmst_core::config::{AnalysisConfig, ExpiryConfig, PriorityConfig};
use jmst_core::defs::selector_accepts_record;
use jmst_core::properties::duplicates::{DuplicatesChecker, RedeliveryBoundChecker};
use jmst_core::properties::expiry::{ExpiryChecker, FitAccumulator};
use jmst_core::properties::integrity::IntegrityChecker;
use jmst_core::properties::ordering::OrderingChecker;
use jmst_core::properties::priority::PriorityChecker;
use jmst_core::properties::required::RequiredChecker;
use jmst_core::stream::{Resolved, RunWindowTracker, TxResolver, WindowGate};
use jmst_core::{CheckerRegistry, PropertyChecker, Violation};
use jmst_store::event::{Event, EventKind, MessageRecord};
use jmst_store::stats::DelayHistogram;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Compiles a list of (statically verified) properties into a checker
/// registry for [`jmst_core::Analyzer::with_registry`]. Registration
/// order follows declaration order, so report rows line up with the
/// source.
pub fn compile_registry(properties: &[PropertySpec]) -> CheckerRegistry {
    let mut registry = CheckerRegistry::new();
    for property in properties {
        let name = property.name.clone();
        let decl = property.decl.clone();
        registry.register(property.name.clone(), move || compile(&name, &decl));
    }
    registry
}

/// Instantiates one checker for a declaration.
pub fn compile(name: &str, decl: &PropertyDecl) -> Box<dyn PropertyChecker> {
    let defaults = AnalysisConfig::default();
    match decl {
        PropertyDecl::Ordered => Box::new(OrderedMirror(OrderingChecker::new())),
        PropertyDecl::NoDuplicates => Box::new(NoDuplicatesMirror(DuplicatesChecker::new())),
        PropertyDecl::RedeliveryBound(bound) => {
            Box::new(RedeliveryMirror(RedeliveryBoundChecker::new(*bound)))
        }
        PropertyDecl::Required => Box::new(RequiredMirror(RequiredChecker::new())),
        PropertyDecl::Integrity => Box::new(IntegrityMirror(IntegrityChecker::new())),
        PropertyDecl::Priority => Box::new(PriorityMirror(PriorityChecker::new(
            PriorityConfig::default(),
        ))),
        PropertyDecl::Expiry => Box::new(ExpiryMirror {
            fit: FitAccumulator::new(DelayHistogram::new(
                defaults.histogram_bucket,
                defaults.histogram_buckets,
            )),
            checker: ExpiryChecker::new(),
            config: ExpiryConfig::default(),
        }),
        PropertyDecl::Deadline { bound, guard } => Box::new(DeadlineChecker {
            name: name.to_owned(),
            bound: *bound,
            guard: guard.clone(),
            resolver: TxResolver::new(),
            violations: Vec::new(),
        }),
        PropertyDecl::Latency { stat, bound, guard } => Box::new(LatencyChecker {
            name: name.to_owned(),
            stat: *stat,
            bound: *bound,
            guard: guard.clone(),
            resolver: TxResolver::new(),
            window: RunWindowTracker::new(),
            gate: WindowGate::new(),
            samples: Vec::new(),
        }),
        PropertyDecl::Throughput { min_rate, guard } => Box::new(ThroughputChecker {
            name: name.to_owned(),
            min_rate: *min_rate,
            guard: guard.clone(),
            resolver: TxResolver::new(),
            window: RunWindowTracker::new(),
            gate: WindowGate::new(),
            count: 0,
        }),
        PropertyDecl::Fairness { max_ratio, guard } => Box::new(FairnessChecker {
            name: name.to_owned(),
            max_ratio: *max_ratio,
            guard: guard.clone(),
            resolver: TxResolver::new(),
            window: RunWindowTracker::new(),
            gate: WindowGate::new(),
            consumers: BTreeSet::new(),
            counts: BTreeMap::new(),
        }),
        PropertyDecl::ReceiveCount { op, count, guard } => Box::new(ReceiveCountChecker {
            name: name.to_owned(),
            op: *op,
            bound: *count,
            guard: guard.clone(),
            resolver: TxResolver::new(),
            seen: 0,
        }),
    }
}

fn guard_accepts(guard: &Option<Guard>, record: &MessageRecord) -> bool {
    guard
        .as_ref()
        .is_none_or(|guard| selector_accepts_record(guard.selector(), record))
}

macro_rules! builtin_mirror {
    ($mirror:ident, $inner:ty, live) => {
        #[derive(Debug)]
        struct $mirror($inner);

        impl PropertyChecker for $mirror {
            fn observe(&mut self, event: &Event) {
                self.0.observe(event);
            }
            fn live_violations(&self) -> usize {
                self.0.violations_so_far()
            }
            fn state_bytes(&self) -> usize {
                self.0.state_bytes()
            }
            fn finish(self: Box<Self>) -> Vec<Violation> {
                (*self).0.finish()
            }
        }
    };
    ($mirror:ident, $inner:ty) => {
        #[derive(Debug)]
        struct $mirror($inner);

        impl PropertyChecker for $mirror {
            fn observe(&mut self, event: &Event) {
                self.0.observe(event);
            }
            fn state_bytes(&self) -> usize {
                self.0.state_bytes()
            }
            fn finish(self: Box<Self>) -> Vec<Violation> {
                (*self).0.finish()
            }
        }
    };
}

builtin_mirror!(OrderedMirror, OrderingChecker, live);
builtin_mirror!(NoDuplicatesMirror, DuplicatesChecker, live);
builtin_mirror!(RedeliveryMirror, RedeliveryBoundChecker, live);
builtin_mirror!(RequiredMirror, RequiredChecker);
builtin_mirror!(IntegrityMirror, IntegrityChecker);
builtin_mirror!(PriorityMirror, PriorityChecker);

/// Mirror of the two-phase expiry analysis (fit the delay model, then
/// judge), at the default configuration.
#[derive(Debug)]
struct ExpiryMirror {
    fit: FitAccumulator,
    checker: ExpiryChecker,
    config: ExpiryConfig,
}

impl PropertyChecker for ExpiryMirror {
    fn observe(&mut self, event: &Event) {
        self.fit.observe(event);
        self.checker.observe(event);
    }
    fn state_bytes(&self) -> usize {
        self.fit.state_bytes() + self.checker.state_bytes()
    }
    fn finish(self: Box<Self>) -> Vec<Violation> {
        let this = *self;
        let fitted = this.fit.finish(&this.config);
        let (violations, _breakdowns) = this.checker.finish(&this.config, &fitted);
        violations
    }
}

/// `deadline DUR`: every committed, guard-matching delivery must arrive
/// within the bound of its send timestamp. Live-decidable — each late
/// delivery convicts on sight.
#[derive(Debug)]
struct DeadlineChecker {
    name: String,
    bound: Duration,
    guard: Option<Guard>,
    resolver: TxResolver,
    violations: Vec<Violation>,
}

impl DeadlineChecker {
    fn ingest(&mut self, event: &Event) {
        if let EventKind::Receive {
            endpoint, record, ..
        } = &event.kind
        {
            if !guard_accepts(&self.guard, record) {
                return;
            }
            let observed = event.at.saturating_since(record.sent_at);
            if observed > self.bound {
                self.violations.push(Violation::DeadlineMissed {
                    property: self.name.clone(),
                    message: record.message,
                    endpoint: endpoint.clone(),
                    deadline: self.bound,
                    observed,
                });
            }
        }
    }
}

impl PropertyChecker for DeadlineChecker {
    fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }
    fn live_violations(&self) -> usize {
        self.violations.len()
    }
    fn state_bytes(&self) -> usize {
        self.resolver.state_bytes() + self.violations.len() * std::mem::size_of::<Violation>()
    }
    fn finish(self: Box<Self>) -> Vec<Violation> {
        self.violations
    }
}

/// `latency STAT <= DUR`: a delivery-latency statistic over committed,
/// guard-matching deliveries inside the measurement window. Finish-only.
#[derive(Debug)]
struct LatencyChecker {
    name: String,
    stat: LatencyStat,
    bound: Duration,
    guard: Option<Guard>,
    resolver: TxResolver,
    window: RunWindowTracker,
    gate: WindowGate<u64>,
    samples: Vec<u64>,
}

impl LatencyChecker {
    fn ingest(&mut self, event: &Event) {
        if let EventKind::Receive { record, .. } = &event.kind {
            if !guard_accepts(&self.guard, record) {
                return;
            }
            let nanos = event.at.saturating_since(record.sent_at).as_nanos() as u64;
            let samples = &mut self.samples;
            self.gate
                .offer(event.at, nanos, &self.window, |v| samples.push(v));
        }
    }
}

impl PropertyChecker for LatencyChecker {
    fn observe(&mut self, event: &Event) {
        self.window.note(event);
        {
            let samples = &mut self.samples;
            self.gate.drain(&self.window, &mut |v| samples.push(v));
        }
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }
    fn state_bytes(&self) -> usize {
        (self.samples.len() + self.gate.len()) * std::mem::size_of::<u64>()
    }
    fn finish(self: Box<Self>) -> Vec<Violation> {
        let mut this = *self;
        let window = this.window.final_window();
        let samples = &mut this.samples;
        this.gate.finish(window, |v| samples.push(v));
        if this.samples.is_empty() {
            return Vec::new();
        }
        this.samples.sort_unstable();
        let n = this.samples.len();
        let value_nanos = match this.stat {
            LatencyStat::Mean => {
                (this.samples.iter().map(|&v| v as u128).sum::<u128>() / n as u128) as u64
            }
            LatencyStat::Max => this.samples[n - 1],
            LatencyStat::P50 => this.samples[percentile_index(n, 0.50)],
            LatencyStat::P95 => this.samples[percentile_index(n, 0.95)],
            LatencyStat::P99 => this.samples[percentile_index(n, 0.99)],
        };
        let value = Duration::from_nanos(value_nanos);
        if value <= this.bound {
            return Vec::new();
        }
        vec![Violation::SloNotMet {
            property: this.name,
            detail: format!(
                "latency {} of {value:?} exceeds the {:?} bound ({n} samples)",
                this.stat.keyword(),
                this.bound
            ),
        }]
    }
}

/// Nearest-rank percentile: the smallest sample with at least `q·n`
/// samples at or below it.
fn percentile_index(n: usize, q: f64) -> usize {
    let rank = (q * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// `throughput >= RATE`: committed, guard-matching deliveries per second
/// over the measurement window. Finish-only.
#[derive(Debug)]
struct ThroughputChecker {
    name: String,
    min_rate: f64,
    guard: Option<Guard>,
    resolver: TxResolver,
    window: RunWindowTracker,
    gate: WindowGate<()>,
    count: u64,
}

impl ThroughputChecker {
    fn ingest(&mut self, event: &Event) {
        if let EventKind::Receive { record, .. } = &event.kind {
            if !guard_accepts(&self.guard, record) {
                return;
            }
            let count = &mut self.count;
            self.gate
                .offer(event.at, (), &self.window, |()| *count += 1);
        }
    }
}

impl PropertyChecker for ThroughputChecker {
    fn observe(&mut self, event: &Event) {
        self.window.note(event);
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }
    fn state_bytes(&self) -> usize {
        self.gate.len() * std::mem::size_of::<jmst_api::time::Timestamp>()
    }
    fn finish(self: Box<Self>) -> Vec<Violation> {
        let mut this = *self;
        let window = this.window.final_window();
        let count = &mut this.count;
        this.gate.finish(window, |()| *count += 1);
        let seconds = window.1.saturating_since(window.0).as_secs_f64();
        let rate = if seconds > 0.0 {
            this.count as f64 / seconds
        } else if this.count > 0 {
            f64::INFINITY
        } else {
            0.0
        };
        if rate >= this.min_rate {
            return Vec::new();
        }
        vec![Violation::SloNotMet {
            property: this.name,
            detail: format!(
                "throughput of {rate:.1} msg/s over the {seconds:.3}s window is below \
                 the {:?} msg/s floor ({} deliveries)",
                this.min_rate, this.count
            ),
        }]
    }
}

/// `fairness <= RATIO`: the max/min ratio of per-consumer delivery
/// counts over the measurement window, across every consumer the trace
/// created. A consumer that received nothing while another received
/// something is an infinite ratio. Finish-only.
#[derive(Debug)]
struct FairnessChecker {
    name: String,
    max_ratio: f64,
    guard: Option<Guard>,
    resolver: TxResolver,
    window: RunWindowTracker,
    gate: WindowGate<ConsumerId>,
    consumers: BTreeSet<ConsumerId>,
    counts: BTreeMap<ConsumerId, u64>,
}

impl FairnessChecker {
    fn ingest(&mut self, event: &Event) {
        if let EventKind::Receive {
            consumer, record, ..
        } = &event.kind
        {
            if !guard_accepts(&self.guard, record) {
                return;
            }
            let counts = &mut self.counts;
            self.gate.offer(event.at, *consumer, &self.window, |c| {
                *counts.entry(c).or_insert(0) += 1;
            });
        }
    }
}

impl PropertyChecker for FairnessChecker {
    fn observe(&mut self, event: &Event) {
        self.window.note(event);
        if let EventKind::ConsumerCreated { consumer, .. } = &event.kind {
            self.consumers.insert(*consumer);
        }
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }
    fn state_bytes(&self) -> usize {
        (self.consumers.len() + self.counts.len() + self.gate.len())
            * std::mem::size_of::<(ConsumerId, u64)>()
    }
    fn finish(self: Box<Self>) -> Vec<Violation> {
        let mut this = *self;
        let window = this.window.final_window();
        let counts = &mut this.counts;
        this.gate.finish(window, |c| {
            *counts.entry(c).or_insert(0) += 1;
        });
        if this.consumers.len() < 2 {
            return Vec::new();
        }
        let per_consumer: Vec<u64> = this
            .consumers
            .iter()
            .map(|c| this.counts.get(c).copied().unwrap_or(0))
            .collect();
        let max = *per_consumer.iter().max().expect(">= 2 consumers");
        let min = *per_consumer.iter().min().expect(">= 2 consumers");
        let violated = if min == 0 {
            max > 0
        } else {
            max as f64 / min as f64 > this.max_ratio
        };
        if !violated {
            return Vec::new();
        }
        let ratio = if min == 0 {
            "inf".to_owned()
        } else {
            format!("{:.2}", max as f64 / min as f64)
        };
        vec![Violation::SloNotMet {
            property: this.name,
            detail: format!(
                "per-consumer delivery counts span {min}..{max} across {} consumers \
                 (ratio {ratio}, bound {:?})",
                this.consumers.len(),
                this.max_ratio
            ),
        }]
    }
}

/// `receives >= N` / `receives <= N`: whole-trace committed delivery
/// count. The upper bound is live-decidable (the first excess delivery
/// convicts); the lower bound is finish-only.
#[derive(Debug)]
struct ReceiveCountChecker {
    name: String,
    op: CountOp,
    bound: u64,
    guard: Option<Guard>,
    resolver: TxResolver,
    seen: u64,
}

impl ReceiveCountChecker {
    fn ingest(&mut self, event: &Event) {
        if let EventKind::Receive { record, .. } = &event.kind {
            if guard_accepts(&self.guard, record) {
                self.seen += 1;
            }
        }
    }

    fn exceeded(&self) -> bool {
        self.op == CountOp::AtMost && self.seen > self.bound
    }
}

impl PropertyChecker for ReceiveCountChecker {
    fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }
    fn live_violations(&self) -> usize {
        usize::from(self.exceeded())
    }
    fn state_bytes(&self) -> usize {
        self.resolver.state_bytes()
    }
    fn finish(self: Box<Self>) -> Vec<Violation> {
        let this = *self;
        let (violated, detail) = match this.op {
            CountOp::AtMost => (
                this.seen > this.bound,
                format!(
                    "{} deliveries observed, above the <= {} bound",
                    this.seen, this.bound
                ),
            ),
            CountOp::AtLeast => (
                this.seen < this.bound,
                format!(
                    "only {} deliveries observed, below the >= {} bound",
                    this.seen, this.bound
                ),
            ),
        };
        if !violated {
            return Vec::new();
        }
        vec![Violation::SloNotMet {
            property: this.name,
            detail,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::parse_properties;
    use jmst_core::{AnalysisConfig, Analyzer, PropertyKind};
    use jmst_store::event::Phase;
    use jmst_store::trace::Trace;

    // Minimal local trace builder (the core crate's test_support is
    // crate-private).
    use jmst_api::destination::{Destination, EndpointId, QueueName};
    use jmst_api::id::{MessageId, ProducerId, SessionId};
    use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
    use jmst_api::properties::Properties;
    use jmst_api::time::Timestamp;

    fn record(message: u64, producer: u64, sequence: u64, sent_at: Timestamp) -> MessageRecord {
        MessageRecord {
            message: MessageId::from_raw(message),
            producer: ProducerId::from_raw(producer),
            sequence,
            destination: Destination::Queue(QueueName::new("q")),
            priority: Priority::default(),
            delivery_mode: DeliveryMode::NonPersistent,
            time_to_live: TimeToLive::FOREVER,
            sent_at,
            body_bytes: 16,
            redelivered: false,
            delivery_count: 1,
            properties: Properties::new(),
        }
    }

    struct T {
        events: Vec<Event>,
        seq: u64,
    }

    impl T {
        fn new() -> Self {
            Self {
                events: Vec::new(),
                seq: 0,
            }
        }
        fn push(&mut self, at_nanos: u64, kind: EventKind) -> &mut Self {
            self.seq += 1;
            self.events.push(Event {
                at: Timestamp::from_nanos(at_nanos),
                seq: self.seq,
                node: jmst_api::id::NodeId::from_raw(0),
                kind,
            });
            self
        }
        fn phase(&mut self, at: u64, phase: Phase) -> &mut Self {
            self.push(at, EventKind::PhaseStarted { phase })
        }
        fn send(&mut self, at: u64, message: u64, sequence: u64) -> &mut Self {
            let record = record(message, 1, sequence, Timestamp::from_nanos(at));
            self.push(
                at,
                EventKind::Send {
                    record,
                    session: SessionId::from_raw(1),
                    tx: None,
                },
            )
        }
        fn receive(&mut self, at: u64, sent_at: u64, message: u64, sequence: u64) -> &mut Self {
            self.receive_by(at, sent_at, message, sequence, 7)
        }
        fn receive_by(
            &mut self,
            at: u64,
            sent_at: u64,
            message: u64,
            sequence: u64,
            consumer: u64,
        ) -> &mut Self {
            let record = record(message, 1, sequence, Timestamp::from_nanos(sent_at));
            self.push(
                at,
                EventKind::Receive {
                    consumer: jmst_api::id::ConsumerId::from_raw(consumer),
                    endpoint: EndpointId::for_queue(QueueName::new("q")),
                    record,
                    session: SessionId::from_raw(2),
                    tx: None,
                },
            )
        }
        fn build(&mut self) -> Trace {
            Trace::from_events(self.events.clone())
        }
    }

    const MS: u64 = 1_000_000;

    fn analyze(properties_text: &str, trace: &Trace) -> jmst_core::AnalysisReport {
        let properties = parse_properties(properties_text).expect("parses");
        let config = AnalysisConfig {
            check_integrity: false,
            check_required: false,
            check_ordering: false,
            check_priority: false,
            check_expiry: false,
            check_duplicates: false,
            redelivery_bound: None,
            ..AnalysisConfig::default()
        };
        Analyzer::with_config(config)
            .with_registry(compile_registry(&properties))
            .analyze(trace)
    }

    #[test]
    fn deadline_convicts_late_deliveries_only() {
        let trace = T::new()
            .phase(0, Phase::Run)
            .send(10 * MS, 1, 0)
            .receive(20 * MS, 10 * MS, 1, 0) // 10ms: fine
            .send(30 * MS, 2, 1)
            .receive(250 * MS, 30 * MS, 2, 1) // 220ms: late
            .phase(400 * MS, Phase::WarmDown)
            .build();
        let report = analyze("late = deadline 100ms", &trace);
        assert_eq!(report.count_of(PropertyKind::Deadline), 1);
        assert_eq!(report.named.len(), 1);
        assert_eq!(report.named[0].violations, 1);
        let clean = analyze("late = deadline 300ms", &trace);
        assert!(clean.passed(), "{clean}");
        assert_eq!(clean.named[0].violations, 0);
    }

    #[test]
    fn deadline_is_live_decidable() {
        let properties = parse_properties("late = deadline 50ms").expect("parses");
        let analyzer = Analyzer::new().with_registry(compile_registry(&properties));
        let mut streaming = analyzer.streaming();
        let trace = T::new().send(0, 1, 0).receive(200 * MS, 0, 1, 0).build();
        let mut live = 0;
        for event in &trace {
            streaming.observe(event);
            live = live.max(streaming.violations_so_far());
        }
        assert!(live >= 1, "late delivery should surface mid-stream");
    }

    #[test]
    fn guard_filters_deadline_scope() {
        let trace = T::new().send(0, 1, 0).receive(300 * MS, 0, 1, 0).build();
        // The guard excludes everything this trace carries.
        let report = analyze("late = deadline 50ms where JMSPriority > 8", &trace);
        assert!(report.passed(), "{report}");
        let report = analyze("late = deadline 50ms where JMSPriority >= 0", &trace);
        assert_eq!(report.count_of(PropertyKind::Deadline), 1);
    }

    #[test]
    fn latency_stat_bounds_the_window() {
        let mut t = T::new();
        t.phase(0, Phase::Run);
        // 99 fast deliveries, one 400ms straggler.
        for i in 0..99u64 {
            let at = (10 + i) * MS;
            t.send(at, i + 1, i);
            t.receive(at + MS, at, i + 1, i);
        }
        t.send(150 * MS, 200, 99);
        t.receive(550 * MS, 150 * MS, 200, 99);
        t.phase(600 * MS, Phase::WarmDown);
        let trace = t.build();
        // p50 is 1ms — holds; max is 400ms — violated.
        assert!(analyze("mid = latency p50 <= 10ms", &trace).passed());
        let report = analyze("worst = latency max <= 100ms", &trace);
        assert_eq!(report.count_of(PropertyKind::SloWindow), 1);
        // p99 over 100 samples is the 99th-ranked value (1ms), not the max.
        assert!(analyze("tail = latency p99 <= 10ms", &trace).passed());
    }

    #[test]
    fn throughput_floor_over_the_run_window() {
        let mut t = T::new();
        t.phase(0, Phase::Run);
        // 100 deliveries over a 1s window = 100 msg/s.
        for i in 0..100u64 {
            let at = (i * 10) * MS;
            t.send(at, i + 1, i);
            t.receive(at + MS, at, i + 1, i);
        }
        t.phase(1000 * MS, Phase::WarmDown);
        let trace = t.build();
        assert!(analyze("floor = throughput >= 90.0", &trace).passed());
        let report = analyze("floor = throughput >= 150.0", &trace);
        assert_eq!(report.count_of(PropertyKind::SloWindow), 1);
    }

    #[test]
    fn fairness_flags_starved_consumers() {
        let mut t = T::new();
        t.phase(0, Phase::Run);
        t.push(
            MS,
            EventKind::ConsumerCreated {
                consumer: jmst_api::id::ConsumerId::from_raw(7),
                endpoint: EndpointId::for_queue(QueueName::new("q")),
                session_mode: jmst_api::modes::SessionMode::AutoAcknowledge,
                selector: None,
            },
        );
        t.push(
            MS,
            EventKind::ConsumerCreated {
                consumer: jmst_api::id::ConsumerId::from_raw(8),
                endpoint: EndpointId::for_queue(QueueName::new("q")),
                session_mode: jmst_api::modes::SessionMode::AutoAcknowledge,
                selector: None,
            },
        );
        // Consumer 7 takes 9 messages, consumer 8 takes 1.
        for i in 0..10u64 {
            let at = (10 + i) * MS;
            t.send(at, i + 1, i);
            t.receive_by(at + MS, at, i + 1, i, if i == 0 { 8 } else { 7 });
        }
        t.phase(500 * MS, Phase::WarmDown);
        let trace = t.build();
        assert!(analyze("fair = fairness <= 10.0", &trace).passed());
        let report = analyze("fair = fairness <= 4.0", &trace);
        assert_eq!(report.count_of(PropertyKind::SloWindow), 1);
    }

    #[test]
    fn receive_count_bounds() {
        let trace = T::new()
            .send(0, 1, 0)
            .receive(MS, 0, 1, 0)
            .send(2 * MS, 2, 1)
            .receive(3 * MS, 2 * MS, 2, 1)
            .build();
        assert!(analyze("cap = receives <= 2", &trace).passed());
        assert_eq!(
            analyze("cap = receives <= 1", &trace).count_of(PropertyKind::SloWindow),
            1
        );
        assert!(analyze("min = receives >= 2", &trace).passed());
        assert_eq!(
            analyze("min = receives >= 3", &trace).count_of(PropertyKind::SloWindow),
            1
        );
    }

    #[test]
    fn builtin_mirrors_match_builtin_checkers() {
        // An out-of-order + duplicate trace: mirrors must reproduce the
        // built-ins' violations exactly (modulo report bookkeeping).
        let trace = T::new()
            .send(0, 1, 0)
            .send(MS, 2, 1)
            .receive(2 * MS, MS, 2, 1)
            .receive(3 * MS, 0, 1, 0)
            .receive(4 * MS, 0, 1, 0)
            .build();
        let builtin = Analyzer::with_config(AnalysisConfig::default()).analyze(&trace);
        let mirrored = analyze(
            "order = ordered\ndedup = no_duplicates\ncomplete = required\nhonest = integrity",
            &trace,
        );
        let mut a: Vec<String> = builtin
            .violations
            .iter()
            .map(|v| format!("{v:?}"))
            .collect();
        let mut b: Vec<String> = mirrored
            .violations
            .iter()
            .map(|v| format!("{v:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
