//! The static verification front end: every declared property is checked
//! against the trace-event schema and the scenario's own configuration
//! *before* any driver starts, so an assertion that cannot possibly be
//! evaluated (or cannot possibly hold) is rejected without spending
//! wall-clock on a run.
//!
//! Four passes, each with a stable rule id:
//!
//! * `prop-ill-typed` (error) — the guard does not type-check against
//!   the JMS header/property schema (reuses the selector analyzer's
//!   type inference);
//! * `prop-vacuous` (error) — the guard is unsatisfiable, so the
//!   property holds trivially and asserts nothing (three-valued constant
//!   folding + interval/equality-domain satisfiability);
//! * `prop-unsat` (error) — the bound is provably violated by the spec
//!   itself (a deadline shorter than a configured stall or delivery
//!   delay, a throughput floor above the configured send rate, a
//!   receive-count floor above the message cap, a fairness ratio below
//!   the mathematical minimum);
//! * `prop-not-monitorable` (warning) — the property is finish-only
//!   (needs the end of the trace), so `fail_fast` can never convict on
//!   it mid-run.

use crate::decl::{CountOp, PropertyDecl, PropertySpec};
use jmst_api::selector::{Classification, IdentType};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Whether a property can be decided mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monitorability {
    /// A safety property: a violation is decidable the moment it
    /// happens, so the live watcher (and `fail_fast`) can convict on it.
    Live,
    /// Needs the end of the trace to distinguish a violation from
    /// in-flight latency; only reports at finish.
    FinishOnly,
}

impl PropertyDecl {
    /// Classifies the declaration's monitorability.
    pub fn monitorability(&self) -> Monitorability {
        match self {
            PropertyDecl::Ordered
            | PropertyDecl::NoDuplicates
            | PropertyDecl::RedeliveryBound(_)
            | PropertyDecl::Deadline { .. } => Monitorability::Live,
            PropertyDecl::ReceiveCount {
                op: CountOp::AtMost,
                ..
            } => Monitorability::Live,
            PropertyDecl::Required
            | PropertyDecl::Integrity
            | PropertyDecl::Priority
            | PropertyDecl::Expiry
            | PropertyDecl::Latency { .. }
            | PropertyDecl::Throughput { .. }
            | PropertyDecl::Fairness { .. }
            | PropertyDecl::ReceiveCount {
                op: CountOp::AtLeast,
                ..
            } => Monitorability::FinishOnly,
        }
    }
}

/// What the static passes know about the enclosing scenario. Built by
/// the harness from a `TestSpec`; [`SpecContext::standalone`] is the
/// context for a bare `.prop` file, where nothing about the run is
/// known.
#[derive(Debug, Clone, Default)]
pub struct SpecContext {
    /// Identifier types pinned by the scenario's producer properties
    /// (merged over the JMS header schema the analyzer knows natively).
    pub env: BTreeMap<String, IdentType>,
    /// A delivery delay the fault plan applies to *every* message.
    pub latency_floor: Duration,
    /// The configured stall-fault duration, when stalls are active.
    pub stall: Option<Duration>,
    /// Total configured steady send rate (msg/s), when derivable.
    pub total_rate: Option<f64>,
    /// Total messages the producers will ever send, when every producer
    /// is message-limited.
    pub message_cap: Option<u64>,
    /// Whether the run convicts mid-stream (`fail_fast`); finish-only
    /// properties draw a warning in that mode.
    pub fail_fast: bool,
}

impl SpecContext {
    /// The context for a standalone `.prop` file: no spec knowledge, and
    /// monitorability warnings on (a property library should advertise
    /// which of its assertions are fail-fast-eligible).
    pub fn standalone() -> Self {
        SpecContext {
            fail_fast: true,
            ..SpecContext::default()
        }
    }
}

/// One finding from the static passes.
#[derive(Debug, Clone, PartialEq)]
pub struct PropDiagnostic {
    /// Stable rule id (`prop-ill-typed`, `prop-vacuous`, `prop-unsat`,
    /// `prop-not-monitorable`).
    pub rule: &'static str,
    /// `true` for errors (the property must not run), `false` for
    /// warnings.
    pub error: bool,
    /// The property's declared name.
    pub property: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for PropDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] property '{}': {}",
            if self.error { "error" } else { "warning" },
            self.rule,
            self.property,
            self.message
        )
    }
}

/// Runs every static pass over a property list. An empty result means
/// all properties may compile; any `error: true` diagnostic means the
/// run must not start.
pub fn analyze_properties(
    properties: &[PropertySpec],
    context: &SpecContext,
) -> Vec<PropDiagnostic> {
    let mut diagnostics = Vec::new();
    for property in properties {
        analyze_property(property, context, &mut diagnostics);
    }
    diagnostics
}

fn analyze_property(
    property: &PropertySpec,
    context: &SpecContext,
    diagnostics: &mut Vec<PropDiagnostic>,
) {
    let mut push = |rule: &'static str, error: bool, message: String| {
        diagnostics.push(PropDiagnostic {
            rule,
            error,
            property: property.name.clone(),
            message,
        });
    };

    // Pass 1 + 2: guard type inference and satisfiability.
    if let Some(guard) = property.decl.guard() {
        let analysis = guard.selector().analyze_with_env(&context.env);
        match analysis.classification {
            Classification::IllTyped => {
                let detail = analysis
                    .error
                    .map_or_else(|| "type conflict".to_owned(), |e| e.to_string());
                push(
                    "prop-ill-typed",
                    true,
                    format!("guard '{guard}' is ill-typed: {detail}"),
                );
                return;
            }
            Classification::AlwaysFalse => {
                push(
                    "prop-vacuous",
                    true,
                    format!(
                        "guard '{guard}' can never match a message; the property holds vacuously"
                    ),
                );
                return;
            }
            Classification::AlwaysTrue | Classification::Contingent => {}
        }
    }

    // Pass 3: bound satisfiability against the spec's own configuration.
    match &property.decl {
        PropertyDecl::Deadline { bound, .. } => {
            check_latency_bound("deadline", *bound, context, &mut push);
        }
        PropertyDecl::Latency { stat, bound, .. } => {
            // Stalls hit a random subset, so only the max statistic is
            // provably broken by them; a floor delay shifts every sample.
            if *bound == Duration::ZERO {
                push(
                    "prop-unsat",
                    true,
                    format!("latency {} bound of 0 can never hold", stat.keyword()),
                );
            } else if context.latency_floor >= *bound {
                push(
                    "prop-unsat",
                    true,
                    format!(
                        "latency {} bound {:?} is at or below the fault plan's \
                         delivery delay of {:?} applied to every message",
                        stat.keyword(),
                        bound,
                        context.latency_floor
                    ),
                );
            }
        }
        PropertyDecl::Throughput { min_rate, .. } => {
            if let Some(total_rate) = context.total_rate {
                if *min_rate > total_rate {
                    push(
                        "prop-unsat",
                        true,
                        format!(
                            "throughput floor {min_rate:?} msg/s exceeds the configured \
                             total send rate of {total_rate:?} msg/s"
                        ),
                    );
                }
            }
        }
        PropertyDecl::Fairness { max_ratio, .. } if *max_ratio < 1.0 => {
            push(
                "prop-unsat",
                true,
                format!(
                    "fairness ratio is max/min delivery counts and is always >= 1; \
                         a bound of {max_ratio:?} can never hold"
                ),
            );
        }
        PropertyDecl::ReceiveCount {
            op: CountOp::AtLeast,
            count,
            ..
        } => {
            if let Some(cap) = context.message_cap {
                if *count > cap {
                    push(
                        "prop-unsat",
                        true,
                        format!(
                            "requires at least {count} deliveries but the producers \
                             are limited to {cap} messages in total"
                        ),
                    );
                }
            }
        }
        _ => {}
    }

    // Pass 4: monitorability under fail-fast.
    if context.fail_fast && property.decl.monitorability() == Monitorability::FinishOnly {
        push(
            "prop-not-monitorable",
            false,
            "finish-only property: a violation is only decidable at end of trace, \
             so fail_fast cannot convict on it mid-run"
                .to_owned(),
        );
    }
}

fn check_latency_bound(
    what: &str,
    bound: Duration,
    context: &SpecContext,
    push: &mut impl FnMut(&'static str, bool, String),
) {
    if bound == Duration::ZERO {
        push("prop-unsat", true, format!("{what} of 0 can never hold"));
        return;
    }
    if context.latency_floor >= bound {
        push(
            "prop-unsat",
            true,
            format!(
                "{what} {bound:?} is at or below the fault plan's delivery delay \
                 of {:?} applied to every message",
                context.latency_floor
            ),
        );
        return;
    }
    if let Some(stall) = context.stall {
        if stall >= bound {
            push(
                "prop-unsat",
                true,
                format!(
                    "{what} {bound:?} is at or below the configured stall fault \
                     of {stall:?}; any stalled delivery must miss it"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decl::parse_properties;

    fn one(text: &str) -> PropertySpec {
        parse_properties(text).expect("parses").remove(0)
    }

    fn rules(diagnostics: &[PropDiagnostic]) -> Vec<&'static str> {
        diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_properties_produce_no_diagnostics() {
        let properties = [
            one("late = deadline 100ms"),
            one("order = ordered"),
            one("floor = throughput >= 100.0"),
        ];
        let diagnostics = analyze_properties(&properties, &SpecContext::default());
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
    }

    #[test]
    fn ill_typed_guard_is_rejected() {
        let property = one("late = deadline 50ms where JMSPriority = 'high'");
        let diagnostics = analyze_properties(&[property], &SpecContext::default());
        assert_eq!(rules(&diagnostics), ["prop-ill-typed"]);
        assert!(diagnostics[0].error);
    }

    #[test]
    fn unsatisfiable_guard_is_vacuous() {
        let property = one("never = deadline 50ms where jmst_seq > 10 AND jmst_seq < 5");
        let diagnostics = analyze_properties(&[property], &SpecContext::default());
        assert_eq!(rules(&diagnostics), ["prop-vacuous"]);
        assert!(diagnostics[0].error);
    }

    #[test]
    fn bounds_broken_by_the_spec_itself_are_unsat() {
        let context = SpecContext {
            latency_floor: Duration::from_millis(50),
            stall: Some(Duration::from_millis(200)),
            total_rate: Some(300.0),
            message_cap: Some(120),
            ..SpecContext::default()
        };
        // Deadline below the universal delivery delay.
        let d = analyze_properties(&[one("late = deadline 50ms")], &context);
        assert_eq!(rules(&d), ["prop-unsat"]);
        // Deadline below the stall fault (the canonical example).
        let d = analyze_properties(&[one("late = deadline 150ms")], &context);
        assert_eq!(rules(&d), ["prop-unsat"]);
        assert!(d[0].message.contains("stall"));
        // Throughput above the configured send rate.
        let d = analyze_properties(&[one("floor = throughput >= 400.0")], &context);
        assert_eq!(rules(&d), ["prop-unsat"]);
        // Receive floor above the message cap.
        let d = analyze_properties(&[one("min = receives >= 200")], &context);
        assert_eq!(rules(&d), ["prop-unsat"]);
        // Fairness below the mathematical minimum, spec-independent.
        let d = analyze_properties(&[one("fair = fairness <= 0.5")], &SpecContext::default());
        assert_eq!(rules(&d), ["prop-unsat"]);
        // The same bounds clear a permissive context.
        let d = analyze_properties(
            &[
                one("late = deadline 300ms"),
                one("floor = throughput >= 250.0"),
            ],
            &context,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn finish_only_properties_warn_under_fail_fast() {
        let context = SpecContext {
            fail_fast: true,
            ..SpecContext::default()
        };
        let d = analyze_properties(&[one("tail = latency p99 <= 100ms")], &context);
        assert_eq!(rules(&d), ["prop-not-monitorable"]);
        assert!(!d[0].error);
        // Live properties do not warn.
        let d = analyze_properties(&[one("late = deadline 100ms")], &context);
        assert!(d.is_empty());
        // And nothing warns when fail_fast is off.
        let d = analyze_properties(
            &[one("tail = latency p99 <= 100ms")],
            &SpecContext::default(),
        );
        assert!(d.is_empty());
    }

    #[test]
    fn monitorability_classification() {
        assert_eq!(
            one("a = ordered").decl.monitorability(),
            Monitorability::Live
        );
        assert_eq!(
            one("a = receives <= 10").decl.monitorability(),
            Monitorability::Live
        );
        assert_eq!(
            one("a = receives >= 10").decl.monitorability(),
            Monitorability::FinishOnly
        );
        assert_eq!(
            one("a = throughput >= 1.0").decl.monitorability(),
            Monitorability::FinishOnly
        );
    }
}
