//! Property-based (metamorphic) tests of the analysis model: arbitrary
//! *correct* traces pass every check, and seeded mutations of a correct
//! trace trip exactly the property that formalises the fault.

use jmst_api::destination::{Destination, EndpointId, QueueName};
use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId};
use jmst_api::modes::{DeliveryMode, Priority, SessionMode, TimeToLive};
use jmst_api::time::Timestamp;
use jmst_core::{AnalysisConfig, Analyzer, PropertyKind};
use jmst_store::event::{Event, EventKind, MessageRecord, Phase};
use jmst_store::trace::Trace;
use proptest::prelude::*;

/// A generated workload: per producer, a number of messages with random
/// priorities and delivery modes, all delivered in order to one queue.
#[derive(Debug, Clone)]
struct Workload {
    producers: Vec<Vec<(u8, bool)>>, // (priority, persistent) per message
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec((0u8..=9, any::<bool>()), 1..20), 1..4)
        .prop_map(|producers| Workload { producers })
}

fn endpoint() -> EndpointId {
    EndpointId::for_queue(QueueName::new("q"))
}

/// Builds the canonical correct trace of a workload: every message sent,
/// then every message received in send order (per producer), by a single
/// consumer, with one-millisecond spacing.
fn correct_trace(workload: &Workload) -> Vec<Event> {
    let mut events = Vec::new();
    let mut seq = 0u64;
    let mut time = 0u64;
    let mut push = |at: u64, kind: EventKind, events: &mut Vec<Event>| {
        events.push(Event {
            seq,
            at: Timestamp::from_millis(at),
            node: NodeId::from_raw(0),
            kind,
        });
        seq += 1;
    };
    push(
        time,
        EventKind::PhaseStarted { phase: Phase::Run },
        &mut events,
    );
    let mut records: Vec<MessageRecord> = Vec::new();
    let mut message_id = 0u64;
    for (producer_index, messages) in workload.producers.iter().enumerate() {
        for (sequence, &(priority, persistent)) in messages.iter().enumerate() {
            message_id += 1;
            time += 1;
            let record = MessageRecord {
                message: MessageId::from_raw(message_id),
                producer: ProducerId::from_raw(producer_index as u64 + 1),
                sequence: sequence as u64,
                destination: Destination::queue("q"),
                priority: Priority::new(priority).expect("generated in range"),
                delivery_mode: if persistent {
                    DeliveryMode::Persistent
                } else {
                    DeliveryMode::NonPersistent
                },
                time_to_live: TimeToLive::FOREVER,
                sent_at: Timestamp::from_millis(time),
                body_bytes: 64,
                redelivered: false,
                delivery_count: 1,
                properties: Default::default(),
            };
            records.push(record.clone());
            push(
                time,
                EventKind::Send {
                    record,
                    session: SessionId::from_raw(1),
                    tx: None,
                },
                &mut events,
            );
        }
    }
    // Deliver in per-producer order (interleaved producer-by-producer is
    // fine: ordering is per producer).
    for record in &records {
        time += 1;
        push(
            time,
            EventKind::Receive {
                consumer: ConsumerId::from_raw(50),
                endpoint: endpoint(),
                record: record.clone(),
                session: SessionId::from_raw(2),
                tx: None,
            },
            &mut events,
        );
    }
    push(
        time + 10,
        EventKind::PhaseStarted {
            phase: Phase::WarmDown,
        },
        &mut events,
    );
    events
}

fn analyze(events: Vec<Event>) -> jmst_core::AnalysisReport {
    Analyzer::with_config(AnalysisConfig::strict_safety_only()).analyze(&Trace::from_events(events))
}

fn receive_indices(events: &[Event]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Receive { .. }))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn correct_traces_pass_all_safety_properties(workload in arb_workload()) {
        let report = analyze(correct_trace(&workload));
        prop_assert!(report.passed(), "{report}");
    }

    #[test]
    fn dropping_an_interior_receive_trips_required_messages(
        workload in arb_workload(),
        pick in any::<prop::sample::Index>(),
    ) {
        let events = correct_trace(&workload);
        let receives = receive_indices(&events);
        // Removing the LAST receive of a producer is excused (Definition
        // 5). Pick an interior one: require at least 2 messages from the
        // victim's producer after it. Find candidates.
        let candidates: Vec<usize> = receives
            .iter()
            .copied()
            .filter(|&i| {
                let EventKind::Receive { record, .. } = &events[i].kind else { return false };
                // Not the last delivered message of its producer.
                receives.iter().any(|&j| {
                    if j <= i { return false; }
                    let EventKind::Receive { record: later, .. } = &events[j].kind else { return false };
                    later.producer == record.producer
                })
            })
            .collect();
        prop_assume!(!candidates.is_empty());
        let victim = candidates[pick.index(candidates.len())];
        let mut mutated = events;
        mutated.remove(victim);
        let report = analyze(mutated);
        prop_assert_eq!(report.count_of(PropertyKind::RequiredMessages), 1, "{}", report);
        prop_assert_eq!(report.violations.len(), 1, "{}", report);
    }

    #[test]
    fn duplicating_a_receive_trips_duplicate_check(
        workload in arb_workload(),
        pick in any::<prop::sample::Index>(),
    ) {
        let events = correct_trace(&workload);
        let receives = receive_indices(&events);
        let victim = receives[pick.index(receives.len())];
        let mut mutated = events.clone();
        let mut copy = events[victim].clone();
        copy.seq = 1_000_000; // fresh sequence, later timestamp
        copy.at = Timestamp::from_millis(copy.at.as_millis() + 100_000);
        mutated.push(copy);
        let report = analyze(mutated);
        prop_assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 1, "{}", report);
        // Duplicates are also the only finding.
        prop_assert_eq!(report.violations.len(), 1, "{}", report);
    }

    #[test]
    fn forging_a_receive_trips_delivery_integrity(
        workload in arb_workload(),
        forged_id in 1_000_000u64..2_000_000,
    ) {
        let mut events = correct_trace(&workload);
        let at = Timestamp::from_millis(events.last().unwrap().at.as_millis() + 1);
        events.push(Event {
            seq: 999_999,
            at,
            node: NodeId::from_raw(0),
            kind: EventKind::Receive {
                consumer: ConsumerId::from_raw(50),
                endpoint: endpoint(),
                record: MessageRecord {
                    message: MessageId::from_raw(forged_id),
                    producer: ProducerId::from_raw(999),
                    sequence: 0,
                    destination: Destination::queue("q"),
                    priority: Priority::DEFAULT,
                    delivery_mode: DeliveryMode::Persistent,
                    time_to_live: TimeToLive::FOREVER,
                    sent_at: at,
                    body_bytes: 1,
                    redelivered: false,
                    delivery_count: 1,
                    properties: Default::default(),
                },
                session: SessionId::from_raw(2),
                tx: None,
            },
        });
        let report = analyze(events);
        prop_assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 1, "{}", report);
        prop_assert_eq!(report.violations.len(), 1, "{}", report);
    }

    #[test]
    fn swapping_same_class_receives_trips_ordering(
        workload in arb_workload(),
        pick in any::<prop::sample::Index>(),
    ) {
        let events = correct_trace(&workload);
        let receives = receive_indices(&events);
        // Find adjacent-in-sequence pairs from the same producer with the
        // same priority and mode.
        let mut pairs = Vec::new();
        for (a_pos, &a) in receives.iter().enumerate() {
            let EventKind::Receive { record: ra, .. } = &events[a].kind else { continue };
            for &b in &receives[a_pos + 1..] {
                let EventKind::Receive { record: rb, .. } = &events[b].kind else { continue };
                if ra.producer == rb.producer
                    && ra.priority == rb.priority
                    && ra.delivery_mode == rb.delivery_mode
                {
                    pairs.push((a, b));
                    break; // nearest same-class successor
                }
            }
        }
        prop_assume!(!pairs.is_empty());
        let (a, b) = pairs[pick.index(pairs.len())];
        let mut mutated = events;
        // Swap the two receive *payloads* but keep the timestamps, i.e.
        // the later-sent message is now delivered first.
        let kind_a = mutated[a].kind.clone();
        let kind_b = mutated[b].kind.clone();
        mutated[a].kind = kind_b;
        mutated[b].kind = kind_a;
        let report = analyze(mutated);
        prop_assert!(
            report.count_of(PropertyKind::MessageOrdering) >= 1,
            "{}", report
        );
        // No other property may be disturbed by a pure swap.
        prop_assert_eq!(report.count_of(PropertyKind::RequiredMessages), 0, "{}", report);
        prop_assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 0, "{}", report);
        prop_assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 0, "{}", report);
    }

    #[test]
    fn dups_ok_consumers_make_duplicates_legal(
        workload in arb_workload(),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut events = correct_trace(&workload);
        // Declare the consumer as dups-ok.
        events.insert(0, Event {
            seq: 888_888,
            at: Timestamp::ZERO,
            node: NodeId::from_raw(0),
            kind: EventKind::ConsumerCreated {
                consumer: ConsumerId::from_raw(50),
                endpoint: endpoint(),
                session_mode: SessionMode::DupsOkAcknowledge,
                selector: None,
            },
        });
        let receives = receive_indices(&events);
        let victim = receives[pick.index(receives.len())];
        let mut copy = events[victim].clone();
        copy.seq = 1_000_000;
        copy.at = Timestamp::from_millis(copy.at.as_millis() + 100_000);
        events.push(copy);
        let report = analyze(events);
        prop_assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 0, "{}", report);
    }

    #[test]
    fn performance_conserves_counts(workload in arb_workload()) {
        let events = correct_trace(&workload);
        let total: usize = workload.producers.iter().map(Vec::len).sum();
        let report = Analyzer::new().analyze(&Trace::from_events(events));
        prop_assert_eq!(report.sends, total);
        prop_assert_eq!(report.receives, total);
        // All delays are the fixed per-producer pipeline; mean is finite
        // and non-negative.
        prop_assert!(report.performance.delay.stats.mean() >= 0.0);
        prop_assert_eq!(report.performance.delay.negative_samples, 0);
    }
}
