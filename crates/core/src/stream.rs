//! Shared plumbing for the incremental (streaming) checkers.
//!
//! Each safety property in [`crate::properties`] is implemented once, as
//! an incremental checker (`observe` one event at a time, `finish` into
//! violations). The pieces here are what those checkers share:
//!
//! * [`TxResolver`] — resolves transactions on the fly, so checkers only
//!   ever see *effective* sends and receives (Definitions 1–2: a
//!   transacted operation counts only once its transaction commits);
//! * [`RunWindowTracker`] / [`WindowGate`] — incremental evaluation of
//!   the `[run start, warm-down start)` measurement window, which is only
//!   fully known at end of stream; samples whose membership is not yet
//!   decidable are pended and resolved as knowledge arrives;
//! * [`SelectorTracker`] — incremental form of
//!   [`crate::defs::endpoint_selector`]: the effective selector of an
//!   end-point as its consumer rows stream in.

use jmst_api::id::TxId;
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind, Phase};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// What a [`TxResolver`] emits for one observed raw event.
#[derive(Debug)]
pub enum Resolved<'a> {
    /// Nothing is effective yet (the event was buffered into an open
    /// transaction).
    Buffered,
    /// The event itself is effective, unchanged.
    One(&'a Event),
    /// A commit landed: the transaction's buffered operations become
    /// effective at this stream position (keeping their original
    /// timestamps), followed by the commit event itself.
    Replay(Vec<Event>),
}

/// Streams raw events into *effective* events.
///
/// Sends and receives inside a transaction are buffered until the
/// transaction resolves: a commit replays them (in original order, with
/// original timestamps) at the commit's stream position, a rollback drops
/// them, and a transaction still open at end of stream never becomes
/// effective — exactly the batch notion of effectiveness, evaluated
/// online. Resident state is bounded by the volume of operations in open
/// transactions.
#[derive(Debug, Default)]
pub struct TxResolver {
    pending: HashMap<TxId, Vec<Event>>,
}

impl TxResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw event, returning what became effective.
    pub fn push<'a>(&mut self, event: &'a Event) -> Resolved<'a> {
        match &event.kind {
            EventKind::Send { tx: Some(tx), .. } | EventKind::Receive { tx: Some(tx), .. } => {
                self.pending.entry(*tx).or_default().push(event.clone());
                Resolved::Buffered
            }
            EventKind::Commit { tx, .. } => {
                let mut events = self.pending.remove(tx).unwrap_or_default();
                events.push(event.clone());
                Resolved::Replay(events)
            }
            EventKind::Rollback { tx, .. } => {
                self.pending.remove(tx);
                Resolved::One(event)
            }
            _ => Resolved::One(event),
        }
    }

    /// Rough resident-state estimate in bytes.
    pub fn state_bytes(&self) -> usize {
        let buffered: usize = self.pending.values().map(Vec::len).sum();
        self.pending.len() * std::mem::size_of::<(TxId, Vec<Event>)>()
            + buffered * std::mem::size_of::<Event>()
    }
}

/// Whether a timestamped sample falls inside the measurement window, as
/// far as the stream so far can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Definitely inside `[run start, warm-down start)`.
    Include,
    /// Definitely outside.
    Exclude,
    /// Not yet decidable — pend until more of the stream arrives.
    Pend,
}

/// Incremental evaluation of the batch `Trace::run_window()` rule:
/// `[first Run marker | first event, first WarmDown marker | last event)`.
///
/// Early decisions exploit two facts about a canonical-order stream: the
/// watermark (latest `at` seen) only grows, and phase markers pin their
/// boundary the moment they appear. A sample before the watermark with a
/// known run start is decidable immediately; anything else pends until
/// [`RunWindowTracker::final_window`] at end of stream.
#[derive(Debug, Clone, Default)]
pub struct RunWindowTracker {
    pinned: Option<(Timestamp, Timestamp)>,
    first_at: Option<Timestamp>,
    last_at: Option<Timestamp>,
    run_start: Option<Timestamp>,
    warm_down: Option<Timestamp>,
}

impl RunWindowTracker {
    /// Creates a tracker that infers the window from the stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker pinned to an explicit window (every
    /// classification is immediate). Used by `perf::analyze_window`.
    pub fn pinned(window: (Timestamp, Timestamp)) -> Self {
        Self {
            pinned: Some(window),
            ..Self::default()
        }
    }

    /// Notes one raw event (must be called for *every* event, before the
    /// transaction resolver, so fallback boundaries match the batch
    /// trace's first/last rows).
    pub fn note(&mut self, event: &Event) {
        if self.first_at.is_none() {
            self.first_at = Some(event.at);
        }
        self.last_at = Some(self.last_at.map_or(event.at, |last| last.max(event.at)));
        if let EventKind::PhaseStarted { phase } = &event.kind {
            match phase {
                Phase::Run => {
                    self.run_start.get_or_insert(event.at);
                }
                Phase::WarmDown => {
                    self.warm_down.get_or_insert(event.at);
                }
                Phase::WarmUp => {}
            }
        }
    }

    /// The latest timestamp seen so far (the stream watermark).
    pub fn watermark(&self) -> Option<Timestamp> {
        self.last_at
    }

    /// Classifies a sample timestamp against the (still-growing) window.
    pub fn classify(&self, ts: Timestamp) -> Gate {
        if let Some((start, end)) = self.pinned {
            return if ts >= start && ts < end {
                Gate::Include
            } else {
                Gate::Exclude
            };
        }
        let start_ok = self.run_start.map(|start| ts >= start);
        let end_ok = match (self.warm_down, self.last_at) {
            (Some(end), _) => Some(ts < end),
            // No warm-down marker yet: the final end is either a future
            // marker or the final watermark, both ≥ the current
            // watermark, so anything strictly before it is inside.
            (None, Some(watermark)) if ts < watermark => Some(true),
            _ => None,
        };
        match (start_ok, end_ok) {
            (Some(false), _) | (_, Some(false)) => Gate::Exclude,
            (Some(true), Some(true)) => Gate::Include,
            _ => Gate::Pend,
        }
    }

    /// The window as the batch analysis would compute it over the whole
    /// stream seen so far. Call at end of stream.
    pub fn final_window(&self) -> (Timestamp, Timestamp) {
        if let Some(window) = self.pinned {
            return window;
        }
        let start = self.run_start.or(self.first_at).unwrap_or(Timestamp::ZERO);
        let end = self.warm_down.or(self.last_at).unwrap_or(start);
        (start, end)
    }

    /// The timestamp of the last event, or zero before any event — the
    /// batch `Trace::end()`.
    pub fn trace_end(&self) -> Timestamp {
        self.last_at.unwrap_or(Timestamp::ZERO)
    }
}

/// A FIFO of samples awaiting a window decision.
///
/// Samples are applied in insertion order: decidable samples flow through
/// immediately unless an older sample is still pending (the front blocks,
/// preserving the exact accumulation order a batch pass over the full
/// trace would produce, which keeps floating-point statistics bit-equal
/// between the batch and streaming drivers). Resident state is bounded by
/// the warm-up backlog plus the clock-skew window.
#[derive(Debug)]
pub struct WindowGate<T> {
    pending: VecDeque<(Timestamp, T)>,
}

impl<T> Default for WindowGate<T> {
    fn default() -> Self {
        Self {
            pending: VecDeque::new(),
        }
    }
}

impl<T> WindowGate<T> {
    /// Creates an empty gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a sample: applies it (and any newly decidable older
    /// samples) if its window membership is known, pends it otherwise.
    pub fn offer(
        &mut self,
        ts: Timestamp,
        value: T,
        tracker: &RunWindowTracker,
        mut apply: impl FnMut(T),
    ) {
        self.drain(tracker, &mut apply);
        if self.pending.is_empty() {
            match tracker.classify(ts) {
                Gate::Include => apply(value),
                Gate::Exclude => {}
                Gate::Pend => self.pending.push_back((ts, value)),
            }
        } else {
            // An older sample is still undecided; queue behind it so
            // samples are always applied in insertion order.
            self.pending.push_back((ts, value));
        }
    }

    /// Applies every leading pending sample that has become decidable.
    pub fn drain(&mut self, tracker: &RunWindowTracker, apply: &mut impl FnMut(T)) {
        while let Some((ts, _)) = self.pending.front() {
            match tracker.classify(*ts) {
                Gate::Include => {
                    let (_, value) = self.pending.pop_front().expect("front exists");
                    apply(value);
                }
                Gate::Exclude => {
                    self.pending.pop_front();
                }
                Gate::Pend => break,
            }
        }
    }

    /// Resolves all remaining samples against the final window.
    pub fn finish(self, window: (Timestamp, Timestamp), mut apply: impl FnMut(T)) {
        for (ts, value) in self.pending {
            if ts >= window.0 && ts < window.1 {
                apply(value);
            }
        }
    }

    /// Number of samples currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no samples are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// The effective selector of one end-point, as far as its streamed
/// consumer rows determine it — the incremental form of
/// [`crate::defs::endpoint_selector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectorState {
    /// No consumer row seen yet: coverage is undetermined (treated as
    /// unfiltered if it stays this way to end of stream).
    NoConsumers,
    /// Every consumer row so far agrees on one selector text (`None` =
    /// consumers without a selector).
    Uniform(Option<String>),
    /// Consumer rows disagree; the end-point is skipped, as in the batch
    /// `MixedSelectors` case. Terminal.
    Mixed,
}

/// Accumulates the distinct selector texts of an end-point's consumers.
#[derive(Debug, Clone, Default)]
pub struct SelectorTracker {
    texts: BTreeSet<Option<String>>,
}

impl SelectorTracker {
    /// Creates a tracker that has seen no consumer rows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes one consumer row's selector text. Returns `true` if the
    /// tracker's [`SelectorState`] changed.
    pub fn note(&mut self, selector: Option<&str>) -> bool {
        let before = self.texts.len().min(2);
        self.texts.insert(selector.map(str::to_owned));
        self.texts.len().min(2) != before
    }

    /// The selector knowledge so far.
    pub fn state(&self) -> SelectorState {
        let mut texts = self.texts.iter();
        match (texts.next(), texts.next()) {
            (None, _) => SelectorState::NoConsumers,
            (Some(text), None) => SelectorState::Uniform(text.clone()),
            (Some(_), Some(_)) => SelectorState::Mixed,
        }
    }

    /// Returns `true` once the end-point is known mixed.
    pub fn is_mixed(&self) -> bool {
        self.texts.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::id::{MessageId, NodeId, ProducerId, SessionId, TxId};
    use jmst_api::modes::{DeliveryMode, Priority, TimeToLive};
    use jmst_store::event::MessageRecord;

    fn plain(seq: u64, at_ms: u64) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::BrokerCrashed,
        }
    }

    fn send_tx(seq: u64, at_ms: u64, tx: Option<u64>) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::Send {
                record: MessageRecord {
                    message: MessageId::from_raw(seq),
                    producer: ProducerId::from_raw(1),
                    sequence: seq,
                    destination: jmst_api::destination::Destination::queue("q"),
                    priority: Priority::DEFAULT,
                    delivery_mode: DeliveryMode::Persistent,
                    time_to_live: TimeToLive::FOREVER,
                    sent_at: Timestamp::from_millis(at_ms),
                    body_bytes: 1,
                    redelivered: false,
                    delivery_count: 1,
                    properties: Default::default(),
                },
                session: SessionId::from_raw(1),
                tx: tx.map(TxId::from_raw),
            },
        }
    }

    fn commit(seq: u64, at_ms: u64, tx: u64) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::Commit {
                session: SessionId::from_raw(1),
                tx: TxId::from_raw(tx),
            },
        }
    }

    fn rollback(seq: u64, at_ms: u64, tx: u64) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at_ms),
            node: NodeId::from_raw(0),
            kind: EventKind::Rollback {
                session: SessionId::from_raw(1),
                tx: TxId::from_raw(tx),
            },
        }
    }

    #[test]
    fn resolver_passes_untransacted_events_through() {
        let mut resolver = TxResolver::new();
        let event = send_tx(0, 1, None);
        assert!(matches!(resolver.push(&event), Resolved::One(_)));
    }

    #[test]
    fn resolver_replays_committed_operations_in_order() {
        let mut resolver = TxResolver::new();
        assert!(matches!(
            resolver.push(&send_tx(0, 1, Some(9))),
            Resolved::Buffered
        ));
        assert!(matches!(
            resolver.push(&send_tx(1, 2, Some(9))),
            Resolved::Buffered
        ));
        let Resolved::Replay(events) = resolver.push(&commit(2, 3, 9)) else {
            panic!("expected replay");
        };
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]); // buffered ops then the commit itself
                                     // Original timestamps are preserved.
        assert_eq!(events[0].at, Timestamp::from_millis(1));
    }

    #[test]
    fn resolver_drops_rolled_back_operations() {
        let mut resolver = TxResolver::new();
        resolver.push(&send_tx(0, 1, Some(9)));
        assert!(matches!(
            resolver.push(&rollback(1, 2, 9)),
            Resolved::One(_)
        ));
        // A later commit of the same (now-empty) tx replays only itself.
        let Resolved::Replay(events) = resolver.push(&commit(2, 3, 9)) else {
            panic!("expected replay");
        };
        assert_eq!(events.len(), 1);
        assert!(resolver.state_bytes() < 128);
    }

    #[test]
    fn tracker_matches_batch_window_rules() {
        let mut tracker = RunWindowTracker::new();
        tracker.note(&plain(0, 5));
        tracker.note(&plain(1, 50));
        // No markers: window falls back to [first, last).
        assert_eq!(
            tracker.final_window(),
            (Timestamp::from_millis(5), Timestamp::from_millis(50))
        );
        assert_eq!(tracker.trace_end(), Timestamp::from_millis(50));

        let mut tracker = RunWindowTracker::new();
        let mut run = plain(0, 100);
        run.kind = EventKind::PhaseStarted { phase: Phase::Run };
        let mut down = plain(1, 900);
        down.kind = EventKind::PhaseStarted {
            phase: Phase::WarmDown,
        };
        tracker.note(&run);
        tracker.note(&down);
        assert_eq!(
            tracker.final_window(),
            (Timestamp::from_millis(100), Timestamp::from_millis(900))
        );

        let empty = RunWindowTracker::new();
        assert_eq!(empty.final_window(), (Timestamp::ZERO, Timestamp::ZERO));
    }

    #[test]
    fn classify_is_exact_with_respect_to_the_final_window() {
        let mut tracker = RunWindowTracker::new();
        let mut run = plain(0, 100);
        run.kind = EventKind::PhaseStarted { phase: Phase::Run };
        tracker.note(&run);
        tracker.note(&plain(1, 200));
        // Before run start: decidably out.
        assert_eq!(tracker.classify(Timestamp::from_millis(50)), Gate::Exclude);
        // Inside, before the watermark: decidably in (the end can only
        // land at or after the watermark).
        assert_eq!(tracker.classify(Timestamp::from_millis(150)), Gate::Include);
        // At the watermark: not decidable yet.
        assert_eq!(tracker.classify(Timestamp::from_millis(200)), Gate::Pend);
        // Once warm-down is pinned, everything is decidable.
        let mut down = plain(2, 300);
        down.kind = EventKind::PhaseStarted {
            phase: Phase::WarmDown,
        };
        tracker.note(&down);
        assert_eq!(tracker.classify(Timestamp::from_millis(250)), Gate::Include);
        assert_eq!(tracker.classify(Timestamp::from_millis(300)), Gate::Exclude);
    }

    #[test]
    fn pinned_tracker_classifies_immediately() {
        let tracker =
            RunWindowTracker::pinned((Timestamp::from_millis(10), Timestamp::from_millis(20)));
        assert_eq!(tracker.classify(Timestamp::from_millis(10)), Gate::Include);
        assert_eq!(tracker.classify(Timestamp::from_millis(20)), Gate::Exclude);
        assert_eq!(
            tracker.final_window(),
            (Timestamp::from_millis(10), Timestamp::from_millis(20))
        );
    }

    #[test]
    fn gate_preserves_insertion_order_across_pends() {
        let mut tracker = RunWindowTracker::new();
        let mut gate = WindowGate::new();
        let mut out = Vec::new();
        let mut run = plain(0, 10);
        run.kind = EventKind::PhaseStarted { phase: Phase::Run };
        tracker.note(&run);
        // Sample at the watermark pends; once the watermark advances both
        // it and the next sample flow through, in insertion order.
        gate.offer(Timestamp::from_millis(10), "a", &tracker, |v| out.push(v));
        assert_eq!(gate.len(), 1);
        tracker.note(&plain(1, 30));
        gate.offer(Timestamp::from_millis(20), "b", &tracker, |v| out.push(v));
        assert_eq!(out, ["a", "b"]);
        assert!(gate.is_empty());
        // A still-pending tail resolves against the final window.
        gate.offer(Timestamp::from_millis(30), "c", &tracker, |v| out.push(v));
        assert_eq!(gate.len(), 1);
        gate.finish(tracker.final_window(), |v| out.push(v));
        assert_eq!(out, ["a", "b"]); // 30 == window end, excluded
    }

    #[test]
    fn selector_tracker_mirrors_endpoint_selector() {
        let mut tracker = SelectorTracker::new();
        assert_eq!(tracker.state(), SelectorState::NoConsumers);
        assert!(tracker.note(None));
        assert_eq!(tracker.state(), SelectorState::Uniform(None));
        assert!(!tracker.note(None));
        assert!(tracker.note(Some("JMSPriority > 4")));
        assert!(tracker.is_mixed());
        assert_eq!(tracker.state(), SelectorState::Mixed);
    }
}
