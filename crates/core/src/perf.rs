//! Performance analysis (paper §3.2): producer/consumer throughput in
//! messages and body bytes per second, message-delay statistics, and the
//! fairness measures — all computed over the *run* period only, while
//! safety properties apply to the whole trace.
//!
//! The measures are accumulated incrementally by [`PerfAccumulator`]; the
//! batch [`analyze`] / [`analyze_window`] entry points drive a whole trace
//! through the same accumulator. Samples whose window membership is not
//! yet decidable (the run window is only final at end of stream) wait in
//! [`WindowGate`]s that preserve accumulation order, so batch and
//! streaming runs produce bit-identical floating-point statistics.

use crate::stream::{Resolved, RunWindowTracker, TxResolver, WindowGate};
use jmst_api::id::{ConsumerId, ProducerId};
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind};
use jmst_store::stats::{DelayHistogram, SummaryStats};
use jmst_store::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::mem;
use std::time::Duration;

/// A throughput measure in both units the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Events counted in the window.
    pub count: u64,
    /// Body bytes counted in the window.
    pub bytes: u64,
    /// Messages per second.
    pub messages_per_sec: f64,
    /// Body bytes per second.
    pub bytes_per_sec: f64,
}

impl Throughput {
    fn from_counts(count: u64, bytes: u64, window: Duration) -> Self {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return Self {
                count,
                bytes,
                messages_per_sec: 0.0,
                bytes_per_sec: 0.0,
            };
        }
        Self {
            count,
            bytes,
            messages_per_sec: count as f64 / secs,
            bytes_per_sec: bytes as f64 / secs,
        }
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} msg/s ({:.0} B/s, n={})",
            self.messages_per_sec, self.bytes_per_sec, self.count
        )
    }
}

/// Message-delay statistics in milliseconds.
///
/// Delay is "the time between the start of the message delivery to a
/// consumer and the start of the call to send or publish the message"
/// (paper §3.2). With skewed clocks a delay can be negative (footnote 6);
/// negative samples are kept, and counted separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Summary over all samples, in milliseconds.
    pub stats: SummaryStats,
    /// Number of negative samples (clock-skew artefacts).
    pub negative_samples: u64,
}

/// The full performance report of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    /// The measured window.
    pub window: (Timestamp, Timestamp),
    /// Aggregate producer throughput.
    pub producer_throughput: Throughput,
    /// Aggregate consumer throughput.
    pub consumer_throughput: Throughput,
    /// Per-producer throughput.
    pub per_producer: BTreeMap<ProducerId, Throughput>,
    /// Per-consumer throughput.
    pub per_consumer: BTreeMap<ConsumerId, Throughput>,
    /// Delay statistics over messages produced in the window.
    pub delay: DelayStats,
    /// Standard deviation of per-producer mean delays, milliseconds —
    /// the paper's *unfairness* measure on the producer side.
    pub producer_unfairness_ms: f64,
    /// Standard deviation of per-consumer mean delays, milliseconds.
    pub consumer_unfairness_ms: f64,
    /// Delay histogram over the run period (feeds the histogram
    /// expectation model).
    pub delay_histogram: DelayHistogram,
}

impl PerformanceReport {
    /// An upper estimate of the `q`-quantile of message delay over the
    /// run window, from the delay histogram. `None` when nothing was
    /// delivered.
    pub fn delay_percentile(&self, q: f64) -> Option<Duration> {
        self.delay_histogram.quantile(q)
    }

    /// Renders the report as the rows of the paper's §3.2 measures.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "window              {} .. {}\n",
            self.window.0, self.window.1
        ));
        out.push_str(&format!(
            "producer throughput {}\n",
            self.producer_throughput
        ));
        out.push_str(&format!(
            "consumer throughput {}\n",
            self.consumer_throughput
        ));
        let d = &self.delay.stats;
        out.push_str(&format!(
            "message delay       mean={:.3}ms σ={:.3}ms min={:.3}ms max={:.3}ms n={}\n",
            d.mean(),
            d.std_dev(),
            d.min().unwrap_or(0.0),
            d.max().unwrap_or(0.0),
            d.count()
        ));
        if let (Some(p50), Some(p95), Some(p99)) = (
            self.delay_percentile(0.50),
            self.delay_percentile(0.95),
            self.delay_percentile(0.99),
        ) {
            out.push_str(&format!(
                "delay percentiles   p50≤{:.1}ms p95≤{:.1}ms p99≤{:.1}ms\n",
                p50.as_secs_f64() * 1e3,
                p95.as_secs_f64() * 1e3,
                p99.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "unfairness          producers={:.3}ms consumers={:.3}ms\n",
            self.producer_unfairness_ms, self.consumer_unfairness_ms
        ));
        out
    }
}

/// A delay sample waiting on (or past) its window decision.
#[derive(Debug, Clone, Copy)]
struct DelaySample {
    producer: ProducerId,
    consumer: ConsumerId,
    delay_ns: i64,
}

/// Incremental accumulator for the §3.2 performance measures.
///
/// Producer throughput counts effective sends logged inside the window;
/// consumer throughput counts effective receives logged inside the
/// window; delays are attributed by *production* time (the paper takes
/// measurements for messages produced during the run period).
#[derive(Debug)]
pub struct PerfAccumulator {
    resolver: TxResolver,
    window: RunWindowTracker,
    producer_gate: WindowGate<(ProducerId, u64)>,
    consumer_gate: WindowGate<(ConsumerId, u64)>,
    delay_gate: WindowGate<DelaySample>,
    producer_counts: BTreeMap<ProducerId, (u64, u64)>,
    producer_total: (u64, u64),
    consumer_counts: BTreeMap<ConsumerId, (u64, u64)>,
    consumer_total: (u64, u64),
    delay: DelayStats,
    delay_histogram: DelayHistogram,
    per_producer_delay: BTreeMap<ProducerId, SummaryStats>,
    per_consumer_delay: BTreeMap<ConsumerId, SummaryStats>,
}

impl PerfAccumulator {
    /// Creates an accumulator that infers the run window from the stream.
    pub fn new(bucket: Duration, buckets: usize) -> Self {
        Self::with_tracker(RunWindowTracker::new(), bucket, buckets)
    }

    /// Creates an accumulator measuring an explicit window.
    pub fn with_window(window: (Timestamp, Timestamp), bucket: Duration, buckets: usize) -> Self {
        Self::with_tracker(RunWindowTracker::pinned(window), bucket, buckets)
    }

    fn with_tracker(window: RunWindowTracker, bucket: Duration, buckets: usize) -> Self {
        Self {
            resolver: TxResolver::new(),
            window,
            producer_gate: WindowGate::new(),
            consumer_gate: WindowGate::new(),
            delay_gate: WindowGate::new(),
            producer_counts: BTreeMap::new(),
            producer_total: (0, 0),
            consumer_counts: BTreeMap::new(),
            consumer_total: (0, 0),
            delay: DelayStats::default(),
            delay_histogram: DelayHistogram::new(bucket, buckets),
            per_producer_delay: BTreeMap::new(),
            per_consumer_delay: BTreeMap::new(),
        }
    }

    /// Feeds one raw trace event to the accumulator.
    pub fn observe(&mut self, event: &Event) {
        self.window.note(event);
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
        self.drain();
    }

    fn ingest(&mut self, event: &Event) {
        match &event.kind {
            EventKind::Send { record, .. } => {
                let sample = (record.producer, record.body_bytes);
                let counts = &mut self.producer_counts;
                let total = &mut self.producer_total;
                self.producer_gate
                    .offer(event.at, sample, &self.window, |(p, bytes)| {
                        Self::apply_count(counts, total, p, bytes)
                    });
            }
            EventKind::Receive {
                consumer, record, ..
            } => {
                let sample = (*consumer, record.body_bytes);
                let counts = &mut self.consumer_counts;
                let total = &mut self.consumer_total;
                self.consumer_gate
                    .offer(event.at, sample, &self.window, |(c, bytes)| {
                        Self::apply_count(counts, total, c, bytes)
                    });
                let sample = DelaySample {
                    producer: record.producer,
                    consumer: *consumer,
                    delay_ns: event.at.signed_since(record.sent_at),
                };
                let delay = &mut self.delay;
                let histogram = &mut self.delay_histogram;
                let per_producer = &mut self.per_producer_delay;
                let per_consumer = &mut self.per_consumer_delay;
                self.delay_gate
                    .offer(record.sent_at, sample, &self.window, |s| {
                        Self::apply_delay(delay, histogram, per_producer, per_consumer, s)
                    });
            }
            _ => {}
        }
    }

    fn apply_count<K: Ord>(
        counts: &mut BTreeMap<K, (u64, u64)>,
        total: &mut (u64, u64),
        key: K,
        bytes: u64,
    ) {
        let entry = counts.entry(key).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += bytes;
        total.0 += 1;
        total.1 += bytes;
    }

    fn apply_delay(
        delay: &mut DelayStats,
        histogram: &mut DelayHistogram,
        per_producer: &mut BTreeMap<ProducerId, SummaryStats>,
        per_consumer: &mut BTreeMap<ConsumerId, SummaryStats>,
        sample: DelaySample,
    ) {
        let delay_ms = sample.delay_ns as f64 / 1e6;
        delay.stats.push(delay_ms);
        if sample.delay_ns < 0 {
            delay.negative_samples += 1;
        }
        histogram.push(Duration::from_nanos(sample.delay_ns.max(0) as u64));
        per_producer
            .entry(sample.producer)
            .or_default()
            .push(delay_ms);
        per_consumer
            .entry(sample.consumer)
            .or_default()
            .push(delay_ms);
    }

    /// Flushes any gated samples whose window membership has become
    /// decidable.
    fn drain(&mut self) {
        let counts = &mut self.producer_counts;
        let total = &mut self.producer_total;
        self.producer_gate.drain(&self.window, &mut |(p, bytes)| {
            Self::apply_count(counts, total, p, bytes)
        });
        let counts = &mut self.consumer_counts;
        let total = &mut self.consumer_total;
        self.consumer_gate.drain(&self.window, &mut |(c, bytes)| {
            Self::apply_count(counts, total, c, bytes)
        });
        let delay = &mut self.delay;
        let histogram = &mut self.delay_histogram;
        let per_producer = &mut self.per_producer_delay;
        let per_consumer = &mut self.per_consumer_delay;
        self.delay_gate.drain(&self.window, &mut |s| {
            Self::apply_delay(delay, histogram, per_producer, per_consumer, s)
        });
    }

    /// An estimate of the accumulator's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.resolver.state_bytes()
            + self.producer_gate.len() * mem::size_of::<(Timestamp, (ProducerId, u64))>()
            + self.consumer_gate.len() * mem::size_of::<(Timestamp, (ConsumerId, u64))>()
            + self.delay_gate.len() * mem::size_of::<(Timestamp, DelaySample)>()
            + (self.producer_counts.len() + self.consumer_counts.len())
                * mem::size_of::<(ProducerId, (u64, u64))>()
            + (self.per_producer_delay.len() + self.per_consumer_delay.len())
                * mem::size_of::<(ProducerId, SummaryStats)>()
            + mem::size_of::<DelayHistogram>()
    }

    /// Finishes the accumulation and builds the report.
    pub fn finish(mut self) -> PerformanceReport {
        let window = self.window.final_window();
        let counts = &mut self.producer_counts;
        let total = &mut self.producer_total;
        self.producer_gate.finish(window, |(p, bytes)| {
            Self::apply_count(counts, total, p, bytes)
        });
        let counts = &mut self.consumer_counts;
        let total = &mut self.consumer_total;
        self.consumer_gate.finish(window, |(c, bytes)| {
            Self::apply_count(counts, total, c, bytes)
        });
        let delay = &mut self.delay;
        let histogram = &mut self.delay_histogram;
        let per_producer = &mut self.per_producer_delay;
        let per_consumer = &mut self.per_consumer_delay;
        self.delay_gate.finish(window, |s| {
            Self::apply_delay(delay, histogram, per_producer, per_consumer, s)
        });

        fn unfairness<K>(means: &BTreeMap<K, SummaryStats>) -> f64 {
            let stats: SummaryStats = means.values().map(SummaryStats::mean).collect();
            stats.std_dev()
        }

        let span = window.1.saturating_since(window.0);
        PerformanceReport {
            window,
            producer_throughput: Throughput::from_counts(
                self.producer_total.0,
                self.producer_total.1,
                span,
            ),
            consumer_throughput: Throughput::from_counts(
                self.consumer_total.0,
                self.consumer_total.1,
                span,
            ),
            per_producer: self
                .producer_counts
                .into_iter()
                .map(|(id, (count, bytes))| (id, Throughput::from_counts(count, bytes, span)))
                .collect(),
            per_consumer: self
                .consumer_counts
                .into_iter()
                .map(|(id, (count, bytes))| (id, Throughput::from_counts(count, bytes, span)))
                .collect(),
            delay: self.delay,
            producer_unfairness_ms: unfairness(&self.per_producer_delay),
            consumer_unfairness_ms: unfairness(&self.per_consumer_delay),
            delay_histogram: self.delay_histogram,
        }
    }
}

/// Computes the §3.2 performance measures over the trace's run window.
pub fn analyze(trace: &Trace, bucket: Duration, buckets: usize) -> PerformanceReport {
    let mut accumulator = PerfAccumulator::new(bucket, buckets);
    for event in trace {
        accumulator.observe(event);
    }
    accumulator.finish()
}

/// Computes the performance measures over an explicit window.
pub fn analyze_window(
    trace: &Trace,
    window: (Timestamp, Timestamp),
    bucket: Duration,
    buckets: usize,
) -> PerformanceReport {
    let mut accumulator = PerfAccumulator::with_window(window, bucket, buckets);
    for event in trace {
        accumulator.observe(event);
    }
    accumulator.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::Phase;

    /// 10 messages over a 10-second run window, 100 bytes each, received
    /// 5 ms after sending, plus warm-up/warm-down traffic that must be
    /// excluded.
    fn run_trace() -> Trace {
        let mut builder = TraceBuilder::new()
            .phase(Phase::WarmUp)
            // Warm-up traffic (excluded).
            .at(100)
            .send(1000, 1, 1000)
            .at(105)
            .receive_q(1000, 1, 1000)
            .at(1_000)
            .phase(Phase::Run);
        for i in 0..10u64 {
            let at = 1_000 + i * 1_000;
            builder = builder
                .at(at)
                .send(i + 1, 1, i)
                .at(at + 5)
                .receive_q(i + 1, 1, i);
        }
        builder = builder
            .at(11_000)
            .phase(Phase::WarmDown)
            // Warm-down traffic (excluded).
            .at(11_100)
            .send(2000, 1, 2000)
            .at(11_105)
            .receive_q(2000, 1, 2000);
        builder.build()
    }

    #[test]
    fn throughput_counts_run_window_only() {
        let report = analyze(&run_trace(), Duration::from_millis(1), 100);
        assert_eq!(report.producer_throughput.count, 10);
        assert_eq!(report.consumer_throughput.count, 10);
        assert!((report.producer_throughput.messages_per_sec - 1.0).abs() < 1e-9);
        assert!((report.producer_throughput.bytes_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn delay_statistics() {
        let report = analyze(&run_trace(), Duration::from_millis(1), 100);
        assert_eq!(report.delay.stats.count(), 10);
        assert!((report.delay.stats.mean() - 5.0).abs() < 1e-9);
        assert_eq!(report.delay.stats.std_dev(), 0.0);
        assert_eq!(report.delay.negative_samples, 0);
    }

    #[test]
    fn per_actor_breakdowns() {
        let report = analyze(&run_trace(), Duration::from_millis(1), 100);
        assert_eq!(report.per_producer.len(), 1);
        assert_eq!(report.per_consumer.len(), 1);
        assert_eq!(report.per_producer[&ProducerId::from_raw(1)].count, 10);
    }

    #[test]
    fn unfairness_is_zero_for_single_actors_and_positive_when_skewed() {
        let report = analyze(&run_trace(), Duration::from_millis(1), 100);
        assert_eq!(report.producer_unfairness_ms, 0.0);
        // Two producers with different delays → positive unfairness.
        let mut builder = TraceBuilder::new().phase(Phase::Run);
        for i in 0..10u64 {
            let at = 100 + i * 100;
            let fast = rec(i * 2 + 1, 1, i);
            let slow = rec(i * 2 + 2, 2, i);
            builder = builder
                .at(at)
                .send_rec(fast.clone(), None)
                .send_rec(slow.clone(), None)
                .at(at + 2)
                .receive_rec(default_queue_endpoint(), 50, fast, None)
                .at(at + 50)
                .receive_rec(default_queue_endpoint(), 50, slow, None);
        }
        builder = builder.at(10_000).phase(Phase::WarmDown);
        let report = analyze(&builder.build(), Duration::from_millis(1), 100);
        assert!(report.producer_unfairness_ms > 10.0);
        assert_eq!(report.consumer_unfairness_ms, 0.0);
    }

    #[test]
    fn negative_delays_are_counted() {
        // A receive logged on a node whose clock runs behind the sender's.
        let mut record = rec(1, 1, 0);
        record.sent_at = Timestamp::from_millis(100);
        let trace = TraceBuilder::new()
            .phase(Phase::Run)
            .at(50)
            .receive_rec(default_queue_endpoint(), 50, record.clone(), None)
            .at(51)
            .send_rec(record, None) // keep the send in-window
            .at(10_000)
            .phase(Phase::WarmDown)
            .build();
        let report = analyze(&trace, Duration::from_millis(1), 100);
        assert_eq!(report.delay.negative_samples, 1);
        assert!(report.delay.stats.mean() < 0.0);
    }

    #[test]
    fn empty_window_is_safe() {
        let report = analyze(&TraceBuilder::new().build(), Duration::from_millis(1), 10);
        assert_eq!(report.producer_throughput.count, 0);
        assert_eq!(report.producer_throughput.messages_per_sec, 0.0);
        assert_eq!(report.delay.stats.count(), 0);
    }

    #[test]
    fn table_rendering_mentions_all_measures() {
        let report = analyze(&run_trace(), Duration::from_millis(1), 100);
        let table = report.to_table();
        assert!(table.contains("producer throughput"));
        assert!(table.contains("consumer throughput"));
        assert!(table.contains("message delay"));
        assert!(table.contains("unfairness"));
        assert!(table.contains("p95"));
    }

    #[test]
    fn delay_percentiles_come_from_the_histogram() {
        let report = analyze(&run_trace(), Duration::from_millis(1), 100);
        // All delays are exactly 5 ms; bucket upper edges give ≤ 6 ms.
        let p50 = report.delay_percentile(0.5).unwrap();
        assert!(p50 >= Duration::from_millis(5) && p50 <= Duration::from_millis(6));
        assert_eq!(report.delay_percentile(0.99), report.delay_percentile(0.5));
        let empty = analyze(&TraceBuilder::new().build(), Duration::from_millis(1), 10);
        assert_eq!(empty.delay_percentile(0.5), None);
    }

    #[test]
    fn explicit_window_overrides_run_window() {
        let report = analyze_window(
            &run_trace(),
            (Timestamp::ZERO, Timestamp::from_secs(100)),
            Duration::from_millis(1),
            100,
        );
        // Now warm-up and warm-down messages are included: 12 sends.
        assert_eq!(report.producer_throughput.count, 12);
    }
}
