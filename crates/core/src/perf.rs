//! Performance analysis (paper §3.2): producer/consumer throughput in
//! messages and body bytes per second, message-delay statistics, and the
//! fairness measures — all computed over the *run* period only, while
//! safety properties apply to the whole trace.

use jmst_api::id::{ConsumerId, ProducerId};
use jmst_api::time::Timestamp;
use jmst_store::stats::{DelayHistogram, SummaryStats};
use jmst_store::table::TraceStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A throughput measure in both units the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Events counted in the window.
    pub count: u64,
    /// Body bytes counted in the window.
    pub bytes: u64,
    /// Messages per second.
    pub messages_per_sec: f64,
    /// Body bytes per second.
    pub bytes_per_sec: f64,
}

impl Throughput {
    fn from_counts(count: u64, bytes: u64, window: Duration) -> Self {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return Self {
                count,
                bytes,
                messages_per_sec: 0.0,
                bytes_per_sec: 0.0,
            };
        }
        Self {
            count,
            bytes,
            messages_per_sec: count as f64 / secs,
            bytes_per_sec: bytes as f64 / secs,
        }
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} msg/s ({:.0} B/s, n={})",
            self.messages_per_sec, self.bytes_per_sec, self.count
        )
    }
}

/// Message-delay statistics in milliseconds.
///
/// Delay is "the time between the start of the message delivery to a
/// consumer and the start of the call to send or publish the message"
/// (paper §3.2). With skewed clocks a delay can be negative (footnote 6);
/// negative samples are kept, and counted separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Summary over all samples, in milliseconds.
    pub stats: SummaryStats,
    /// Number of negative samples (clock-skew artefacts).
    pub negative_samples: u64,
}

/// The full performance report of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    /// The measured window.
    pub window: (Timestamp, Timestamp),
    /// Aggregate producer throughput.
    pub producer_throughput: Throughput,
    /// Aggregate consumer throughput.
    pub consumer_throughput: Throughput,
    /// Per-producer throughput.
    pub per_producer: BTreeMap<ProducerId, Throughput>,
    /// Per-consumer throughput.
    pub per_consumer: BTreeMap<ConsumerId, Throughput>,
    /// Delay statistics over messages produced in the window.
    pub delay: DelayStats,
    /// Standard deviation of per-producer mean delays, milliseconds —
    /// the paper's *unfairness* measure on the producer side.
    pub producer_unfairness_ms: f64,
    /// Standard deviation of per-consumer mean delays, milliseconds.
    pub consumer_unfairness_ms: f64,
    /// Delay histogram over the run period (feeds the histogram
    /// expectation model).
    pub delay_histogram: DelayHistogram,
}

impl PerformanceReport {
    /// An upper estimate of the `q`-quantile of message delay over the
    /// run window, from the delay histogram. `None` when nothing was
    /// delivered.
    pub fn delay_percentile(&self, q: f64) -> Option<Duration> {
        self.delay_histogram.quantile(q)
    }

    /// Renders the report as the rows of the paper's §3.2 measures.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "window              {} .. {}\n",
            self.window.0, self.window.1
        ));
        out.push_str(&format!(
            "producer throughput {}\n",
            self.producer_throughput
        ));
        out.push_str(&format!(
            "consumer throughput {}\n",
            self.consumer_throughput
        ));
        let d = &self.delay.stats;
        out.push_str(&format!(
            "message delay       mean={:.3}ms σ={:.3}ms min={:.3}ms max={:.3}ms n={}\n",
            d.mean(),
            d.std_dev(),
            d.min().unwrap_or(0.0),
            d.max().unwrap_or(0.0),
            d.count()
        ));
        if let (Some(p50), Some(p95), Some(p99)) = (
            self.delay_percentile(0.50),
            self.delay_percentile(0.95),
            self.delay_percentile(0.99),
        ) {
            out.push_str(&format!(
                "delay percentiles   p50≤{:.1}ms p95≤{:.1}ms p99≤{:.1}ms\n",
                p50.as_secs_f64() * 1e3,
                p95.as_secs_f64() * 1e3,
                p99.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "unfairness          producers={:.3}ms consumers={:.3}ms\n",
            self.producer_unfairness_ms, self.consumer_unfairness_ms
        ));
        out
    }
}

/// Computes the §3.2 performance measures over the trace's run window.
pub fn analyze(store: &TraceStore, bucket: Duration, buckets: usize) -> PerformanceReport {
    let window = store.run_window();
    analyze_window(store, window, bucket, buckets)
}

/// Computes the performance measures over an explicit window.
pub fn analyze_window(
    store: &TraceStore,
    window: (Timestamp, Timestamp),
    bucket: Duration,
    buckets: usize,
) -> PerformanceReport {
    let (start, end) = window;
    let span = end.saturating_since(start);

    // Producer throughput: effective sends logged inside the window.
    let mut producer_counts: BTreeMap<ProducerId, (u64, u64)> = BTreeMap::new();
    let mut producer_total = (0u64, 0u64);
    for send in store.effective_sends() {
        if send.at < start || send.at >= end {
            continue;
        }
        let entry = producer_counts
            .entry(send.record.producer)
            .or_insert((0, 0));
        entry.0 += 1;
        entry.1 += send.record.body_bytes;
        producer_total.0 += 1;
        producer_total.1 += send.record.body_bytes;
    }

    // Consumer throughput and delays: effective receives of messages
    // produced during the run period.
    let mut consumer_counts: BTreeMap<ConsumerId, (u64, u64)> = BTreeMap::new();
    let mut consumer_total = (0u64, 0u64);
    let mut delay = DelayStats::default();
    let mut delay_histogram = DelayHistogram::new(bucket, buckets);
    let mut per_producer_delay: BTreeMap<ProducerId, SummaryStats> = BTreeMap::new();
    let mut per_consumer_delay: BTreeMap<ConsumerId, SummaryStats> = BTreeMap::new();
    for receive in store.effective_receives() {
        if receive.at >= start && receive.at < end {
            let entry = consumer_counts.entry(receive.consumer).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += receive.record.body_bytes;
            consumer_total.0 += 1;
            consumer_total.1 += receive.record.body_bytes;
        }
        // Delays are attributed by production time (paper: measurements
        // are taken for messages produced during the run period).
        let produced_in_window = receive.record.sent_at >= start && receive.record.sent_at < end;
        if produced_in_window {
            let delay_ns = receive.at.signed_since(receive.record.sent_at);
            let delay_ms = delay_ns as f64 / 1e6;
            delay.stats.push(delay_ms);
            if delay_ns < 0 {
                delay.negative_samples += 1;
            }
            delay_histogram.push(Duration::from_nanos(delay_ns.max(0) as u64));
            per_producer_delay
                .entry(receive.record.producer)
                .or_default()
                .push(delay_ms);
            per_consumer_delay
                .entry(receive.consumer)
                .or_default()
                .push(delay_ms);
        }
    }

    fn unfairness<K>(means: &BTreeMap<K, SummaryStats>) -> f64 {
        let stats: SummaryStats = means.values().map(SummaryStats::mean).collect();
        stats.std_dev()
    }

    PerformanceReport {
        window,
        producer_throughput: Throughput::from_counts(producer_total.0, producer_total.1, span),
        consumer_throughput: Throughput::from_counts(consumer_total.0, consumer_total.1, span),
        per_producer: producer_counts
            .into_iter()
            .map(|(id, (count, bytes))| (id, Throughput::from_counts(count, bytes, span)))
            .collect(),
        per_consumer: consumer_counts
            .into_iter()
            .map(|(id, (count, bytes))| (id, Throughput::from_counts(count, bytes, span)))
            .collect(),
        delay,
        producer_unfairness_ms: unfairness(&per_producer_delay),
        consumer_unfairness_ms: unfairness(&per_consumer_delay),
        delay_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::Phase;

    /// 10 messages over a 10-second run window, 100 bytes each, received
    /// 5 ms after sending, plus warm-up/warm-down traffic that must be
    /// excluded.
    fn trace_store() -> TraceStore {
        let mut builder = TraceBuilder::new()
            .phase(Phase::WarmUp)
            // Warm-up traffic (excluded).
            .at(100)
            .send(1000, 1, 1000)
            .at(105)
            .receive_q(1000, 1, 1000)
            .at(1_000)
            .phase(Phase::Run);
        for i in 0..10u64 {
            let at = 1_000 + i * 1_000;
            builder = builder
                .at(at)
                .send(i + 1, 1, i)
                .at(at + 5)
                .receive_q(i + 1, 1, i);
        }
        builder = builder
            .at(11_000)
            .phase(Phase::WarmDown)
            // Warm-down traffic (excluded).
            .at(11_100)
            .send(2000, 1, 2000)
            .at(11_105)
            .receive_q(2000, 1, 2000);
        TraceStore::build(&builder.build())
    }

    #[test]
    fn throughput_counts_run_window_only() {
        let report = analyze(&trace_store(), Duration::from_millis(1), 100);
        assert_eq!(report.producer_throughput.count, 10);
        assert_eq!(report.consumer_throughput.count, 10);
        assert!((report.producer_throughput.messages_per_sec - 1.0).abs() < 1e-9);
        assert!((report.producer_throughput.bytes_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn delay_statistics() {
        let report = analyze(&trace_store(), Duration::from_millis(1), 100);
        assert_eq!(report.delay.stats.count(), 10);
        assert!((report.delay.stats.mean() - 5.0).abs() < 1e-9);
        assert_eq!(report.delay.stats.std_dev(), 0.0);
        assert_eq!(report.delay.negative_samples, 0);
    }

    #[test]
    fn per_actor_breakdowns() {
        let report = analyze(&trace_store(), Duration::from_millis(1), 100);
        assert_eq!(report.per_producer.len(), 1);
        assert_eq!(report.per_consumer.len(), 1);
        assert_eq!(report.per_producer[&ProducerId::from_raw(1)].count, 10);
    }

    #[test]
    fn unfairness_is_zero_for_single_actors_and_positive_when_skewed() {
        let report = analyze(&trace_store(), Duration::from_millis(1), 100);
        assert_eq!(report.producer_unfairness_ms, 0.0);
        // Two producers with different delays → positive unfairness.
        let mut builder = TraceBuilder::new().phase(Phase::Run);
        for i in 0..10u64 {
            let at = 100 + i * 100;
            let fast = rec(i * 2 + 1, 1, i);
            let slow = rec(i * 2 + 2, 2, i);
            builder = builder
                .at(at)
                .send_rec(fast.clone(), None)
                .send_rec(slow.clone(), None)
                .at(at + 2)
                .receive_rec(default_queue_endpoint(), 50, fast, None)
                .at(at + 50)
                .receive_rec(default_queue_endpoint(), 50, slow, None);
        }
        builder = builder.at(10_000).phase(Phase::WarmDown);
        let store = TraceStore::build(&builder.build());
        let report = analyze(&store, Duration::from_millis(1), 100);
        assert!(report.producer_unfairness_ms > 10.0);
        assert_eq!(report.consumer_unfairness_ms, 0.0);
    }

    #[test]
    fn negative_delays_are_counted() {
        // A receive logged on a node whose clock runs behind the sender's.
        let mut record = rec(1, 1, 0);
        record.sent_at = Timestamp::from_millis(100);
        let trace = TraceBuilder::new()
            .phase(Phase::Run)
            .at(50)
            .receive_rec(default_queue_endpoint(), 50, record.clone(), None)
            .at(51)
            .send_rec(record, None) // keep the send in-window
            .at(10_000)
            .phase(Phase::WarmDown)
            .build();
        let store = TraceStore::build(&trace);
        let report = analyze(&store, Duration::from_millis(1), 100);
        assert_eq!(report.delay.negative_samples, 1);
        assert!(report.delay.stats.mean() < 0.0);
    }

    #[test]
    fn empty_window_is_safe() {
        let store = TraceStore::build(&TraceBuilder::new().build());
        let report = analyze(&store, Duration::from_millis(1), 10);
        assert_eq!(report.producer_throughput.count, 0);
        assert_eq!(report.producer_throughput.messages_per_sec, 0.0);
        assert_eq!(report.delay.stats.count(), 0);
    }

    #[test]
    fn table_rendering_mentions_all_measures() {
        let report = analyze(&trace_store(), Duration::from_millis(1), 100);
        let table = report.to_table();
        assert!(table.contains("producer throughput"));
        assert!(table.contains("consumer throughput"));
        assert!(table.contains("message delay"));
        assert!(table.contains("unfairness"));
        assert!(table.contains("p95"));
    }

    #[test]
    fn delay_percentiles_come_from_the_histogram() {
        let report = analyze(&trace_store(), Duration::from_millis(1), 100);
        // All delays are exactly 5 ms; bucket upper edges give ≤ 6 ms.
        let p50 = report.delay_percentile(0.5).unwrap();
        assert!(p50 >= Duration::from_millis(5) && p50 <= Duration::from_millis(6));
        assert_eq!(report.delay_percentile(0.99), report.delay_percentile(0.5));
        let empty = analyze(
            &TraceStore::build(&TraceBuilder::new().build()),
            Duration::from_millis(1),
            10,
        );
        assert_eq!(empty.delay_percentile(0.5), None);
    }

    #[test]
    fn explicit_window_overrides_run_window() {
        let store = trace_store();
        let report = analyze_window(
            &store,
            (Timestamp::ZERO, Timestamp::from_secs(100)),
            Duration::from_millis(1),
            100,
        );
        // Now warm-up and warm-down messages are included: 12 sends.
        assert_eq!(report.producer_throughput.count, 12);
    }
}
