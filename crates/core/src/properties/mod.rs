//! Checkers for the paper's safety properties (§3.1), one module per
//! property.

pub mod duplicates;
pub mod expiry;
pub mod integrity;
pub mod ordering;
pub mod priority;
pub mod required;
