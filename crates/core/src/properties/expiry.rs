//! Property 5 — Expired Messages: under a delay *expectation model*, the
//! percentage of expected-expired messages that were delivered must stay
//! below a threshold, and the percentage of expected-live messages that
//! were delivered must stay above one.
//!
//! The paper deploys a simple mean-latency model and suggests (in §5)
//! histogram- and normal-distribution-based models as future work; all
//! three are implemented and selectable through
//! [`ExpiryConfig`].
//!
//! The model is fitted incrementally by [`FitAccumulator`] and the
//! accounting is gathered incrementally by [`ExpiryChecker`]. Queue
//! end-points keep only per-time-to-live aggregates plus the ids of
//! still-undelivered messages; subscription end-points must retain the
//! topic send log, because a subscription's activity window (first
//! consumer creation to last close) is only known at end of stream.
//!
//! One deliberate deviation from the retrospective batch semantics: a
//! queue consumer's selector is applied to sends *from the point the
//! consumer row is seen* (prospectively), not re-applied to sends counted
//! before any consumer existed — re-filtering would require retaining
//! every queue record. Mixed-selector end-points are skipped exactly as
//! in the batch analysis.
//!
//! [`ExpiryConfig`]: crate::config::ExpiryConfig

use crate::config::{ExpiryConfig, ExpiryModel};
use crate::defs;
use crate::stream::{Resolved, SelectorState, SelectorTracker, TxResolver};
use crate::violation::Violation;
use jmst_api::destination::{Destination, EndpointId};
use jmst_api::id::MessageId;
use jmst_api::modes::TimeToLive;
use jmst_api::selector::Selector;
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind, MessageRecord};
use jmst_store::stats::{DelayHistogram, SummaryStats};
use jmst_store::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::mem;
use std::time::Duration;

/// Per-end-point expiry accounting, returned alongside any violations for
/// reporting (experiment E6 prints these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpiryBreakdown {
    /// The end-point.
    pub endpoint: EndpointId,
    /// Messages the model expected to expire.
    pub expected_expired: u64,
    /// …of which this many were delivered anyway.
    pub expired_delivered: u64,
    /// Messages the model expected to live.
    pub expected_live: u64,
    /// …of which this many were delivered.
    pub live_delivered: u64,
}

impl ExpiryBreakdown {
    /// Percentage of expected-expired messages that were delivered.
    pub fn expired_delivered_percent(&self) -> f64 {
        if self.expected_expired == 0 {
            0.0
        } else {
            100.0 * self.expired_delivered as f64 / self.expected_expired as f64
        }
    }

    /// Percentage of expected-live messages that were delivered.
    pub fn live_delivered_percent(&self) -> f64 {
        if self.expected_live == 0 {
            100.0
        } else {
            100.0 * self.live_delivered as f64 / self.expected_live as f64
        }
    }
}

/// The fitted delay expectation model for one run.
#[derive(Debug, Clone)]
pub struct FittedModel {
    model: ExpiryModel,
    deliver_probability: f64,
    stats: SummaryStats,
    histogram: DelayHistogram,
}

impl FittedModel {
    /// Fits the configured model to the observed delivery delays of the
    /// trace (all effective receives).
    pub fn fit(trace: &Trace, config: &ExpiryConfig, histogram: DelayHistogram) -> Self {
        let mut accumulator = FitAccumulator::new(histogram);
        for event in trace {
            accumulator.observe(event);
        }
        accumulator.finish(config)
    }

    /// Whether a message with the given time-to-live is expected to be
    /// delivered.
    pub fn expect_delivered(&self, ttl: TimeToLive) -> bool {
        let Some(ttl) = ttl.as_duration() else {
            return true; // never expires
        };
        let ttl_ms = ttl.as_secs_f64() * 1e3;
        match self.model {
            ExpiryModel::SimpleMean => self.stats.mean() <= ttl_ms,
            ExpiryModel::Histogram => {
                self.histogram.fraction_at_most(ttl) >= self.deliver_probability
            }
            ExpiryModel::Normal => {
                let std = self.stats.std_dev();
                if std == 0.0 {
                    self.stats.mean() <= ttl_ms
                } else {
                    normal_cdf((ttl_ms - self.stats.mean()) / std) >= self.deliver_probability
                }
            }
        }
    }

    /// The fitted delay statistics (milliseconds).
    pub fn delay_stats(&self) -> &SummaryStats {
        &self.stats
    }

    /// The fitted delay histogram.
    pub fn delay_histogram(&self) -> &DelayHistogram {
        &self.histogram
    }
}

/// Incremental model fitting: accumulates the delivery-delay sample of
/// every effective receive.
#[derive(Debug)]
pub struct FitAccumulator {
    resolver: TxResolver,
    stats: SummaryStats,
    histogram: DelayHistogram,
}

impl FitAccumulator {
    /// Creates an accumulator collecting into the given histogram shape.
    pub fn new(histogram: DelayHistogram) -> Self {
        Self {
            resolver: TxResolver::new(),
            stats: SummaryStats::new(),
            histogram,
        }
    }

    /// Feeds one raw trace event to the accumulator.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        let EventKind::Receive { record, .. } = &event.kind else {
            return;
        };
        let delay_ns = event.at.signed_since(record.sent_at);
        self.stats.push(delay_ns as f64 / 1e6);
        self.histogram
            .push(Duration::from_nanos(delay_ns.max(0) as u64));
    }

    /// An estimate of the accumulator's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.resolver.state_bytes()
            + mem::size_of::<SummaryStats>()
            + mem::size_of::<DelayHistogram>()
    }

    /// Finishes the fit under the configured expectation model.
    pub fn finish(self, config: &ExpiryConfig) -> FittedModel {
        FittedModel {
            model: config.model,
            deliver_probability: config.deliver_probability,
            stats: self.stats,
            histogram: self.histogram,
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7, ample for an expectation model).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Per-queue expiry state: aggregate counts per time-to-live, plus the
/// ids needed to join sends to deliveries. Bounded by the number of
/// *undelivered* messages, not by trace length.
#[derive(Debug, Default)]
struct QueueExpiry {
    tracker: SelectorTracker,
    /// Parsed selector once the tracker is uniform on one text.
    selector: Option<Selector>,
    /// time-to-live → (relevant sends, of which delivered).
    counts: BTreeMap<TimeToLive, (u64, u64)>,
    /// Relevant sends not yet seen delivered.
    pending: HashMap<MessageId, TimeToLive>,
    /// Deliveries seen before (or without) their send.
    early: HashSet<MessageId>,
}

/// Per-subscription expiry state. The activity window (first consumer
/// creation to last close) is only known at end of stream, so the topic
/// send log is retained by the owning [`ExpiryChecker`] and replayed in
/// `finish`.
#[derive(Debug, Default)]
struct SubExpiry {
    tracker: SelectorTracker,
    opened_at: Option<Timestamp>,
    last_close: Option<Timestamp>,
    delivered: HashSet<MessageId>,
}

/// Incremental expired-messages checker.
#[derive(Debug, Default)]
pub struct ExpiryChecker {
    resolver: TxResolver,
    queues: BTreeMap<EndpointId, QueueExpiry>,
    subs: BTreeMap<EndpointId, SubExpiry>,
    /// Effective sends to topic destinations, replayed per subscription
    /// end-point in `finish`.
    topic_sends: Vec<MessageRecord>,
    last_at: Timestamp,
}

impl ExpiryChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw trace event to the checker.
    pub fn observe(&mut self, event: &Event) {
        self.last_at = self.last_at.max(event.at);
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        match &event.kind {
            EventKind::ConsumerCreated {
                endpoint, selector, ..
            } => match endpoint {
                EndpointId::Queue(_) => {
                    let state = self.queues.entry(endpoint.clone()).or_default();
                    if state.tracker.note(selector.as_deref()) {
                        state.selector = match state.tracker.state() {
                            SelectorState::Uniform(Some(text)) => Some(
                                Selector::parse(&text)
                                    .expect("selector accepted by the provider must parse"),
                            ),
                            _ => None,
                        };
                    }
                }
                _ => {
                    let state = self.subs.entry(endpoint.clone()).or_default();
                    state.tracker.note(selector.as_deref());
                    state.opened_at = Some(
                        state
                            .opened_at
                            .map_or(event.at, |start| start.min(event.at)),
                    );
                }
            },
            EventKind::ConsumerClosed { endpoint, .. }
                if !matches!(endpoint, EndpointId::Queue(_)) =>
            {
                let state = self.subs.entry(endpoint.clone()).or_default();
                state.last_close =
                    Some(state.last_close.map_or(event.at, |last| last.max(event.at)));
            }
            EventKind::Send { record, .. } => match &record.destination {
                Destination::Queue(name) => {
                    let endpoint = EndpointId::for_queue(name.clone());
                    let state = self.queues.entry(endpoint).or_default();
                    if let Some(selector) = &state.selector {
                        if !defs::selector_accepts_record(selector, record) {
                            return;
                        }
                    }
                    let counts = state.counts.entry(record.time_to_live).or_insert((0, 0));
                    counts.0 += 1;
                    if state.early.remove(&record.message) {
                        counts.1 += 1;
                    } else {
                        state.pending.insert(record.message, record.time_to_live);
                    }
                }
                Destination::Topic(_) => self.topic_sends.push(record.clone()),
            },
            EventKind::Receive {
                endpoint, record, ..
            } => {
                if matches!(endpoint, EndpointId::Queue(_)) {
                    let state = self.queues.entry(endpoint.clone()).or_default();
                    if let Some(ttl) = state.pending.remove(&record.message) {
                        if let Some(counts) = state.counts.get_mut(&ttl) {
                            counts.1 += 1;
                        }
                    } else {
                        state.early.insert(record.message);
                    }
                } else {
                    let state = self.subs.entry(endpoint.clone()).or_default();
                    state.delivered.insert(record.message);
                }
            }
            _ => {}
        }
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        let queue_bytes: usize = self
            .queues
            .values()
            .map(|q| {
                q.counts.len() * mem::size_of::<(TimeToLive, (u64, u64))>()
                    + q.pending.capacity() * mem::size_of::<(MessageId, TimeToLive)>()
                    + q.early.capacity() * mem::size_of::<MessageId>()
            })
            .sum();
        let sub_bytes: usize = self
            .subs
            .values()
            .map(|s| s.delivered.capacity() * mem::size_of::<MessageId>())
            .sum();
        self.resolver.state_bytes()
            + queue_bytes
            + sub_bytes
            + self.topic_sends.capacity() * mem::size_of::<MessageRecord>()
    }

    /// Finishes the check under the fitted model, returning violations
    /// and the per-end-point accounting, in end-point order.
    pub fn finish(
        self,
        config: &ExpiryConfig,
        model: &FittedModel,
    ) -> (Vec<Violation>, Vec<ExpiryBreakdown>) {
        let trace_end = self.last_at;
        let mut accounted: BTreeMap<EndpointId, ExpiryBreakdown> = BTreeMap::new();

        for (endpoint, state) in &self.queues {
            if state.tracker.is_mixed() {
                continue;
            }
            let any_finite_ttl = state.counts.keys().any(|ttl| !ttl.is_forever());
            if !any_finite_ttl {
                continue;
            }
            let mut breakdown = ExpiryBreakdown {
                endpoint: endpoint.clone(),
                expected_expired: 0,
                expired_delivered: 0,
                expected_live: 0,
                live_delivered: 0,
            };
            for (ttl, (sent, delivered)) in &state.counts {
                if model.expect_delivered(*ttl) {
                    breakdown.expected_live += sent;
                    breakdown.live_delivered += delivered;
                } else {
                    breakdown.expected_expired += sent;
                    breakdown.expired_delivered += delivered;
                }
            }
            if breakdown.expected_expired == 0 && breakdown.expected_live == 0 {
                continue;
            }
            accounted.insert(endpoint.clone(), breakdown);
        }

        for (endpoint, state) in &self.subs {
            if state.tracker.is_mixed() {
                continue;
            }
            let selector = match state.tracker.state() {
                SelectorState::Uniform(Some(text)) => Some(
                    Selector::parse(&text).expect("selector accepted by the provider must parse"),
                ),
                _ => None,
            };
            // Subscriptions only cover messages published during their
            // lifetime (a queue's messages wait, so queues are unbounded):
            // counting pre-subscription publishes as "expected" would
            // charge the provider for correct pub/sub behaviour.
            let activity_window = state
                .opened_at
                .map(|start| (start, state.last_close.unwrap_or(trace_end)));
            let mut breakdown = ExpiryBreakdown {
                endpoint: endpoint.clone(),
                expected_expired: 0,
                expired_delivered: 0,
                expected_live: 0,
                live_delivered: 0,
            };
            let mut any_finite_ttl = false;
            for record in &self.topic_sends {
                if !defs::possibly_received(endpoint, selector.as_ref(), record) {
                    continue;
                }
                if let Some((start, end)) = activity_window {
                    if record.sent_at < start || record.sent_at > end {
                        continue;
                    }
                }
                any_finite_ttl |= !record.time_to_live.is_forever();
                let delivered = state.delivered.contains(&record.message);
                if model.expect_delivered(record.time_to_live) {
                    breakdown.expected_live += 1;
                    if delivered {
                        breakdown.live_delivered += 1;
                    }
                } else {
                    breakdown.expected_expired += 1;
                    if delivered {
                        breakdown.expired_delivered += 1;
                    }
                }
            }
            // Property 5 judges expiry behaviour; an end-point that never
            // saw a finite time-to-live is not an expiry test, and missing
            // forever-lived messages are Property 2's to report.
            if !any_finite_ttl {
                continue;
            }
            if breakdown.expected_expired == 0 && breakdown.expected_live == 0 {
                continue;
            }
            accounted.insert(endpoint.clone(), breakdown);
        }

        let mut violations = Vec::new();
        let mut breakdowns = Vec::new();
        for (endpoint, breakdown) in accounted {
            if breakdown.expired_delivered_percent() > config.max_expired_delivered_percent {
                violations.push(Violation::ExpiredMessagesDelivered {
                    endpoint: endpoint.clone(),
                    expected_expired: breakdown.expected_expired,
                    delivered: breakdown.expired_delivered,
                    max_percent: config.max_expired_delivered_percent,
                });
            }
            if breakdown.live_delivered_percent() < config.min_live_delivered_percent {
                violations.push(Violation::LiveMessagesNotDelivered {
                    endpoint,
                    expected_live: breakdown.expected_live,
                    delivered: breakdown.live_delivered,
                    min_percent: config.min_live_delivered_percent,
                });
            }
            breakdowns.push(breakdown);
        }
        (violations, breakdowns)
    }
}

/// Checks the expiry property over a whole trace, returning violations
/// and the per-end-point accounting.
pub fn check(
    trace: &Trace,
    config: &ExpiryConfig,
    model: &FittedModel,
) -> (Vec<Violation>, Vec<ExpiryBreakdown>) {
    let mut checker = ExpiryChecker::new();
    for event in trace {
        checker.observe(event);
    }
    checker.finish(config, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    fn with_ttl(message: u64, sequence: u64, ttl_ms: u64) -> MessageRecord {
        let mut record = rec(message, 1, sequence);
        record.time_to_live = TimeToLive::from_millis(ttl_ms);
        record
    }

    /// The paper's expiry test configuration: TTL 1 ms (expected to
    /// expire) and TTL 0 (expected to live), with a mean delay well above
    /// 1 ms.
    fn paper_config_trace(deliver_expired: bool, drop_live: bool) -> Trace {
        let mut builder = TraceBuilder::new();
        let mut message = 0u64;
        for i in 0..50u64 {
            // TTL-0 message, delivered after ~10 ms (unless drop_live).
            message += 1;
            let live = with_ttl(message, i * 2, 0);
            builder = builder.at(i * 30).send_rec(live.clone(), None);
            if !drop_live {
                builder =
                    builder
                        .at(i * 30 + 10)
                        .receive_rec(default_queue_endpoint(), 50, live, None);
            }
            // TTL-1ms message: should be suppressed.
            message += 1;
            let expiring = with_ttl(message, i * 2 + 1, 1);
            builder = builder.at(i * 30 + 11).send_rec(expiring.clone(), None);
            if deliver_expired {
                builder = builder.at(i * 30 + 21).receive_rec(
                    default_queue_endpoint(),
                    50,
                    expiring,
                    None,
                );
            }
        }
        builder.build()
    }

    fn run(trace: &Trace, model: ExpiryModel) -> (Vec<Violation>, Vec<ExpiryBreakdown>) {
        let config = ExpiryConfig {
            model,
            ..ExpiryConfig::default()
        };
        let fitted = FittedModel::fit(
            trace,
            &config,
            DelayHistogram::new(Duration::from_millis(1), 1000),
        );
        check(trace, &config, &fitted)
    }

    #[test]
    fn correct_expiry_behaviour_passes_all_models() {
        let trace = paper_config_trace(false, false);
        for model in [
            ExpiryModel::SimpleMean,
            ExpiryModel::Histogram,
            ExpiryModel::Normal,
        ] {
            let (violations, breakdowns) = run(&trace, model);
            assert!(violations.is_empty(), "{model:?}: {violations:?}");
            assert_eq!(breakdowns.len(), 1);
            let b = &breakdowns[0];
            assert_eq!(b.expected_expired, 50);
            assert_eq!(b.expired_delivered, 0);
            assert_eq!(b.expected_live, 50);
            assert_eq!(b.live_delivered, 50);
        }
    }

    #[test]
    fn delivering_expired_messages_is_flagged() {
        let trace = paper_config_trace(true, false);
        let (violations, breakdowns) = run(&trace, ExpiryModel::SimpleMean);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::ExpiredMessagesDelivered { .. })));
        assert_eq!(breakdowns[0].expired_delivered, 50);
        assert!((breakdowns[0].expired_delivered_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dropping_live_messages_is_flagged() {
        let trace = paper_config_trace(false, true);
        let (violations, _) = run(&trace, ExpiryModel::SimpleMean);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LiveMessagesNotDelivered { .. })));
    }

    #[test]
    fn ttl_zero_always_expected_live() {
        let trace = paper_config_trace(false, false);
        let config = ExpiryConfig::default();
        let fitted = FittedModel::fit(
            &trace,
            &config,
            DelayHistogram::new(Duration::from_millis(1), 100),
        );
        assert!(fitted.expect_delivered(TimeToLive::FOREVER));
        assert!(!fitted.expect_delivered(TimeToLive::from_millis(1)));
        // A TTL comfortably above the ~10 ms mean delay is deliverable.
        assert!(fitted.expect_delivered(TimeToLive::from_millis(1000)));
    }

    #[test]
    fn histogram_model_uses_distribution_not_mean() {
        // Delays: 90 at 1 ms, 10 at 1000 ms → mean ≈ 101 ms. A TTL of
        // 5 ms is below the mean (simple model says expire) but 90% of
        // messages beat it (histogram model says deliver).
        let mut builder = TraceBuilder::new();
        for i in 0..100u64 {
            let record = rec(i + 1, 1, i);
            let delay = if i < 90 { 1 } else { 1000 };
            builder = builder
                .at(i * 2000)
                .send_rec(record.clone(), None)
                .at(i * 2000 + delay)
                .receive_rec(default_queue_endpoint(), 50, record, None);
        }
        let trace = builder.build();
        let config = ExpiryConfig::default();
        let simple = FittedModel::fit(
            &trace,
            &config,
            DelayHistogram::new(Duration::from_millis(1), 2000),
        );
        assert!(!matches!(config.model, ExpiryModel::Histogram));
        assert!(!simple.expect_delivered(TimeToLive::from_millis(5)));
        let histogram_config = ExpiryConfig {
            model: ExpiryModel::Histogram,
            ..config
        };
        let fitted = FittedModel::fit(
            &trace,
            &histogram_config,
            DelayHistogram::new(Duration::from_millis(1), 2000),
        );
        assert!(fitted.expect_delivered(TimeToLive::from_millis(5)));
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn subscription_only_covers_its_lifetime() {
        use jmst_api::id::ConsumerId;
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let make = |message: u64, sequence: u64, ttl: u64| {
            let mut record = rec(message, 1, sequence);
            record.destination = Destination::topic("t");
            record.time_to_live = TimeToLive::from_millis(ttl);
            record
        };
        // Published before the subscription existed: a TTL-0 message that
        // was (correctly) never delivered.
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(make(1, 0, 0), None)
            .at(100)
            .consumer_created(60, sub.clone(), None)
            // In-lifetime traffic: one live delivered, one 1 ms TTL
            // suppressed.
            .at(200)
            .send_rec(make(2, 1, 0), None)
            .at(210)
            .receive_rec(sub.clone(), 60, make(2, 1, 0), None)
            .at(300)
            .send_rec(make(3, 2, 1), None)
            .build();
        let (violations, breakdowns) = run(&trace, ExpiryModel::SimpleMean);
        assert!(violations.is_empty(), "{violations:?}");
        let breakdown = &breakdowns[0];
        // The pre-subscription message is not counted at all.
        assert_eq!(breakdown.expected_live, 1);
        assert_eq!(breakdown.live_delivered, 1);
        assert_eq!(breakdown.expected_expired, 1);
    }

    #[test]
    fn empty_endpoints_produce_no_breakdown() {
        let (violations, breakdowns) = run(&TraceBuilder::new().build(), ExpiryModel::SimpleMean);
        assert!(violations.is_empty());
        assert!(breakdowns.is_empty());
    }
}
