//! Property 1 — Delivery Integrity: "for each consumer c and each message
//! m in c's Received Messages, m is also in the set Published Messages for
//! some producer p."

use crate::violation::Violation;
use jmst_store::table::TraceStore;

/// Checks delivery integrity over the whole trace.
///
/// A receive violates the property when its message id has no matching
/// *effective* send — either nobody ever sent it (a forged/corrupted
/// message) or it was sent only inside a transaction that did not commit
/// (in which case, per Definition 1, it was never sent).
pub fn check(store: &TraceStore) -> Vec<Violation> {
    let mut violations = Vec::new();
    for receive in store.effective_receives() {
        let effectively_sent = store
            .send_of(receive.record.message)
            .is_some_and(|send| store.send_is_effective(send));
        if !effectively_sent {
            violations.push(Violation::ReceivedButNeverSent {
                message: receive.record.message,
                consumer: receive.consumer,
                endpoint: receive.endpoint.clone(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_api::id::TxId;

    #[test]
    fn clean_trace_has_no_violations() {
        let trace = TraceBuilder::new().send(1, 1, 0).receive_q(1, 1, 0).build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn phantom_receive_is_flagged() {
        let trace = TraceBuilder::new().receive_q(99, 1, 0).build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::ReceivedButNeverSent { message, .. } if message.as_u64() == 99
        ));
    }

    #[test]
    fn receive_of_uncommitted_transactional_send_is_flagged() {
        // Sent in a transaction that never committed: per Definition 1 it
        // was never sent, so its delivery violates integrity.
        let trace = TraceBuilder::new()
            .send_tx(1, 1, 0, TxId::from_raw(7))
            .receive_q(1, 1, 0)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn receive_of_committed_transactional_send_is_clean() {
        let trace = TraceBuilder::new()
            .send_tx(1, 1, 0, TxId::from_raw(7))
            .commit(TxId::from_raw(7))
            .receive_q(1, 1, 0)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn rolled_back_receive_of_phantom_is_ignored() {
        // The receive itself is ineffective (its transaction rolled
        // back), so per Definition 2 it never happened.
        let trace = TraceBuilder::new()
            .receive_q_tx(99, 1, 0, TxId::from_raw(8))
            .rollback(TxId::from_raw(8))
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }
}
