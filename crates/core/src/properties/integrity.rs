//! Property 1 — Delivery Integrity: "for each consumer c and each message
//! m in c's Received Messages, m is also in the set Published Messages for
//! some producer p."
//!
//! Implemented as the incremental [`IntegrityChecker`]; the batch
//! [`check`] is a thin driver that feeds a whole trace through the same
//! core, so streaming and batch analysis share one implementation.

use crate::stream::{Resolved, TxResolver};
use crate::violation::Violation;
use jmst_api::destination::EndpointId;
use jmst_api::id::{ConsumerId, MessageId};
use jmst_store::event::{Event, EventKind};
use jmst_store::trace::Trace;
use std::collections::HashSet;
use std::mem;

/// Incremental delivery-integrity checker.
///
/// A receive violates the property when its message id has no matching
/// *effective* send — either nobody ever sent it (a forged/corrupted
/// message) or it was sent only inside a transaction that did not commit
/// (in which case, per Definition 1, it was never sent). Receives that
/// have no matching send *yet* stay pending: a transactional send is only
/// folded in at commit time, which may come after the delivery was
/// logged.
#[derive(Debug, Default)]
pub struct IntegrityChecker {
    resolver: TxResolver,
    sent: HashSet<MessageId>,
    pending: Vec<(MessageId, ConsumerId, EndpointId)>,
}

impl IntegrityChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw trace event to the checker.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        match &event.kind {
            EventKind::Send { record, .. } => {
                self.sent.insert(record.message);
            }
            EventKind::Receive {
                consumer,
                endpoint,
                record,
                ..
            } if !self.sent.contains(&record.message) => {
                self.pending
                    .push((record.message, *consumer, endpoint.clone()));
            }
            _ => {}
        }
    }

    /// Number of receives currently lacking any effective send. A later
    /// send may still excuse them, so this is a preview, not a verdict.
    pub fn unmatched(&self) -> usize {
        self.pending
            .iter()
            .filter(|(message, _, _)| !self.sent.contains(message))
            .count()
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.resolver.state_bytes()
            + self.sent.capacity() * mem::size_of::<MessageId>()
            + self.pending.capacity() * mem::size_of::<(MessageId, ConsumerId, EndpointId)>()
    }

    /// Finishes the check: every receive still lacking an effective send
    /// is a violation, in the order the receives became effective.
    pub fn finish(self) -> Vec<Violation> {
        let sent = self.sent;
        self.pending
            .into_iter()
            .filter(|(message, _, _)| !sent.contains(message))
            .map(
                |(message, consumer, endpoint)| Violation::ReceivedButNeverSent {
                    message,
                    consumer,
                    endpoint,
                },
            )
            .collect()
    }
}

/// Checks delivery integrity over a whole trace.
pub fn check(trace: &Trace) -> Vec<Violation> {
    let mut checker = IntegrityChecker::new();
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_api::id::TxId;

    #[test]
    fn clean_trace_has_no_violations() {
        let trace = TraceBuilder::new().send(1, 1, 0).receive_q(1, 1, 0).build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn phantom_receive_is_flagged() {
        let trace = TraceBuilder::new().receive_q(99, 1, 0).build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::ReceivedButNeverSent { message, .. } if message.as_u64() == 99
        ));
    }

    #[test]
    fn receive_of_uncommitted_transactional_send_is_flagged() {
        // Sent in a transaction that never committed: per Definition 1 it
        // was never sent, so its delivery violates integrity.
        let trace = TraceBuilder::new()
            .send_tx(1, 1, 0, TxId::from_raw(7))
            .receive_q(1, 1, 0)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn receive_of_committed_transactional_send_is_clean() {
        let trace = TraceBuilder::new()
            .send_tx(1, 1, 0, TxId::from_raw(7))
            .commit(TxId::from_raw(7))
            .receive_q(1, 1, 0)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn rolled_back_receive_of_phantom_is_ignored() {
        // The receive itself is ineffective (its transaction rolled
        // back), so per Definition 2 it never happened.
        let trace = TraceBuilder::new()
            .receive_q_tx(99, 1, 0, TxId::from_raw(8))
            .rollback(TxId::from_raw(8))
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn unmatched_previews_then_resolves() {
        let mut checker = IntegrityChecker::new();
        let trace = TraceBuilder::new().receive_q(1, 1, 0).send(1, 1, 0).build();
        let events: Vec<_> = trace.iter().cloned().collect();
        checker.observe(&events[0]);
        assert_eq!(checker.unmatched(), 1);
        checker.observe(&events[1]);
        assert_eq!(checker.unmatched(), 0);
        assert!(checker.finish().is_empty());
    }
}
