//! Duplicate-delivery check: each message is delivered at most once per
//! consumer group, unless every involved consumer runs in dups-ok
//! (lazy-acknowledge) mode, which the paper notes "may" deliver
//! duplicates.
//!
//! Redeliveries flagged by the provider (after rollback or session
//! recovery) are legitimate and do not count.

use crate::violation::Violation;
use jmst_api::destination::EndpointId;
use jmst_api::id::{ConsumerId, MessageId};
use jmst_api::modes::SessionMode;
use jmst_store::table::TraceStore;
use std::collections::HashMap;

/// Checks for duplicate deliveries across the whole trace.
pub fn check(store: &TraceStore) -> Vec<Violation> {
    let consumer_modes: HashMap<ConsumerId, SessionMode> = store
        .consumers()
        .iter()
        .map(|row| (row.consumer, row.session_mode))
        .collect();
    // (endpoint, message) -> (non-redelivery count, any non-dups-ok consumer involved)
    let mut deliveries: HashMap<(EndpointId, MessageId), (u64, bool)> = HashMap::new();
    for receive in store.effective_receives() {
        if receive.record.redelivered {
            continue;
        }
        let entry = deliveries
            .entry((receive.endpoint.clone(), receive.record.message))
            .or_insert((0, false));
        entry.0 += 1;
        // A consumer with no recorded lifecycle event is conservatively
        // treated as strict (not dups-ok).
        let strict = consumer_modes
            .get(&receive.consumer)
            .is_none_or(|mode| !mode.allows_duplicates());
        entry.1 |= strict;
    }
    let mut violations: Vec<Violation> = deliveries
        .into_iter()
        .filter(|(_, (count, strict))| *count > 1 && *strict)
        .map(
            |((endpoint, message), (count, _))| Violation::DuplicateDelivery {
                message,
                endpoint,
                deliveries: count,
            },
        )
        .collect();
    violations.sort_by_key(|violation| match violation {
        Violation::DuplicateDelivery { message, .. } => *message,
        _ => unreachable!("only duplicate violations produced here"),
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    #[test]
    fn single_delivery_passes() {
        let trace = TraceBuilder::new().send(1, 1, 0).receive_q(1, 1, 0).build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn double_delivery_is_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { deliveries: 2, .. }
        ));
    }

    #[test]
    fn marked_redelivery_is_legitimate() {
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn dups_ok_consumers_may_duplicate() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created_mode(50, endpoint.clone(), SessionMode::DupsOkAcknowledge)
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn mixed_consumers_stay_strict() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created_mode(50, endpoint.clone(), SessionMode::DupsOkAcknowledge)
            .consumer_created_mode(51, endpoint.clone(), SessionMode::AutoAcknowledge)
            .send(1, 1, 0)
            .receive_q_by(50, 1, 1, 0)
            .receive_q_by(51, 1, 1, 0)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn same_message_at_different_endpoints_is_fine() {
        // Pub/sub fan-out: the same message legitimately reaches several
        // subscriptions.
        use jmst_api::destination::{Destination, EndpointId};
        use jmst_api::id::ConsumerId;
        let sub_a = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let sub_b = EndpointId::non_durable("t".into(), ConsumerId::from_raw(61));
        let mut record = rec(1, 1, 0);
        record.destination = Destination::topic("t");
        let trace = TraceBuilder::new()
            .send_rec(record.clone(), None)
            .receive_rec(sub_a, 60, record.clone(), None)
            .receive_rec(sub_b, 61, record, None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn violations_are_sorted_by_message() {
        let trace = TraceBuilder::new()
            .send(5, 1, 0)
            .send(2, 1, 1)
            .receive_q(5, 1, 0)
            .receive_q(5, 1, 0)
            .receive_q(2, 1, 1)
            .receive_q(2, 1, 1)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 2);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { message, .. } if message.as_u64() == 2
        ));
    }
}
