//! Duplicate-delivery check: each message is delivered at most once per
//! consumer group, unless every involved consumer runs in dups-ok
//! (lazy-acknowledge) mode, which the paper notes "may" deliver
//! duplicates.
//!
//! Redeliveries flagged by the provider (after rollback or session
//! recovery) are legitimate **as long as the earlier delivery was never
//! acknowledged**: recovery of an unacknowledged session is exactly the
//! case JMS licenses. A redelivery that arrives *after* the original
//! delivery was settled by its session (an acknowledge, or a commit
//! acting as the transactional ack point) is a true duplicate and counts
//! like any other extra delivery.
//!
//! This module also hosts the bounded-redelivery check: when the broker
//! advertises a redelivery limit, no delivery may carry a
//! `delivery_count` beyond `bound + 1` — a poison message must be parked
//! on the dead-letter queue instead of being delivered again.

use crate::violation::Violation;
use jmst_api::destination::EndpointId;
use jmst_api::id::{ConsumerId, MessageId, SessionId};
use jmst_api::modes::SessionMode;
use jmst_api::time::Timestamp;
use jmst_store::table::TraceStore;
use std::collections::HashMap;

/// Checks for duplicate deliveries across the whole trace.
pub fn check(store: &TraceStore) -> Vec<Violation> {
    let consumer_modes: HashMap<ConsumerId, SessionMode> = store
        .consumers()
        .iter()
        .map(|row| (row.consumer, row.session_mode))
        .collect();
    let acks = store.acks();
    // (endpoint, message) -> (delivery count, any non-dups-ok consumer involved)
    let mut deliveries: HashMap<(EndpointId, MessageId), (u64, bool)> = HashMap::new();
    // (endpoint, message) -> (at, session) of each delivery seen so far,
    // for the redelivery-legitimacy test.
    let mut seen: HashMap<(EndpointId, MessageId), Vec<(Timestamp, SessionId)>> = HashMap::new();
    for receive in store.effective_receives() {
        let key = (receive.endpoint.clone(), receive.record.message);
        let prior = seen.entry(key.clone()).or_default();
        if receive.record.redelivered {
            // Legitimate iff no earlier delivery of this message here was
            // settled before this redelivery arrived: an ack by the
            // earlier delivery's session in [r0.at, r.at) settles r0.
            let settled_before = prior.iter().any(|&(r0_at, r0_session)| {
                acks.iter().any(|&(ack_at, ack_session)| {
                    ack_session == r0_session && r0_at <= ack_at && ack_at < receive.at
                })
            });
            prior.push((receive.at, receive.session));
            if !settled_before {
                continue;
            }
        } else {
            prior.push((receive.at, receive.session));
        }
        let entry = deliveries.entry(key).or_insert((0, false));
        entry.0 += 1;
        // A consumer with no recorded lifecycle event is conservatively
        // treated as strict (not dups-ok).
        let strict = consumer_modes
            .get(&receive.consumer)
            .is_none_or(|mode| !mode.allows_duplicates());
        entry.1 |= strict;
    }
    let mut violations: Vec<Violation> = deliveries
        .into_iter()
        .filter(|(_, (count, strict))| *count > 1 && *strict)
        .map(
            |((endpoint, message), (count, _))| Violation::DuplicateDelivery {
                message,
                endpoint,
                deliveries: count,
            },
        )
        .collect();
    violations.sort_by_key(|violation| match violation {
        Violation::DuplicateDelivery { message, .. } => *message,
        _ => unreachable!("only duplicate violations produced here"),
    });
    violations
}

/// Checks the bounded-redelivery property: no delivery may carry a
/// `delivery_count` above `bound + 1` (the first delivery plus at most
/// `bound` redeliveries). One violation is reported per
/// (end-point, message), carrying the worst count observed.
pub fn check_redelivery_bound(store: &TraceStore, bound: u32) -> Vec<Violation> {
    let mut worst: HashMap<(EndpointId, MessageId), u32> = HashMap::new();
    for receive in store.effective_receives() {
        let count = receive.record.delivery_count;
        if count == 0 {
            continue; // pre-delivery-count trace: nothing to judge
        }
        if count > bound + 1 {
            let entry = worst
                .entry((receive.endpoint.clone(), receive.record.message))
                .or_insert(0);
            *entry = (*entry).max(count);
        }
    }
    let mut violations: Vec<Violation> = worst
        .into_iter()
        .map(
            |((endpoint, message), delivery_count)| Violation::RedeliveryLimitExceeded {
                endpoint,
                message,
                delivery_count,
                bound,
            },
        )
        .collect();
    violations.sort_by_key(|violation| match violation {
        Violation::RedeliveryLimitExceeded { message, .. } => *message,
        _ => unreachable!("only redelivery violations produced here"),
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    #[test]
    fn single_delivery_passes() {
        let trace = TraceBuilder::new().send(1, 1, 0).receive_q(1, 1, 0).build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn double_delivery_is_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { deliveries: 2, .. }
        ));
    }

    #[test]
    fn marked_redelivery_is_legitimate() {
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn redelivery_after_ack_is_a_duplicate() {
        // The first delivery was acknowledged, so the provider had no
        // license to deliver the message again — redelivered flag or not.
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        redelivered.delivery_count = 2;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .at(10)
            .receive_q(1, 1, 0)
            .at(20)
            .ack_by(50)
            .at(30)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { deliveries: 2, .. }
        ));
    }

    #[test]
    fn redelivery_with_outstanding_ack_stays_legitimate_despite_other_acks() {
        // An ack by a *different* session does not settle this delivery.
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .at(10)
            .receive_q(1, 1, 0)
            .at(20)
            .ack_by(99) // unrelated session
            .at(30)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn ack_after_the_redelivery_does_not_make_it_a_duplicate() {
        // The ack settles the redelivery itself, not the first attempt.
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .at(10)
            .receive_q(1, 1, 0)
            .at(20)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .at(30)
            .ack_by(50)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn dups_ok_consumers_may_duplicate() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created_mode(50, endpoint.clone(), SessionMode::DupsOkAcknowledge)
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn mixed_consumers_stay_strict() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created_mode(50, endpoint.clone(), SessionMode::DupsOkAcknowledge)
            .consumer_created_mode(51, endpoint.clone(), SessionMode::AutoAcknowledge)
            .send(1, 1, 0)
            .receive_q_by(50, 1, 1, 0)
            .receive_q_by(51, 1, 1, 0)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn same_message_at_different_endpoints_is_fine() {
        // Pub/sub fan-out: the same message legitimately reaches several
        // subscriptions.
        use jmst_api::destination::{Destination, EndpointId};
        use jmst_api::id::ConsumerId;
        let sub_a = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let sub_b = EndpointId::non_durable("t".into(), ConsumerId::from_raw(61));
        let mut record = rec(1, 1, 0);
        record.destination = Destination::topic("t");
        let trace = TraceBuilder::new()
            .send_rec(record.clone(), None)
            .receive_rec(sub_a, 60, record.clone(), None)
            .receive_rec(sub_b, 61, record, None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn violations_are_sorted_by_message() {
        let trace = TraceBuilder::new()
            .send(5, 1, 0)
            .send(2, 1, 1)
            .receive_q(5, 1, 0)
            .receive_q(5, 1, 0)
            .receive_q(2, 1, 1)
            .receive_q(2, 1, 1)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 2);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { message, .. } if message.as_u64() == 2
        ));
    }

    #[test]
    fn deliveries_within_the_bound_pass() {
        let mut second = rec(1, 1, 0);
        second.redelivered = true;
        second.delivery_count = 2;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, second, None)
            .build();
        // Bound 1: one redelivery on top of the first delivery is allowed.
        assert!(check_redelivery_bound(&TraceStore::build(&trace), 1).is_empty());
    }

    #[test]
    fn over_limit_delivery_is_flagged_once_with_worst_count() {
        let make = |count: u32| {
            let mut record = rec(1, 1, 0);
            record.redelivered = count > 1;
            record.delivery_count = count;
            record
        };
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, make(3), None)
            .receive_rec(default_queue_endpoint(), 50, make(4), None)
            .build();
        let violations = check_redelivery_bound(&TraceStore::build(&trace), 1);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RedeliveryLimitExceeded {
                delivery_count: 4,
                bound: 1,
                ..
            }
        ));
    }
}
