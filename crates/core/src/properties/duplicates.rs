//! Duplicate-delivery check: each message is delivered at most once per
//! consumer group, unless every involved consumer runs in dups-ok
//! (lazy-acknowledge) mode, which the paper notes "may" deliver
//! duplicates.
//!
//! Redeliveries flagged by the provider (after rollback or session
//! recovery) are legitimate **as long as the earlier delivery was never
//! acknowledged**: recovery of an unacknowledged session is exactly the
//! case JMS licenses. A redelivery that arrives *after* the original
//! delivery was settled by its session (an acknowledge, or a commit
//! acting as the transactional ack point) is a true duplicate and counts
//! like any other extra delivery.
//!
//! This module also hosts the bounded-redelivery check: when the broker
//! advertises a redelivery limit, no delivery may carry a
//! `delivery_count` beyond `bound + 1` — a poison message must be parked
//! on the dead-letter queue instead of being delivered again.
//!
//! Both checks are incremental ([`DuplicatesChecker`],
//! [`RedeliveryBoundChecker`]); the batch entry points drive whole traces
//! through the same cores. Settlement is resolved online: each delivery
//! registers on its session's waitlist, and the first later ack (or
//! commit) by that session stamps every waiting delivery's
//! `first_ack_after`, which is all a future redelivery needs to judge
//! legitimacy.

use crate::stream::{Resolved, TxResolver};
use crate::violation::Violation;
use jmst_api::destination::EndpointId;
use jmst_api::id::{ConsumerId, MessageId, SessionId};
use jmst_api::modes::SessionMode;
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind};
use jmst_store::trace::Trace;
use std::collections::{BTreeMap, HashMap};
use std::mem;

/// One observed delivery of a message at an end-point.
#[derive(Debug, Clone)]
struct Delivery {
    /// The first ack by the delivery's session at or after the delivery,
    /// once one has been observed.
    first_ack_after: Option<Timestamp>,
}

/// Per-(message, end-point) delivery accounting.
#[derive(Debug, Clone, Default)]
struct Tally {
    /// Deliveries that count toward the duplicate verdict.
    counted: u64,
    /// Consumers involved in counted deliveries (tiny in practice).
    consumers: Vec<ConsumerId>,
    /// Every delivery seen, for the redelivery-legitimacy test.
    seen: Vec<Delivery>,
    /// Whether this tally already contributed to the live preview.
    previewed: bool,
}

/// A delivery tally's identity: the message at a concrete endpoint.
type TallyKey = (MessageId, EndpointId);

/// Incremental duplicate-delivery checker.
#[derive(Debug, Default)]
pub struct DuplicatesChecker {
    resolver: TxResolver,
    consumer_modes: HashMap<ConsumerId, SessionMode>,
    tallies: BTreeMap<TallyKey, Tally>,
    /// Deliveries awaiting their session's next ack, as (tally key,
    /// index into `Tally::seen`).
    waitlist: HashMap<SessionId, Vec<(TallyKey, usize)>>,
    preview: usize,
}

impl DuplicatesChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw trace event to the checker.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn settle_session(&mut self, session: SessionId, at: Timestamp) {
        let Some(waiting) = self.waitlist.remove(&session) else {
            return;
        };
        for (key, index) in waiting {
            if let Some(tally) = self.tallies.get_mut(&key) {
                if let Some(delivery) = tally.seen.get_mut(index) {
                    delivery.first_ack_after.get_or_insert(at);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        match &event.kind {
            EventKind::ConsumerCreated {
                consumer,
                session_mode,
                ..
            } => {
                // Last lifecycle event wins, as in the relational view.
                self.consumer_modes.insert(*consumer, *session_mode);
            }
            EventKind::Acknowledge { session } | EventKind::Commit { session, .. } => {
                self.settle_session(*session, event.at);
            }
            EventKind::Receive {
                consumer,
                endpoint,
                record,
                session,
                ..
            } => {
                let key = (record.message, endpoint.clone());
                let tally = self.tallies.entry(key.clone()).or_default();
                let counts = if record.redelivered {
                    // Legitimate iff no earlier delivery of this message
                    // here was settled before this redelivery arrived.
                    tally
                        .seen
                        .iter()
                        .any(|d| d.first_ack_after.is_some_and(|ack| ack < event.at))
                } else {
                    true
                };
                let index = tally.seen.len();
                tally.seen.push(Delivery {
                    first_ack_after: None,
                });
                if counts {
                    tally.counted += 1;
                    if !tally.consumers.contains(consumer) {
                        tally.consumers.push(*consumer);
                    }
                    if tally.counted > 1 && !tally.previewed {
                        // Preview with the modes known so far; the final
                        // verdict re-judges with the whole trace's modes.
                        let strict = tally.consumers.iter().any(|c| {
                            self.consumer_modes
                                .get(c)
                                .is_none_or(|mode| !mode.allows_duplicates())
                        });
                        if strict {
                            tally.previewed = true;
                            self.preview += 1;
                        }
                    }
                }
                self.waitlist
                    .entry(*session)
                    .or_default()
                    .push((key, index));
            }
            _ => {}
        }
    }

    /// Number of duplicate deliveries detected so far (a live preview;
    /// the authoritative verdict is [`DuplicatesChecker::finish`]).
    pub fn violations_so_far(&self) -> usize {
        self.preview
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        let per_tally = mem::size_of::<(MessageId, EndpointId)>() + mem::size_of::<Tally>();
        let deliveries: usize = self
            .tallies
            .values()
            .map(|tally| tally.seen.capacity() * mem::size_of::<Delivery>())
            .sum();
        let waiting: usize = self
            .waitlist
            .values()
            .map(|v| v.capacity() * mem::size_of::<((MessageId, EndpointId), usize)>())
            .sum();
        self.resolver.state_bytes()
            + self.tallies.len() * per_tally
            + deliveries
            + waiting
            + self.consumer_modes.capacity()
                * (mem::size_of::<ConsumerId>() + mem::size_of::<SessionMode>())
    }

    /// Finishes the check and returns the violations, sorted by message.
    ///
    /// A consumer with no recorded lifecycle event is conservatively
    /// treated as strict (not dups-ok).
    pub fn finish(self) -> Vec<Violation> {
        let modes = self.consumer_modes;
        self.tallies
            .into_iter()
            .filter(|(_, tally)| {
                tally.counted > 1
                    && tally.consumers.iter().any(|consumer| {
                        modes
                            .get(consumer)
                            .is_none_or(|mode| !mode.allows_duplicates())
                    })
            })
            .map(
                |((message, endpoint), tally)| Violation::DuplicateDelivery {
                    message,
                    endpoint,
                    deliveries: tally.counted,
                },
            )
            .collect()
    }
}

/// Checks for duplicate deliveries across a whole trace.
pub fn check(trace: &Trace) -> Vec<Violation> {
    let mut checker = DuplicatesChecker::new();
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

/// Incremental bounded-redelivery checker: no delivery may carry a
/// `delivery_count` above `bound + 1` (the first delivery plus at most
/// `bound` redeliveries).
#[derive(Debug)]
pub struct RedeliveryBoundChecker {
    resolver: TxResolver,
    bound: u32,
    worst: BTreeMap<(MessageId, EndpointId), u32>,
}

impl RedeliveryBoundChecker {
    /// Creates a checker for the given redelivery bound.
    pub fn new(bound: u32) -> Self {
        Self {
            resolver: TxResolver::new(),
            bound,
            worst: BTreeMap::new(),
        }
    }

    /// Feeds one raw trace event to the checker. Over-limit deliveries
    /// are detected immediately.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        let EventKind::Receive {
            endpoint, record, ..
        } = &event.kind
        else {
            return;
        };
        let count = record.delivery_count;
        if count == 0 {
            return; // pre-delivery-count trace: nothing to judge
        }
        if count > self.bound + 1 {
            let entry = self
                .worst
                .entry((record.message, endpoint.clone()))
                .or_insert(0);
            *entry = (*entry).max(count);
        }
    }

    /// Number of over-limit (end-point, message) pairs so far.
    pub fn violations_so_far(&self) -> usize {
        self.worst.len()
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.resolver.state_bytes()
            + self.worst.len() * (mem::size_of::<(MessageId, EndpointId)>() + mem::size_of::<u32>())
    }

    /// Finishes the check: one violation per (end-point, message) with
    /// the worst observed count, sorted by message.
    pub fn finish(self) -> Vec<Violation> {
        let bound = self.bound;
        self.worst
            .into_iter()
            .map(
                |((message, endpoint), delivery_count)| Violation::RedeliveryLimitExceeded {
                    endpoint,
                    message,
                    delivery_count,
                    bound,
                },
            )
            .collect()
    }
}

/// Checks the bounded-redelivery property over a whole trace.
pub fn check_redelivery_bound(trace: &Trace, bound: u32) -> Vec<Violation> {
    let mut checker = RedeliveryBoundChecker::new(bound);
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;

    #[test]
    fn single_delivery_passes() {
        let trace = TraceBuilder::new().send(1, 1, 0).receive_q(1, 1, 0).build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn double_delivery_is_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { deliveries: 2, .. }
        ));
    }

    #[test]
    fn marked_redelivery_is_legitimate() {
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn redelivery_after_ack_is_a_duplicate() {
        // The first delivery was acknowledged, so the provider had no
        // license to deliver the message again — redelivered flag or not.
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        redelivered.delivery_count = 2;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .at(10)
            .receive_q(1, 1, 0)
            .at(20)
            .ack_by(50)
            .at(30)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { deliveries: 2, .. }
        ));
    }

    #[test]
    fn redelivery_with_outstanding_ack_stays_legitimate_despite_other_acks() {
        // An ack by a *different* session does not settle this delivery.
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .at(10)
            .receive_q(1, 1, 0)
            .at(20)
            .ack_by(99) // unrelated session
            .at(30)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn ack_after_the_redelivery_does_not_make_it_a_duplicate() {
        // The ack settles the redelivery itself, not the first attempt.
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .at(10)
            .receive_q(1, 1, 0)
            .at(20)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .at(30)
            .ack_by(50)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn dups_ok_consumers_may_duplicate() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created_mode(50, endpoint.clone(), SessionMode::DupsOkAcknowledge)
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn mixed_consumers_stay_strict() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created_mode(50, endpoint.clone(), SessionMode::DupsOkAcknowledge)
            .consumer_created_mode(51, endpoint.clone(), SessionMode::AutoAcknowledge)
            .send(1, 1, 0)
            .receive_q_by(50, 1, 1, 0)
            .receive_q_by(51, 1, 1, 0)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn same_message_at_different_endpoints_is_fine() {
        // Pub/sub fan-out: the same message legitimately reaches several
        // subscriptions.
        use jmst_api::destination::{Destination, EndpointId};
        use jmst_api::id::ConsumerId;
        let sub_a = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let sub_b = EndpointId::non_durable("t".into(), ConsumerId::from_raw(61));
        let mut record = rec(1, 1, 0);
        record.destination = Destination::topic("t");
        let trace = TraceBuilder::new()
            .send_rec(record.clone(), None)
            .receive_rec(sub_a, 60, record.clone(), None)
            .receive_rec(sub_b, 61, record, None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn violations_are_sorted_by_message() {
        let trace = TraceBuilder::new()
            .send(5, 1, 0)
            .send(2, 1, 1)
            .receive_q(5, 1, 0)
            .receive_q(5, 1, 0)
            .receive_q(2, 1, 1)
            .receive_q(2, 1, 1)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 2);
        assert!(matches!(
            &violations[0],
            Violation::DuplicateDelivery { message, .. } if message.as_u64() == 2
        ));
    }

    #[test]
    fn preview_counts_duplicates_as_they_happen() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let mut checker = DuplicatesChecker::new();
        let mut live = 0;
        for event in &trace {
            checker.observe(event);
            live = live.max(checker.violations_so_far());
        }
        assert_eq!(live, 1);
        assert_eq!(checker.finish().len(), 1);
    }

    #[test]
    fn deliveries_within_the_bound_pass() {
        let mut second = rec(1, 1, 0);
        second.redelivered = true;
        second.delivery_count = 2;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, second, None)
            .build();
        // Bound 1: one redelivery on top of the first delivery is allowed.
        assert!(check_redelivery_bound(&trace, 1).is_empty());
    }

    #[test]
    fn over_limit_delivery_is_flagged_once_with_worst_count() {
        let make = |count: u32| {
            let mut record = rec(1, 1, 0);
            record.redelivered = count > 1;
            record.delivery_count = count;
            record
        };
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_rec(default_queue_endpoint(), 50, make(3), None)
            .receive_rec(default_queue_endpoint(), 50, make(4), None)
            .build();
        let violations = check_redelivery_bound(&trace, 1);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RedeliveryLimitExceeded {
                delivery_count: 4,
                bound: 1,
                ..
            }
        ));
    }
}
