//! Property 2 — Required Messages: the first→next→last closure per
//! (producer, end-point) must be a subset of the messages received at the
//! end-point.

use crate::defs;
use crate::violation::Violation;
use jmst_api::id::MessageId;
use jmst_store::table::TraceStore;
use std::collections::HashSet;

/// Checks the required-message property for every end-point in the trace.
///
/// Conventions on top of the paper's definitions (documented in
/// DESIGN.md):
///
/// * messages with a finite time-to-live are excluded — their absence is
///   judged by Property 5's expectation model, not by Property 2;
/// * an end-point whose consumers used differing selectors is skipped
///   (its required set is not well defined from the trace);
/// * messages a subscription's selector rejects are not required at it;
/// * messages the broker parked on a dead-letter queue are accounted
///   for, not lost — their non-delivery is judged by the
///   bounded-redelivery check instead.
pub fn check(store: &TraceStore) -> Vec<Violation> {
    let mut violations = Vec::new();
    let sends_by_producer = defs::sends_by_producer(store);
    let endpoints: Vec<_> = store.endpoints().cloned().collect();
    for endpoint in endpoints {
        let selector = match defs::endpoint_selector(store, &endpoint) {
            Ok(selector) => selector,
            Err(defs::MixedSelectors) => continue,
        };
        let endpoint_receives = defs::receives_at(store, &endpoint);
        let received_ids: HashSet<MessageId> = endpoint_receives
            .iter()
            .map(|row| row.record.message)
            .collect();
        let close_bound = defs::close_bound(store, &endpoint);
        for (&producer, all_sends) in &sends_by_producer {
            // Sends that could reach this end-point at all (Definition 7).
            let relevant: Vec<_> = all_sends
                .iter()
                .copied()
                .filter(|row| defs::possibly_received(&endpoint, selector.as_ref(), &row.record))
                .collect();
            let Some(window) = defs::first_last(
                &endpoint,
                &relevant,
                &endpoint_receives,
                producer,
                close_bound,
            ) else {
                continue;
            };
            for send in &relevant {
                let sequence = send.record.sequence;
                if sequence < window.first_sequence || sequence > window.last_sequence {
                    continue;
                }
                if !send.record.time_to_live.is_forever() {
                    continue; // judged by Property 5
                }
                if store.is_dead_lettered(send.record.message) {
                    continue; // parked on a DLQ: accounted for, not lost
                }
                if !received_ids.contains(&send.record.message) {
                    violations.push(Violation::RequiredMessageMissing {
                        endpoint: endpoint.clone(),
                        producer,
                        message: send.record.message,
                        sequence,
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_api::destination::{Destination, EndpointId};
    use jmst_api::id::{ConsumerId, TxId};
    use jmst_api::modes::TimeToLive;

    #[test]
    fn complete_queue_delivery_passes() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(1, 1, 0)
            .receive_q(2, 1, 1)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn gap_in_queue_delivery_is_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RequiredMessageMissing { message, sequence: 1, .. }
                if message.as_u64() == 2
        ));
    }

    #[test]
    fn queue_requires_unreceived_head_and_everything_after() {
        // Nothing was ever received from this producer on the queue: per
        // the paper's recursion, every send is required.
        let trace = TraceBuilder::new().send(1, 1, 0).send(2, 1, 1).build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn tail_after_last_received_message_is_not_required() {
        // Per Definition 5, the requirement stops at the last message
        // received before the last close — in-flight tail messages are
        // excused by delivery latency.
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created(50, endpoint.clone(), None)
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .send(2, 1, 1) // sent but never received
            .consumer_closed(50, endpoint)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn subscription_latency_excuses_missed_head() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let mut head = rec(1, 1, 0);
        head.destination = Destination::topic("t");
        let mut second = rec(2, 1, 1);
        second.destination = Destination::topic("t");
        let mut third = rec(3, 1, 2);
        third.destination = Destination::topic("t");
        // Head published before the subscription propagated; only seq 1
        // and seq 2 arrive. No violation: first message = seq 1.
        let trace = TraceBuilder::new()
            .send_rec(head, None)
            .send_rec(second.clone(), None)
            .send_rec(third.clone(), None)
            .receive_rec(sub.clone(), 60, second, None)
            .receive_rec(sub, 60, third, None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn subscription_gap_between_first_and_last_is_flagged() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let make = |message: u64, sequence: u64| {
            let mut record = rec(message, 1, sequence);
            record.destination = Destination::topic("t");
            record
        };
        let trace = TraceBuilder::new()
            .send_rec(make(1, 0), None)
            .send_rec(make(2, 1), None)
            .send_rec(make(3, 2), None)
            .receive_rec(sub.clone(), 60, make(1, 0), None)
            .receive_rec(sub, 60, make(3, 2), None)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RequiredMessageMissing { sequence: 1, .. }
        ));
    }

    #[test]
    fn uncommitted_sends_are_not_required() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send_tx(2, 1, 1, TxId::from_raw(9)) // never commits
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn finite_ttl_messages_are_not_required() {
        let mut expiring = rec(2, 1, 1);
        expiring.time_to_live = TimeToLive::from_millis(1);
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send_rec(expiring, None)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn selector_rejected_messages_are_not_required() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let make = |message: u64, sequence: u64, priority: u8| {
            let mut record = rec(message, 1, sequence);
            record.destination = Destination::topic("t");
            record.priority = jmst_api::modes::Priority::new(priority).unwrap();
            record
        };
        let trace = TraceBuilder::new()
            .consumer_created(60, sub.clone(), Some("JMSPriority >= 5"))
            .send_rec(make(1, 0, 9), None)
            .send_rec(make(2, 1, 0), None) // filtered out by the selector
            .send_rec(make(3, 2, 9), None)
            .receive_rec(sub.clone(), 60, make(1, 0, 9), None)
            .receive_rec(sub, 60, make(3, 2, 9), None)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn mixed_selector_endpoints_are_skipped() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created(50, endpoint.clone(), Some("a = 1"))
            .consumer_created(51, endpoint, None)
            .send(1, 1, 0)
            .build();
        // Normally the unreceived queue send would violate; the mixed
        // selectors make the required set undefined, so no violation.
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn dead_lettered_messages_are_accounted_for() {
        // Seq 1 never reaches the consumer because the broker parked it
        // on the DLQ after exhausting its redelivery bound: not a P2
        // loss.
        let mut parked = rec(2, 1, 1);
        parked.redelivered = true;
        parked.delivery_count = 3;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .dead_lettered(parked, "DLQ.q")
            .receive_q(3, 1, 2)
            .build();
        assert!(check(&TraceStore::build(&trace)).is_empty());
    }

    #[test]
    fn crash_losing_persistent_messages_is_flagged() {
        // The crash-recovery experiment: persistent messages sent before
        // a crash must still be delivered after recovery. When a lossy
        // broker drops them, later post-recovery traffic exposes the gap
        // (a pure tail loss is excused by Definition 5 — the drain after
        // recovery always produces post-gap receives in practice).
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1) // lost in the crash
            .send(3, 1, 2) // sent after recovery
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        let violations = check(&TraceStore::build(&trace));
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RequiredMessageMissing { sequence: 1, .. }
        ));
    }
}
