//! Property 2 — Required Messages: the first→next→last closure per
//! (producer, end-point) must be a subset of the messages received at the
//! end-point.
//!
//! The incremental [`RequiredChecker`] exploits that for queues the
//! Definition 6 *first* bound is vacuous (the first message is the
//! producer's minimum relevant sequence, which bounds every other
//! relevant sequence from below), so queue state reduces to the set of
//! still-undelivered forever-lived sends plus scalar folds of the timely
//! (received before the last close, Definition 5) receive sequences.
//! Subscriptions retain the topic send log: their first/last window can
//! only be evaluated once the stream ends.

use crate::defs;
use crate::stream::{Resolved, SelectorState, SelectorTracker, TxResolver};
use crate::violation::Violation;
use jmst_api::destination::{Destination, EndpointId};
use jmst_api::id::{MessageId, ProducerId};
use jmst_api::selector::Selector;
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind, MessageRecord};
use jmst_store::trace::Trace;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::mem;

/// Scalar fold of Definition 5's "received before the last close"
/// qualifier: the maximum receive sequence at or before the latest close
/// seen so far (`timely_max`), and the maximum after it (`since_max`),
/// folded together whenever a later close arrives.
#[derive(Debug, Default, Clone, Copy)]
struct TimelyFold {
    timely_max: Option<u64>,
    since_max: Option<u64>,
}

impl TimelyFold {
    fn note(&mut self, sequence: u64, at: Timestamp, last_close: Option<Timestamp>) {
        let slot = match last_close {
            // Canonical order puts every receive streamed before a close
            // at or before the close's timestamp; only replayed
            // transactional receives can arrive late with an old `at`.
            Some(close) if at <= close => &mut self.timely_max,
            _ => &mut self.since_max,
        };
        *slot = Some(slot.map_or(sequence, |max| max.max(sequence)));
    }

    /// A later close makes everything seen so far timely.
    fn fold(&mut self) {
        self.timely_max = self.timely_max.max(self.since_max.take());
    }

    /// The Definition 5 maximum under the final close bound: if the
    /// end-point never closed the bound is the end of the trace, so every
    /// receive was timely.
    fn resolve(&self, ever_closed: bool) -> Option<u64> {
        if ever_closed {
            self.timely_max
        } else {
            self.timely_max.max(self.since_max)
        }
    }
}

/// Per-queue state: bounded by the number of *undelivered* messages.
#[derive(Debug, Default)]
struct QueueRequired {
    tracker: SelectorTracker,
    /// Parsed selector once the tracker is uniform on one text. Applied
    /// prospectively to sends; on the transition into a selector the
    /// already-pending sends are re-filtered exactly (their records are
    /// retained).
    selector: Option<Selector>,
    /// (producer, sequence) → record of an unreceived, forever-lived
    /// relevant send.
    pending: BTreeMap<(ProducerId, u64), MessageRecord>,
    /// Receives seen before (or without) their send.
    early: HashSet<(ProducerId, u64)>,
    /// Minimum relevant sequence per producer (Definition 6 *first*).
    first_sent: HashMap<ProducerId, u64>,
    timely: HashMap<ProducerId, TimelyFold>,
    last_close: Option<Timestamp>,
}

/// Per-subscription state; the topic send log lives on the checker.
#[derive(Debug, Default)]
struct SubRequired {
    tracker: SelectorTracker,
    received: HashSet<MessageId>,
    /// Minimum received sequence per producer (Definition 6 *first* for
    /// subscriptions: the first message of the producer a subscriber saw).
    first_received: HashMap<ProducerId, u64>,
    timely: HashMap<ProducerId, TimelyFold>,
    last_close: Option<Timestamp>,
}

/// Incremental required-messages checker.
///
/// Conventions on top of the paper's definitions (documented in
/// DESIGN.md):
///
/// * messages with a finite time-to-live are excluded — their absence is
///   judged by Property 5's expectation model, not by Property 2;
/// * an end-point whose consumers used differing selectors is skipped
///   (its required set is not well defined from the trace);
/// * messages a subscription's selector rejects are not required at it;
/// * messages the broker parked on a dead-letter queue are accounted
///   for, not lost — their non-delivery is judged by the
///   bounded-redelivery check instead.
#[derive(Debug, Default)]
pub struct RequiredChecker {
    resolver: TxResolver,
    queues: BTreeMap<EndpointId, QueueRequired>,
    subs: BTreeMap<EndpointId, SubRequired>,
    /// Effective sends to topic destinations, replayed per subscription
    /// end-point in `finish`.
    topic_sends: Vec<MessageRecord>,
    dead_lettered: HashSet<MessageId>,
}

impl RequiredChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw trace event to the checker.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        match &event.kind {
            EventKind::ConsumerCreated {
                endpoint, selector, ..
            } => match endpoint {
                EndpointId::Queue(_) => {
                    let state = self.queues.entry(endpoint.clone()).or_default();
                    if state.tracker.note(selector.as_deref()) {
                        match state.tracker.state() {
                            SelectorState::Uniform(Some(text)) => {
                                let parsed = Selector::parse(&text)
                                    .expect("selector accepted by the provider must parse");
                                state.pending.retain(|_, record| {
                                    defs::selector_accepts_record(&parsed, record)
                                });
                                state.selector = Some(parsed);
                            }
                            SelectorState::Mixed => {
                                // The end-point is skipped from here on;
                                // free its per-message state.
                                state.selector = None;
                                state.pending.clear();
                                state.early.clear();
                                state.first_sent.clear();
                                state.timely.clear();
                            }
                            _ => state.selector = None,
                        }
                    }
                }
                _ => {
                    let state = self.subs.entry(endpoint.clone()).or_default();
                    state.tracker.note(selector.as_deref());
                }
            },
            EventKind::ConsumerClosed { endpoint, .. } => match endpoint {
                EndpointId::Queue(_) => {
                    let state = self.queues.entry(endpoint.clone()).or_default();
                    state.last_close =
                        Some(state.last_close.map_or(event.at, |last| last.max(event.at)));
                    for fold in state.timely.values_mut() {
                        fold.fold();
                    }
                }
                _ => {
                    let state = self.subs.entry(endpoint.clone()).or_default();
                    state.last_close =
                        Some(state.last_close.map_or(event.at, |last| last.max(event.at)));
                    for fold in state.timely.values_mut() {
                        fold.fold();
                    }
                }
            },
            EventKind::Send { record, .. } => match &record.destination {
                Destination::Queue(name) => {
                    let endpoint = EndpointId::for_queue(name.clone());
                    let state = self.queues.entry(endpoint).or_default();
                    if state.tracker.is_mixed() {
                        return;
                    }
                    if let Some(selector) = &state.selector {
                        if !defs::selector_accepts_record(selector, record) {
                            return;
                        }
                    }
                    let first = state.first_sent.entry(record.producer).or_insert(u64::MAX);
                    *first = (*first).min(record.sequence);
                    if !record.time_to_live.is_forever() {
                        return; // judged by Property 5
                    }
                    let key = (record.producer, record.sequence);
                    if !state.early.remove(&key) {
                        state.pending.insert(key, record.clone());
                    }
                }
                Destination::Topic(_) => self.topic_sends.push(record.clone()),
            },
            EventKind::Receive {
                endpoint, record, ..
            } => {
                if matches!(endpoint, EndpointId::Queue(_)) {
                    let state = self.queues.entry(endpoint.clone()).or_default();
                    let key = (record.producer, record.sequence);
                    if state.pending.remove(&key).is_none() {
                        state.early.insert(key);
                    }
                    state.timely.entry(record.producer).or_default().note(
                        record.sequence,
                        event.at,
                        state.last_close,
                    );
                } else {
                    let state = self.subs.entry(endpoint.clone()).or_default();
                    state.received.insert(record.message);
                    let first = state
                        .first_received
                        .entry(record.producer)
                        .or_insert(u64::MAX);
                    *first = (*first).min(record.sequence);
                    state.timely.entry(record.producer).or_default().note(
                        record.sequence,
                        event.at,
                        state.last_close,
                    );
                }
            }
            EventKind::DeadLettered { record, .. } => {
                self.dead_lettered.insert(record.message);
            }
            _ => {}
        }
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        let queue_bytes: usize = self
            .queues
            .values()
            .map(|q| {
                q.pending.len() * mem::size_of::<((ProducerId, u64), MessageRecord)>()
                    + q.early.capacity() * mem::size_of::<(ProducerId, u64)>()
                    + (q.first_sent.capacity() + q.timely.capacity())
                        * mem::size_of::<(ProducerId, TimelyFold)>()
            })
            .sum();
        let sub_bytes: usize = self
            .subs
            .values()
            .map(|s| {
                s.received.capacity() * mem::size_of::<MessageId>()
                    + (s.first_received.capacity() + s.timely.capacity())
                        * mem::size_of::<(ProducerId, TimelyFold)>()
            })
            .sum();
        self.resolver.state_bytes()
            + queue_bytes
            + sub_bytes
            + self.topic_sends.capacity() * mem::size_of::<MessageRecord>()
            + self.dead_lettered.capacity() * mem::size_of::<MessageId>()
    }

    /// Finishes the check, returning violations in (end-point, producer,
    /// sequence) order.
    pub fn finish(self) -> Vec<Violation> {
        let mut violations = Vec::new();

        // EndpointId's derived order puts queues before subscriptions, so
        // emitting queues first keeps the end-point order sorted overall.
        for (endpoint, state) in &self.queues {
            if state.tracker.is_mixed() {
                continue;
            }
            let ever_closed = state.last_close.is_some();
            for ((producer, sequence), record) in &state.pending {
                let Some(&first) = state.first_sent.get(producer) else {
                    continue;
                };
                let timely = state
                    .timely
                    .get(producer)
                    .and_then(|fold| fold.resolve(ever_closed));
                // Definition 5 with the queue convention: no timely
                // receive means the requirement never terminates.
                let last = timely.map_or(u64::MAX, |max| max.max(first));
                if *sequence < first || *sequence > last {
                    continue;
                }
                if self.dead_lettered.contains(&record.message) {
                    continue; // parked on a DLQ: accounted for, not lost
                }
                violations.push(Violation::RequiredMessageMissing {
                    endpoint: endpoint.clone(),
                    producer: *producer,
                    message: record.message,
                    sequence: *sequence,
                });
            }
        }

        let mut by_producer: BTreeMap<ProducerId, Vec<&MessageRecord>> = BTreeMap::new();
        for record in &self.topic_sends {
            by_producer.entry(record.producer).or_default().push(record);
        }
        for sends in by_producer.values_mut() {
            sends.sort_by_key(|record| record.sequence);
        }
        for (endpoint, state) in &self.subs {
            if state.tracker.is_mixed() {
                continue;
            }
            let selector = match state.tracker.state() {
                SelectorState::Uniform(Some(text)) => Some(
                    Selector::parse(&text).expect("selector accepted by the provider must parse"),
                ),
                _ => None,
            };
            let ever_closed = state.last_close.is_some();
            for (producer, sends) in &by_producer {
                let Some(&first) = state.first_received.get(producer) else {
                    // Subscription latency excuses a producer a subscriber
                    // never heard from.
                    continue;
                };
                let timely = state
                    .timely
                    .get(producer)
                    .and_then(|fold| fold.resolve(ever_closed));
                // A subscription whose only receives came after the close
                // requires nothing past the first message.
                let last = timely.map_or(first, |max| max.max(first));
                for record in sends {
                    if !defs::possibly_received(endpoint, selector.as_ref(), record) {
                        continue;
                    }
                    let sequence = record.sequence;
                    if sequence < first || sequence > last {
                        continue;
                    }
                    if !record.time_to_live.is_forever() {
                        continue; // judged by Property 5
                    }
                    if self.dead_lettered.contains(&record.message) {
                        continue;
                    }
                    if !state.received.contains(&record.message) {
                        violations.push(Violation::RequiredMessageMissing {
                            endpoint: endpoint.clone(),
                            producer: *producer,
                            message: record.message,
                            sequence,
                        });
                    }
                }
            }
        }
        violations
    }
}

/// Checks the required-message property for every end-point in the trace.
pub fn check(trace: &Trace) -> Vec<Violation> {
    let mut checker = RequiredChecker::new();
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_api::id::{ConsumerId, TxId};
    use jmst_api::modes::TimeToLive;

    #[test]
    fn complete_queue_delivery_passes() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(1, 1, 0)
            .receive_q(2, 1, 1)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn gap_in_queue_delivery_is_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RequiredMessageMissing { message, sequence: 1, .. }
                if message.as_u64() == 2
        ));
    }

    #[test]
    fn queue_requires_unreceived_head_and_everything_after() {
        // Nothing was ever received from this producer on the queue: per
        // the paper's recursion, every send is required.
        let trace = TraceBuilder::new().send(1, 1, 0).send(2, 1, 1).build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn tail_after_last_received_message_is_not_required() {
        // Per Definition 5, the requirement stops at the last message
        // received before the last close — in-flight tail messages are
        // excused by delivery latency.
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created(50, endpoint.clone(), None)
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .send(2, 1, 1) // sent but never received
            .consumer_closed(50, endpoint)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn subscription_latency_excuses_missed_head() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let mut head = rec(1, 1, 0);
        head.destination = Destination::topic("t");
        let mut second = rec(2, 1, 1);
        second.destination = Destination::topic("t");
        let mut third = rec(3, 1, 2);
        third.destination = Destination::topic("t");
        // Head published before the subscription propagated; only seq 1
        // and seq 2 arrive. No violation: first message = seq 1.
        let trace = TraceBuilder::new()
            .send_rec(head, None)
            .send_rec(second.clone(), None)
            .send_rec(third.clone(), None)
            .receive_rec(sub.clone(), 60, second, None)
            .receive_rec(sub, 60, third, None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn subscription_gap_between_first_and_last_is_flagged() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let make = |message: u64, sequence: u64| {
            let mut record = rec(message, 1, sequence);
            record.destination = Destination::topic("t");
            record
        };
        let trace = TraceBuilder::new()
            .send_rec(make(1, 0), None)
            .send_rec(make(2, 1), None)
            .send_rec(make(3, 2), None)
            .receive_rec(sub.clone(), 60, make(1, 0), None)
            .receive_rec(sub, 60, make(3, 2), None)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RequiredMessageMissing { sequence: 1, .. }
        ));
    }

    #[test]
    fn uncommitted_sends_are_not_required() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send_tx(2, 1, 1, TxId::from_raw(9)) // never commits
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn finite_ttl_messages_are_not_required() {
        let mut expiring = rec(2, 1, 1);
        expiring.time_to_live = TimeToLive::from_millis(1);
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send_rec(expiring, None)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn selector_rejected_messages_are_not_required() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(60));
        let make = |message: u64, sequence: u64, priority: u8| {
            let mut record = rec(message, 1, sequence);
            record.destination = Destination::topic("t");
            record.priority = jmst_api::modes::Priority::new(priority).unwrap();
            record
        };
        let trace = TraceBuilder::new()
            .consumer_created(60, sub.clone(), Some("JMSPriority >= 5"))
            .send_rec(make(1, 0, 9), None)
            .send_rec(make(2, 1, 0), None) // filtered out by the selector
            .send_rec(make(3, 2, 9), None)
            .receive_rec(sub.clone(), 60, make(1, 0, 9), None)
            .receive_rec(sub, 60, make(3, 2, 9), None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn mixed_selector_endpoints_are_skipped() {
        let endpoint = default_queue_endpoint();
        let trace = TraceBuilder::new()
            .consumer_created(50, endpoint.clone(), Some("a = 1"))
            .consumer_created(51, endpoint, None)
            .send(1, 1, 0)
            .build();
        // Normally the unreceived queue send would violate; the mixed
        // selectors make the required set undefined, so no violation.
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn dead_lettered_messages_are_accounted_for() {
        // Seq 1 never reaches the consumer because the broker parked it
        // on the DLQ after exhausting its redelivery bound: not a P2
        // loss.
        let mut parked = rec(2, 1, 1);
        parked.redelivered = true;
        parked.delivery_count = 3;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .dead_lettered(parked, "DLQ.q")
            .receive_q(3, 1, 2)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn crash_losing_persistent_messages_is_flagged() {
        // The crash-recovery experiment: persistent messages sent before
        // a crash must still be delivered after recovery. When a lossy
        // broker drops them, later post-recovery traffic exposes the gap
        // (a pure tail loss is excused by Definition 5 — the drain after
        // recovery always produces post-gap receives in practice).
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1) // lost in the crash
            .send(3, 1, 2) // sent after recovery
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::RequiredMessageMissing { sequence: 1, .. }
        ));
    }

    #[test]
    fn selector_arriving_after_sends_refilters_pending() {
        // A selective consumer appears only after the sends: the pending
        // set is re-filtered so rejected messages stop being required.
        let endpoint = default_queue_endpoint();
        let make = |message: u64, sequence: u64, priority: u8| {
            let mut record = rec(message, 1, sequence);
            record.priority = jmst_api::modes::Priority::new(priority).unwrap();
            record
        };
        let trace = TraceBuilder::new()
            .send_rec(make(1, 0, 9), None)
            .send_rec(make(2, 1, 0), None) // rejected by the late selector
            .consumer_created(50, endpoint.clone(), Some("JMSPriority >= 5"))
            .receive_rec(endpoint, 50, make(1, 0, 9), None)
            .build();
        assert!(check(&trace).is_empty());
    }
}
