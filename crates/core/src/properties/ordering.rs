//! Property 3 — Message Ordering: messages from one producer with the
//! same priority and delivery mode (and destination) must be received in
//! send order; additionally, a persistent message must never overtake an
//! earlier non-persistent message from the same producer (the reverse is
//! permitted).
//!
//! The batch algorithm was already a single left-to-right pass, so the
//! incremental [`OrderingChecker`] is its direct restatement; the batch
//! [`check`] drives a whole trace through it.

use crate::stream::{Resolved, TxResolver};
use crate::violation::Violation;
use jmst_api::id::{ConsumerId, MessageId, ProducerId};
use jmst_api::modes::{DeliveryMode, Priority};
use jmst_store::event::{Event, EventKind};
use jmst_store::trace::Trace;
use std::collections::{HashMap, HashSet};
use std::mem;

#[derive(Debug, PartialEq, Eq, Hash, Clone)]
struct OrderKey {
    consumer: ConsumerId,
    producer: ProducerId,
    priority: Priority,
    mode: DeliveryMode,
}

#[derive(Debug, PartialEq, Eq, Hash, Clone)]
struct OvertakeKey {
    consumer: ConsumerId,
    producer: ProducerId,
    priority: Priority,
}

/// Incremental message-ordering checker.
///
/// Redelivered messages are exempt: after a rollback or session recovery
/// a message legitimately arrives later than messages that overtook it
/// while it was unacknowledged. Repeat deliveries of an id to the same
/// consumer are judged by the duplicate check, not here.
#[derive(Debug, Default)]
pub struct OrderingChecker {
    resolver: TxResolver,
    /// Highest sequence seen so far per (consumer, producer, priority, mode).
    last_seen: HashMap<OrderKey, u64>,
    /// Highest *persistent* sequence seen per (consumer, producer,
    /// priority), for the overtaking rule (stored as seq+1 so 0 is "none").
    last_persistent: HashMap<OvertakeKey, u64>,
    /// Message ids already delivered to a consumer.
    seen_ids: HashSet<(ConsumerId, MessageId)>,
    violations: Vec<Violation>,
}

impl OrderingChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw trace event to the checker. Ordering faults are
    /// detected immediately, at the offending receive.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        let EventKind::Receive {
            consumer, record, ..
        } = &event.kind
        else {
            return;
        };
        if record.redelivered {
            return;
        }
        if !self.seen_ids.insert((*consumer, record.message)) {
            return;
        }
        let key = OrderKey {
            consumer: *consumer,
            producer: record.producer,
            priority: record.priority,
            mode: record.delivery_mode,
        };
        match self.last_seen.get(&key) {
            Some(&seen) if seen > record.sequence => {
                self.violations.push(Violation::OutOfOrder {
                    consumer: *consumer,
                    producer: record.producer,
                    earlier_sequence: record.sequence,
                    later_sequence: seen,
                });
            }
            _ => {
                self.last_seen.insert(key, record.sequence);
            }
        }
        let overtake_key = OvertakeKey {
            consumer: *consumer,
            producer: record.producer,
            priority: record.priority,
        };
        match record.delivery_mode {
            DeliveryMode::Persistent => {
                let entry = self.last_persistent.entry(overtake_key).or_insert(0);
                *entry = (*entry).max(record.sequence + 1);
            }
            DeliveryMode::NonPersistent => {
                if let Some(&seen_plus_one) = self.last_persistent.get(&overtake_key) {
                    if seen_plus_one > 0 && seen_plus_one - 1 > record.sequence {
                        self.violations
                            .push(Violation::PersistentOvertookNonPersistent {
                                consumer: *consumer,
                                producer: record.producer,
                                non_persistent_sequence: record.sequence,
                                persistent_sequence: seen_plus_one - 1,
                            });
                    }
                }
            }
        }
    }

    /// Number of ordering violations detected so far.
    pub fn violations_so_far(&self) -> usize {
        self.violations.len()
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.resolver.state_bytes()
            + self.last_seen.capacity() * (mem::size_of::<OrderKey>() + mem::size_of::<u64>())
            + self.last_persistent.capacity()
                * (mem::size_of::<OvertakeKey>() + mem::size_of::<u64>())
            + self.seen_ids.capacity() * mem::size_of::<(ConsumerId, MessageId)>()
            + self.violations.capacity() * mem::size_of::<Violation>()
    }

    /// Finishes the check and returns the violations, in receive order.
    pub fn finish(self) -> Vec<Violation> {
        self.violations
    }
}

/// Checks message ordering for every consumer in a whole trace.
pub fn check(trace: &Trace) -> Vec<Violation> {
    let mut checker = OrderingChecker::new();
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::MessageRecord;

    fn with_mode(message: u64, sequence: u64, mode: DeliveryMode) -> MessageRecord {
        let mut record = rec(message, 1, sequence);
        record.delivery_mode = mode;
        record
    }

    fn with_priority(message: u64, sequence: u64, priority: u8) -> MessageRecord {
        let mut record = rec(message, 1, sequence);
        record.priority = Priority::new(priority).unwrap();
        record
    }

    #[test]
    fn in_order_delivery_passes() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(1, 1, 0)
            .receive_q(2, 1, 1)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn inverted_delivery_is_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::OutOfOrder {
                earlier_sequence: 0,
                later_sequence: 1,
                ..
            }
        ));
    }

    #[test]
    fn different_priorities_are_independent_streams() {
        // Higher priority overtaking lower priority is exactly what
        // priority delivery is for — not an ordering violation.
        let trace = TraceBuilder::new()
            .send_rec(with_priority(1, 0, 2), None)
            .send_rec(with_priority(2, 1, 8), None)
            .receive_rec(default_queue_endpoint(), 50, with_priority(2, 1, 8), None)
            .receive_rec(default_queue_endpoint(), 50, with_priority(1, 0, 2), None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn different_consumers_are_independent() {
        // A queue splits one producer's stream across receivers; each
        // receiver's subsequence must be ordered, but there is no
        // cross-consumer requirement.
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q_by(51, 2, 1, 1)
            .receive_q_by(52, 1, 1, 0)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn non_persistent_may_overtake_persistent() {
        let trace = TraceBuilder::new()
            .send_rec(with_mode(1, 0, DeliveryMode::Persistent), None)
            .send_rec(with_mode(2, 1, DeliveryMode::NonPersistent), None)
            .receive_rec(
                default_queue_endpoint(),
                50,
                with_mode(2, 1, DeliveryMode::NonPersistent),
                None,
            )
            .receive_rec(
                default_queue_endpoint(),
                50,
                with_mode(1, 0, DeliveryMode::Persistent),
                None,
            )
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn persistent_overtaking_non_persistent_is_flagged() {
        let trace = TraceBuilder::new()
            .send_rec(with_mode(1, 0, DeliveryMode::NonPersistent), None)
            .send_rec(with_mode(2, 1, DeliveryMode::Persistent), None)
            .receive_rec(
                default_queue_endpoint(),
                50,
                with_mode(2, 1, DeliveryMode::Persistent),
                None,
            )
            .receive_rec(
                default_queue_endpoint(),
                50,
                with_mode(1, 0, DeliveryMode::NonPersistent),
                None,
            )
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::PersistentOvertookNonPersistent {
                non_persistent_sequence: 0,
                persistent_sequence: 1,
                ..
            }
        ));
    }

    #[test]
    fn redelivered_messages_are_exempt() {
        let mut redelivered = rec(1, 1, 0);
        redelivered.redelivered = true;
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_rec(default_queue_endpoint(), 50, redelivered, None)
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn sequence_zero_overtake_edge_case() {
        // Persistent seq 0 delivered, then non-persistent seq 1: the
        // sentinel arithmetic must not produce a phantom violation.
        let trace = TraceBuilder::new()
            .send_rec(with_mode(1, 0, DeliveryMode::Persistent), None)
            .send_rec(with_mode(2, 1, DeliveryMode::NonPersistent), None)
            .receive_rec(
                default_queue_endpoint(),
                50,
                with_mode(1, 0, DeliveryMode::Persistent),
                None,
            )
            .receive_rec(
                default_queue_endpoint(),
                50,
                with_mode(2, 1, DeliveryMode::NonPersistent),
                None,
            )
            .build();
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn multiple_inversions_each_flagged() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(2, 1, 1)
            .build();
        let violations = check(&trace);
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn violations_surface_during_observation() {
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .build();
        let mut checker = OrderingChecker::new();
        let mut seen_live = 0;
        for event in &trace {
            checker.observe(event);
            seen_live = seen_live.max(checker.violations_so_far());
        }
        assert_eq!(seen_live, 1);
    }
}
