//! Property 4 — Message Priority: "the mean message delivery time between
//! a producer and consumer for a lower message priority is greater or
//! equal to the mean message delivery time for a higher message priority"
//! (best effort, hence a configurable tolerance).
//!
//! As the paper requires, classes are only compared when their messages
//! were produced comparably: same producer, same end-point, same delivery
//! mode. The measurement window is the run period; the incremental
//! [`PriorityChecker`] gates samples through a [`WindowGate`] so that
//! delays are admitted exactly when the (possibly not yet delimited) run
//! window is known to contain their production time.

use crate::config::PriorityConfig;
use crate::stream::{Resolved, RunWindowTracker, TxResolver, WindowGate};
use crate::violation::Violation;
use jmst_api::destination::EndpointId;
use jmst_api::id::ProducerId;
use jmst_api::modes::{DeliveryMode, Priority};
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind};
use jmst_store::stats::SummaryStats;
use jmst_store::table::TraceStore;
use jmst_store::trace::Trace;
use std::collections::BTreeMap;
use std::mem;
use std::time::Duration;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct GroupKey {
    producer: ProducerId,
    endpoint: EndpointId,
    mode: DeliveryMode,
}

/// Incremental mean-delay priority checker.
#[derive(Debug)]
pub struct PriorityChecker {
    config: PriorityConfig,
    resolver: TxResolver,
    window: RunWindowTracker,
    gate: WindowGate<(GroupKey, Priority, f64)>,
    groups: BTreeMap<GroupKey, BTreeMap<Priority, SummaryStats>>,
}

impl PriorityChecker {
    /// Creates a checker with the given configuration.
    pub fn new(config: PriorityConfig) -> Self {
        Self {
            config,
            resolver: TxResolver::new(),
            window: RunWindowTracker::new(),
            gate: WindowGate::new(),
            groups: BTreeMap::new(),
        }
    }

    /// Feeds one raw trace event to the checker.
    pub fn observe(&mut self, event: &Event) {
        self.window.note(event);
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
        let groups = &mut self.groups;
        self.gate
            .drain(&self.window, &mut |(key, priority, delay_ms)| {
                groups
                    .entry(key)
                    .or_default()
                    .entry(priority)
                    .or_default()
                    .push(delay_ms);
            });
    }

    fn ingest(&mut self, event: &Event) {
        let EventKind::Receive {
            endpoint, record, ..
        } = &event.kind
        else {
            return;
        };
        let delay_ms = event.at.signed_since(record.sent_at) as f64 / 1e6;
        let sample = (
            GroupKey {
                producer: record.producer,
                endpoint: endpoint.clone(),
                mode: record.delivery_mode,
            },
            record.priority,
            delay_ms,
        );
        let groups = &mut self.groups;
        self.gate.offer(
            record.sent_at,
            sample,
            &self.window,
            |(key, priority, delay_ms)| {
                groups
                    .entry(key)
                    .or_default()
                    .entry(priority)
                    .or_default()
                    .push(delay_ms);
            },
        );
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        let group_bytes: usize = self
            .groups
            .values()
            .map(|by_priority| {
                by_priority.len() * (mem::size_of::<Priority>() + mem::size_of::<SummaryStats>())
            })
            .sum();
        self.resolver.state_bytes()
            + self.gate.len() * mem::size_of::<(Timestamp, (GroupKey, Priority, f64))>()
            + self.groups.len() * mem::size_of::<GroupKey>()
            + group_bytes
    }

    /// Finishes the check: resolves still-pending samples against the
    /// final run window and compares priority classes pairwise.
    pub fn finish(mut self) -> Vec<Violation> {
        let window = self.window.final_window();
        let groups = &mut self.groups;
        self.gate.finish(window, |(key, priority, delay_ms)| {
            groups
                .entry(key)
                .or_default()
                .entry(priority)
                .or_default()
                .push(delay_ms);
        });
        let tolerance_ms = self.config.tolerance.as_secs_f64() * 1e3;
        let mut violations = Vec::new();
        for (key, by_priority) in self.groups {
            let qualified: Vec<(Priority, f64)> = by_priority
                .iter()
                .filter(|(_, stats)| stats.count() >= self.config.min_samples)
                .map(|(priority, stats)| (*priority, stats.mean()))
                .collect();
            // Compare every (lower, higher) pair; the map iterates
            // priorities in ascending order, so pairs are (earlier, later).
            for (i, &(lower, lower_mean)) in qualified.iter().enumerate() {
                for &(higher, higher_mean) in &qualified[i + 1..] {
                    if higher_mean > lower_mean + tolerance_ms {
                        violations.push(Violation::PriorityInversion {
                            producer: key.producer,
                            endpoint: key.endpoint.clone(),
                            lower,
                            higher,
                            lower_mean_ms: lower_mean,
                            higher_mean_ms: higher_mean,
                        });
                    }
                }
            }
        }
        violations
    }
}

/// Checks the priority property over a whole trace's run window.
pub fn check(trace: &Trace, config: &PriorityConfig) -> Vec<Violation> {
    let mut checker = PriorityChecker::new(*config);
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

/// One delivery retained by the strict checker.
#[derive(Debug, Clone, Copy)]
struct Delivered {
    sent_at: Timestamp,
    delivered_at: Timestamp,
    priority: Priority,
    mode: DeliveryMode,
    producer: ProducerId,
}

/// The paper's §5 *stricter* priority analysis: "the strictness of
/// message priority analysis can be enhanced by building a model that
/// indicates whether two messages are candidates for priority
/// considerations."
///
/// Two messages are *candidates* when the provider demonstrably held both
/// at once and chose between them: a higher-priority message `h` was
/// already sent (and past the delivery latency `slack`) when a
/// lower-priority message `l` bound for the same end-point was delivered —
/// yet `h` was delivered after `l`. Producer identity is irrelevant: the
/// end-point's buffer held both. Each such pair is a concrete,
/// non-statistical priority inversion.
///
/// Unlike the mean-based Property 4, a strictly-FIFO provider *does* fail
/// this check under backlog, which is exactly the sharper discrimination
/// the paper's future work asks for. Providers are allowed `slack` of
/// scheduling noise.
#[derive(Debug)]
pub struct StrictPriorityChecker {
    resolver: TxResolver,
    slack: Duration,
    by_group: BTreeMap<EndpointId, Vec<Delivered>>,
}

impl StrictPriorityChecker {
    /// Creates a strict checker with the given scheduling slack.
    pub fn new(slack: Duration) -> Self {
        Self {
            resolver: TxResolver::new(),
            slack,
            by_group: BTreeMap::new(),
        }
    }

    /// Feeds one raw trace event to the checker.
    pub fn observe(&mut self, event: &Event) {
        match self.resolver.push(event) {
            Resolved::Buffered => {}
            Resolved::One(event) => self.ingest(event),
            Resolved::Replay(events) => {
                for event in &events {
                    self.ingest(event);
                }
            }
        }
    }

    fn ingest(&mut self, event: &Event) {
        let EventKind::Receive {
            endpoint, record, ..
        } = &event.kind
        else {
            return;
        };
        if record.redelivered {
            return;
        }
        self.by_group
            .entry(endpoint.clone())
            .or_default()
            .push(Delivered {
                sent_at: record.sent_at,
                delivered_at: event.at,
                priority: record.priority,
                mode: record.delivery_mode,
                producer: record.producer,
            });
    }

    /// An estimate of the checker's resident state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.by_group
            .values()
            .map(|v| v.capacity() * mem::size_of::<Delivered>())
            .sum::<usize>()
            + self.by_group.len() * mem::size_of::<EndpointId>()
            + self.resolver.state_bytes()
    }

    /// Finishes the check, comparing every candidate pair per end-point.
    pub fn finish(self) -> Vec<Violation> {
        let slack_nanos = self.slack.as_nanos() as i64;
        let mut violations = Vec::new();
        for (endpoint, deliveries) in self.by_group {
            for low in &deliveries {
                for high in &deliveries {
                    if high.priority <= low.priority || high.mode != low.mode {
                        continue;
                    }
                    // `high` was available well before `low` was delivered…
                    let available = low.delivered_at.signed_since(high.sent_at) >= slack_nanos;
                    // …yet delivered later, beyond the slack.
                    let inverted = high.delivered_at.signed_since(low.delivered_at) > slack_nanos;
                    if available && inverted {
                        violations.push(Violation::PriorityInversion {
                            producer: low.producer,
                            endpoint: endpoint.clone(),
                            lower: low.priority,
                            higher: high.priority,
                            lower_mean_ms: low.delivered_at.signed_since(low.sent_at) as f64 / 1e6,
                            higher_mean_ms: high.delivered_at.signed_since(high.sent_at) as f64
                                / 1e6,
                        });
                    }
                }
            }
        }
        violations
    }
}

/// Runs the strict priority analysis over a whole trace.
pub fn check_strict(trace: &Trace, slack: Duration) -> Vec<Violation> {
    let mut checker = StrictPriorityChecker::new(slack);
    for event in trace {
        checker.observe(event);
    }
    checker.finish()
}

/// The mean-delay-by-priority table behind the check, for reports
/// (experiment E7 prints it).
pub fn mean_delay_by_priority(store: &TraceStore) -> BTreeMap<Priority, SummaryStats> {
    let (run_start, run_end) = store.run_window();
    let mut table: BTreeMap<Priority, SummaryStats> = BTreeMap::new();
    for receive in store.effective_receives() {
        let record = &receive.record;
        if record.sent_at < run_start || record.sent_at >= run_end {
            continue;
        }
        let delay_ms = receive.at.signed_since(record.sent_at) as f64 / 1e6;
        table.entry(record.priority).or_default().push(delay_ms);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::MessageRecord;
    use std::time::Duration;

    fn prioritised(message: u64, sequence: u64, priority: u8) -> MessageRecord {
        let mut record = rec(message, 1, sequence);
        record.priority = Priority::new(priority).unwrap();
        record
    }

    /// Builds a trace where priority `high` has mean delay `high_ms` and
    /// priority `low` has mean delay `low_ms`, with `n` samples each.
    fn delay_trace(low_ms: u64, high_ms: u64, n: u64) -> Trace {
        let mut builder = TraceBuilder::new();
        let mut message = 0;
        let mut time = 0u64;
        for i in 0..n {
            // Low-priority message.
            message += 1;
            let record = prioritised(message, i * 2, 1);
            builder = builder
                .at(time)
                .send_rec(record.clone(), None)
                .at(time + low_ms)
                .receive_rec(default_queue_endpoint(), 50, record, None);
            // High-priority message.
            message += 1;
            let record = prioritised(message, i * 2 + 1, 8);
            builder = builder
                .at(time + low_ms)
                .send_rec(record.clone(), None)
                .at(time + low_ms + high_ms)
                .receive_rec(default_queue_endpoint(), 50, record, None);
            time += low_ms + high_ms + 1;
        }
        builder.build()
    }

    fn config(min_samples: u64) -> PriorityConfig {
        PriorityConfig {
            tolerance: Duration::from_millis(1),
            min_samples,
            ..PriorityConfig::default()
        }
    }

    #[test]
    fn faster_high_priority_passes() {
        let trace = delay_trace(50, 10, 30);
        assert!(check(&trace, &config(20)).is_empty());
    }

    #[test]
    fn equal_delays_pass() {
        let trace = delay_trace(20, 20, 30);
        assert!(check(&trace, &config(20)).is_empty());
    }

    #[test]
    fn slower_high_priority_is_flagged() {
        let trace = delay_trace(10, 50, 30);
        let violations = check(&trace, &config(20));
        assert_eq!(violations.len(), 1);
        match &violations[0] {
            Violation::PriorityInversion {
                lower,
                higher,
                lower_mean_ms,
                higher_mean_ms,
                ..
            } => {
                assert_eq!(lower.level(), 1);
                assert_eq!(higher.level(), 8);
                assert!(higher_mean_ms > lower_mean_ms);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn small_samples_are_ignored() {
        let trace = delay_trace(10, 50, 5);
        assert!(check(&trace, &config(20)).is_empty());
    }

    #[test]
    fn tolerance_absorbs_small_inversions() {
        let trace = delay_trace(10, 11, 30); // 1 ms worse than lower
        let generous = PriorityConfig {
            tolerance: Duration::from_millis(5),
            min_samples: 20,
            ..PriorityConfig::default()
        };
        assert!(check(&trace, &generous).is_empty());
    }

    #[test]
    fn strict_check_flags_concrete_inversion_pairs() {
        // Low-priority L and high-priority H are both in the queue; the
        // provider delivers L first: a strict violation even though means
        // might not show it.
        let low = prioritised(1, 0, 1);
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .at(200)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .build();
        let violations = check_strict(&trace, Duration::from_millis(10));
        assert_eq!(violations.len(), 1);
        // The non-strict mean check with few samples sees nothing.
        assert!(check(&trace, &config(20)).is_empty());
    }

    #[test]
    fn strict_check_accepts_correct_priority_order() {
        let low = prioritised(1, 0, 1);
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .at(200)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .build();
        assert!(check_strict(&trace, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn strict_check_excuses_late_arrivals_within_slack() {
        // H was sent just before L was delivered: the provider never
        // really had both; within slack, no violation.
        let low = prioritised(1, 0, 1);
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .at(99)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .at(105)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .build();
        assert!(check_strict(&trace, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn strict_check_ignores_cross_mode_pairs() {
        // Non-persistent may run ahead of persistent regardless of
        // priority; modes are compared separately.
        let mut low = prioritised(1, 0, 1);
        low.delivery_mode = DeliveryMode::NonPersistent;
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .at(200)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .build();
        assert!(check_strict(&trace, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn mean_delay_table_reports_both_classes() {
        let store = TraceStore::build(&delay_trace(40, 10, 10));
        let table = mean_delay_by_priority(&store);
        assert_eq!(table.len(), 2);
        let low = table[&Priority::new(1).unwrap()].mean();
        let high = table[&Priority::new(8).unwrap()].mean();
        assert!((low - 40.0).abs() < 1.0, "low {low}");
        assert!((high - 10.0).abs() < 1.0, "high {high}");
    }
}
