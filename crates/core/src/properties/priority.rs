//! Property 4 — Message Priority: "the mean message delivery time between
//! a producer and consumer for a lower message priority is greater or
//! equal to the mean message delivery time for a higher message priority"
//! (best effort, hence a configurable tolerance).
//!
//! As the paper requires, classes are only compared when their messages
//! were produced comparably: same producer, same end-point, same delivery
//! mode. The measurement window is the run period.

use crate::config::PriorityConfig;
use crate::violation::Violation;
use jmst_api::destination::EndpointId;
use jmst_api::id::ProducerId;
use jmst_api::modes::{DeliveryMode, Priority};
use jmst_store::stats::SummaryStats;
use jmst_store::table::TraceStore;
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct GroupKey {
    producer: ProducerId,
    endpoint: EndpointId,
    mode: DeliveryMode,
}

/// Checks the priority property over the run window.
pub fn check(store: &TraceStore, config: &PriorityConfig) -> Vec<Violation> {
    let (run_start, run_end) = store.run_window();
    // Mean delay per (producer, endpoint, mode, priority).
    let mut groups: BTreeMap<GroupKey, BTreeMap<Priority, SummaryStats>> = BTreeMap::new();
    for receive in store.effective_receives() {
        let record = &receive.record;
        if record.sent_at < run_start || record.sent_at >= run_end {
            continue;
        }
        let delay_ms = receive.at.signed_since(record.sent_at) as f64 / 1e6;
        groups
            .entry(GroupKey {
                producer: record.producer,
                endpoint: receive.endpoint.clone(),
                mode: record.delivery_mode,
            })
            .or_default()
            .entry(record.priority)
            .or_default()
            .push(delay_ms);
    }
    let tolerance_ms = config.tolerance.as_secs_f64() * 1e3;
    let mut violations = Vec::new();
    for (key, by_priority) in groups {
        let qualified: Vec<(Priority, f64)> = by_priority
            .iter()
            .filter(|(_, stats)| stats.count() >= config.min_samples)
            .map(|(priority, stats)| (*priority, stats.mean()))
            .collect();
        // Compare every (lower, higher) pair; the map iterates priorities
        // in ascending order, so pairs are (earlier, later).
        for (i, &(lower, lower_mean)) in qualified.iter().enumerate() {
            for &(higher, higher_mean) in &qualified[i + 1..] {
                if higher_mean > lower_mean + tolerance_ms {
                    violations.push(Violation::PriorityInversion {
                        producer: key.producer,
                        endpoint: key.endpoint.clone(),
                        lower,
                        higher,
                        lower_mean_ms: lower_mean,
                        higher_mean_ms: higher_mean,
                    });
                }
            }
        }
    }
    violations
}

/// The paper's §5 *stricter* priority analysis: "the strictness of
/// message priority analysis can be enhanced by building a model that
/// indicates whether two messages are candidates for priority
/// considerations."
///
/// Two messages are *candidates* when the provider demonstrably held both
/// at once and chose between them: a higher-priority message `h` was
/// already sent (and past the delivery latency `slack`) when a
/// lower-priority message `l` bound for the same end-point was delivered —
/// yet `h` was delivered after `l`. Producer identity is irrelevant: the
/// end-point's buffer held both. Each such pair is a concrete,
/// non-statistical priority inversion.
///
/// Unlike the mean-based Property 4, a strictly-FIFO provider *does* fail
/// this check under backlog, which is exactly the sharper discrimination
/// the paper's future work asks for. Providers are allowed `slack` of
/// scheduling noise.
pub fn check_strict(store: &TraceStore, slack: std::time::Duration) -> Vec<Violation> {
    use std::collections::HashMap;
    // Delivery time per (endpoint, message) for effective receives.
    #[derive(Debug, Clone, Copy)]
    struct Delivered {
        sent_at: jmst_api::time::Timestamp,
        delivered_at: jmst_api::time::Timestamp,
        priority: Priority,
        mode: DeliveryMode,
        producer: ProducerId,
    }
    let mut by_group: HashMap<EndpointId, Vec<Delivered>> = HashMap::new();
    for receive in store.effective_receives() {
        if receive.record.redelivered {
            continue;
        }
        by_group
            .entry(receive.endpoint.clone())
            .or_default()
            .push(Delivered {
                sent_at: receive.record.sent_at,
                delivered_at: receive.at,
                priority: receive.record.priority,
                mode: receive.record.delivery_mode,
                producer: receive.record.producer,
            });
    }
    let slack_nanos = slack.as_nanos() as i64;
    let mut violations = Vec::new();
    for (endpoint, deliveries) in by_group {
        for low in &deliveries {
            for high in &deliveries {
                if high.priority <= low.priority || high.mode != low.mode {
                    continue;
                }
                // `high` was available well before `low` was delivered…
                let available = low.delivered_at.signed_since(high.sent_at) >= slack_nanos;
                // …yet delivered later, beyond the slack.
                let inverted = high.delivered_at.signed_since(low.delivered_at) > slack_nanos;
                if available && inverted {
                    violations.push(Violation::PriorityInversion {
                        producer: low.producer,
                        endpoint: endpoint.clone(),
                        lower: low.priority,
                        higher: high.priority,
                        lower_mean_ms: low.delivered_at.signed_since(low.sent_at) as f64 / 1e6,
                        higher_mean_ms: high.delivered_at.signed_since(high.sent_at) as f64 / 1e6,
                    });
                }
            }
        }
    }
    violations
}

/// The mean-delay-by-priority table behind the check, for reports
/// (experiment E7 prints it).
pub fn mean_delay_by_priority(store: &TraceStore) -> BTreeMap<Priority, SummaryStats> {
    let (run_start, run_end) = store.run_window();
    let mut table: BTreeMap<Priority, SummaryStats> = BTreeMap::new();
    for receive in store.effective_receives() {
        let record = &receive.record;
        if record.sent_at < run_start || record.sent_at >= run_end {
            continue;
        }
        let delay_ms = receive.at.signed_since(record.sent_at) as f64 / 1e6;
        table.entry(record.priority).or_default().push(delay_ms);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::MessageRecord;
    use std::time::Duration;

    fn prioritised(message: u64, sequence: u64, priority: u8) -> MessageRecord {
        let mut record = rec(message, 1, sequence);
        record.priority = Priority::new(priority).unwrap();
        record
    }

    /// Builds a trace where priority `high` has mean delay `high_ms` and
    /// priority `low` has mean delay `low_ms`, with `n` samples each.
    fn delay_trace(low_ms: u64, high_ms: u64, n: u64) -> TraceStore {
        let mut builder = TraceBuilder::new();
        let mut message = 0;
        let mut time = 0u64;
        for i in 0..n {
            // Low-priority message.
            message += 1;
            let record = prioritised(message, i * 2, 1);
            builder = builder
                .at(time)
                .send_rec(record.clone(), None)
                .at(time + low_ms)
                .receive_rec(default_queue_endpoint(), 50, record, None);
            // High-priority message.
            message += 1;
            let record = prioritised(message, i * 2 + 1, 8);
            builder = builder
                .at(time + low_ms)
                .send_rec(record.clone(), None)
                .at(time + low_ms + high_ms)
                .receive_rec(default_queue_endpoint(), 50, record, None);
            time += low_ms + high_ms + 1;
        }
        TraceStore::build(&builder.build())
    }

    fn config(min_samples: u64) -> PriorityConfig {
        PriorityConfig {
            tolerance: Duration::from_millis(1),
            min_samples,
            ..PriorityConfig::default()
        }
    }

    #[test]
    fn faster_high_priority_passes() {
        let store = delay_trace(50, 10, 30);
        assert!(check(&store, &config(20)).is_empty());
    }

    #[test]
    fn equal_delays_pass() {
        let store = delay_trace(20, 20, 30);
        assert!(check(&store, &config(20)).is_empty());
    }

    #[test]
    fn slower_high_priority_is_flagged() {
        let store = delay_trace(10, 50, 30);
        let violations = check(&store, &config(20));
        assert_eq!(violations.len(), 1);
        match &violations[0] {
            Violation::PriorityInversion {
                lower,
                higher,
                lower_mean_ms,
                higher_mean_ms,
                ..
            } => {
                assert_eq!(lower.level(), 1);
                assert_eq!(higher.level(), 8);
                assert!(higher_mean_ms > lower_mean_ms);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn small_samples_are_ignored() {
        let store = delay_trace(10, 50, 5);
        assert!(check(&store, &config(20)).is_empty());
    }

    #[test]
    fn tolerance_absorbs_small_inversions() {
        let store = delay_trace(10, 11, 30); // 1 ms worse than lower
        let generous = PriorityConfig {
            tolerance: Duration::from_millis(5),
            min_samples: 20,
            ..PriorityConfig::default()
        };
        assert!(check(&store, &generous).is_empty());
    }

    #[test]
    fn strict_check_flags_concrete_inversion_pairs() {
        // Low-priority L and high-priority H are both in the queue; the
        // provider delivers L first: a strict violation even though means
        // might not show it.
        let low = prioritised(1, 0, 1);
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .at(200)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .build();
        let store = TraceStore::build(&trace);
        let violations = check_strict(&store, Duration::from_millis(10));
        assert_eq!(violations.len(), 1);
        // The non-strict mean check with few samples sees nothing.
        assert!(check(&store, &config(20)).is_empty());
    }

    #[test]
    fn strict_check_accepts_correct_priority_order() {
        let low = prioritised(1, 0, 1);
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .at(200)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .build();
        let store = TraceStore::build(&trace);
        assert!(check_strict(&store, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn strict_check_excuses_late_arrivals_within_slack() {
        // H was sent just before L was delivered: the provider never
        // really had both; within slack, no violation.
        let low = prioritised(1, 0, 1);
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .at(99)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .at(105)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .build();
        let store = TraceStore::build(&trace);
        assert!(check_strict(&store, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn strict_check_ignores_cross_mode_pairs() {
        // Non-persistent may run ahead of persistent regardless of
        // priority; modes are compared separately.
        let mut low = prioritised(1, 0, 1);
        low.delivery_mode = DeliveryMode::NonPersistent;
        let high = prioritised(2, 1, 8);
        let trace = TraceBuilder::new()
            .at(0)
            .send_rec(low.clone(), None)
            .send_rec(high.clone(), None)
            .at(100)
            .receive_rec(default_queue_endpoint(), 50, low, None)
            .at(200)
            .receive_rec(default_queue_endpoint(), 50, high, None)
            .build();
        let store = TraceStore::build(&trace);
        assert!(check_strict(&store, Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn mean_delay_table_reports_both_classes() {
        let store = delay_trace(40, 10, 10);
        let table = mean_delay_by_priority(&store);
        assert_eq!(table.len(), 2);
        let low = table[&Priority::new(1).unwrap()].mean();
        let high = table[&Priority::new(8).unwrap()].mean();
        assert!((low - 40.0).abs() < 1.0, "low {low}");
        assert!((high - 10.0).abs() < 1.0, "high {high}");
    }
}
