//! Analysis configuration: which properties to check and with what
//! tolerances and expectation models.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of the priority check (Property 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityConfig {
    /// How much slower a higher priority's mean delay may be before it
    /// counts as an inversion ("best effort" slack).
    pub tolerance: Duration,
    /// Minimum deliveries a priority class needs before it participates
    /// in the comparison.
    pub min_samples: u64,
    /// Also run the paper's §5 *strict* pairwise analysis, which flags
    /// concrete inversion pairs the provider demonstrably chose wrongly
    /// between. Off by default — it is stricter than the JMS
    /// specification's best-effort wording, and fails FIFO providers.
    pub strict: bool,
    /// Scheduling slack allowed by the strict analysis.
    pub strict_slack: Duration,
}

impl Default for PriorityConfig {
    fn default() -> Self {
        Self {
            tolerance: Duration::from_millis(1),
            min_samples: 20,
            strict: false,
            strict_slack: Duration::from_millis(5),
        }
    }
}

/// The delay expectation model used by the expiry check (Property 5).
///
/// The paper deploys the simple mean-latency model and names the
/// histogram and normal-distribution models as future work (§5); all
/// three are implemented here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExpiryModel {
    /// Deliverable iff the time-to-live is at least the observed mean
    /// delivery latency (or infinite).
    SimpleMean,
    /// Deliverable iff the observed delay histogram puts at least
    /// `deliver_probability` mass at or below the time-to-live.
    Histogram,
    /// Deliverable iff a normal distribution fitted to the observed
    /// delays puts at least `deliver_probability` mass at or below the
    /// time-to-live.
    Normal,
}

/// Configuration of the expiry check (Property 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpiryConfig {
    /// The expectation model.
    pub model: ExpiryModel,
    /// Probability threshold used by the histogram and normal models.
    pub deliver_probability: f64,
    /// Maximum percentage of expected-expired messages that may be
    /// delivered (first clause of Property 5).
    pub max_expired_delivered_percent: f64,
    /// Minimum percentage of expected-live messages that must be
    /// delivered (second clause of Property 5).
    pub min_live_delivered_percent: f64,
}

impl Default for ExpiryConfig {
    fn default() -> Self {
        Self {
            model: ExpiryModel::SimpleMean,
            deliver_probability: 0.5,
            max_expired_delivered_percent: 5.0,
            min_live_delivered_percent: 95.0,
        }
    }
}

/// Which checks to run and their settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Check Property 1 (delivery integrity).
    pub check_integrity: bool,
    /// Check Property 2 (required messages).
    pub check_required: bool,
    /// Check Property 3 (ordering).
    pub check_ordering: bool,
    /// Check Property 4 (priority). Off by default in mixed workloads is
    /// reasonable; the paper notes this property can be "relaxed or
    /// dropped altogether".
    pub check_priority: bool,
    /// Check Property 5 (expiry).
    pub check_expiry: bool,
    /// Check for duplicate deliveries.
    pub check_duplicates: bool,
    /// When set, flag any delivery whose `delivery_count` exceeds the
    /// provider's configured redelivery bound (`bound` redeliveries on
    /// top of the first delivery). `None` disables the check.
    pub redelivery_bound: Option<u32>,
    /// Priority-check settings.
    pub priority: PriorityConfig,
    /// Expiry-check settings.
    pub expiry: ExpiryConfig,
    /// Width of one delay-histogram bucket.
    pub histogram_bucket: Duration,
    /// Number of delay-histogram buckets.
    pub histogram_buckets: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            check_integrity: true,
            check_required: true,
            check_ordering: true,
            check_priority: true,
            check_expiry: true,
            check_duplicates: true,
            redelivery_bound: None,
            priority: PriorityConfig::default(),
            expiry: ExpiryConfig::default(),
            histogram_bucket: Duration::from_millis(1),
            histogram_buckets: 1_000,
        }
    }
}

impl AnalysisConfig {
    /// The default configuration: every check on.
    pub fn all_checks() -> Self {
        Self::default()
    }

    /// A configuration with only the safety checks that need no
    /// statistical tolerance (P1, P2, P3, duplicates).
    pub fn strict_safety_only() -> Self {
        Self {
            check_priority: false,
            check_expiry: false,
            ..Self::default()
        }
    }

    /// Returns a copy using the given expiry model.
    pub fn with_expiry_model(mut self, model: ExpiryModel) -> Self {
        self.expiry.model = model;
        self
    }

    /// Returns a copy that checks the bounded-redelivery property against
    /// the given bound (the broker's `max_redeliveries`).
    pub fn with_redelivery_bound(mut self, bound: u32) -> Self {
        self.redelivery_bound = Some(bound);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let config = AnalysisConfig::default();
        assert!(config.check_integrity);
        assert!(config.check_required);
        assert!(config.check_ordering);
        assert!(config.check_priority);
        assert!(config.check_expiry);
        assert!(config.check_duplicates);
    }

    #[test]
    fn strict_safety_disables_statistical_checks() {
        let config = AnalysisConfig::strict_safety_only();
        assert!(!config.check_priority);
        assert!(!config.check_expiry);
        assert!(config.check_integrity);
    }

    #[test]
    fn expiry_model_override() {
        let config = AnalysisConfig::default().with_expiry_model(ExpiryModel::Histogram);
        assert_eq!(config.expiry.model, ExpiryModel::Histogram);
    }

    #[test]
    fn default_thresholds_match_paper_style() {
        let expiry = ExpiryConfig::default();
        assert_eq!(expiry.max_expired_delivered_percent, 5.0);
        assert_eq!(expiry.min_live_delivered_percent, 95.0);
        assert_eq!(expiry.deliver_probability, 0.5);
    }
}
