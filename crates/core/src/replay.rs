//! Journal replay: rebuilding per-test analysis from a campaign
//! journal's event stream.
//!
//! When the multi-process prince resumes an interrupted campaign, the
//! completed tests are not re-run — their verdicts are *rebuilt* by
//! replaying the journaled events through the same streaming analyzer
//! that judged them live. Because the streaming core is deterministic
//! over the canonical event order, a replayed report equals the
//! original run's report exactly, which is what makes a resumed
//! campaign report comparable (and in the resume tests, *equal*) to an
//! uninterrupted one.
//!
//! [`partition_journal`] does the bookkeeping: grouping events by test,
//! discarding aborted attempts (a respawned worker reruns its test from
//! scratch, superseding the dead attempt's events), and classifying the
//! journal's end state. [`replay_events`] is the analysis half: events
//! → canonical order → streaming analyzer → [`AnalysisReport`].

use crate::analyzer::{AnalysisReport, Analyzer};
use jmst_store::journal::{JournalRecord, VerdictRecord};
use jmst_store::{Event, Trace};

/// Replays loose events through a streaming analyzer in canonical
/// order, producing the same report the live watcher produced.
pub fn replay_events(analyzer: &Analyzer, events: Vec<Event>) -> AnalysisReport {
    let trace = Trace::from_events(events);
    let mut streaming = analyzer.streaming();
    for event in trace.events() {
        streaming.observe(event);
    }
    streaming.finish()
}

/// One completed test recovered from a journal.
#[derive(Debug, Clone)]
pub struct ReplayedTest {
    /// Index into the campaign schedule.
    pub index: usize,
    /// Test name.
    pub name: String,
    /// The verdict the prince journaled when the test finished.
    pub verdict: VerdictRecord,
    /// The final (non-aborted) attempt's events, ready for
    /// [`replay_events`].
    pub events: Vec<Event>,
}

/// A test the journal opens but never finishes — where the interruption
/// struck.
#[derive(Debug, Clone)]
pub struct InterruptedTest {
    /// Index into the campaign schedule.
    pub index: usize,
    /// Test name.
    pub name: String,
    /// The attempt that was in flight.
    pub attempt: u32,
    /// Events collected before the interruption (a partial trace — the
    /// existing `Inconclusive` machinery analyses it).
    pub events: Vec<Event>,
}

/// A campaign journal, partitioned into resumable structure.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Campaign name from the opening record.
    pub campaign: Option<String>,
    /// The committed schedule (test names in order).
    pub schedule: Vec<String>,
    /// The schedule digest the journal was opened with.
    pub spec_digest: Option<String>,
    /// Tests that ran to a verdict, in completion order.
    pub completed: Vec<ReplayedTest>,
    /// The test in flight when the journal ends, if any.
    pub interrupted: Option<InterruptedTest>,
    /// `true` when the journal records a `CampaignFinished` marker —
    /// nothing to resume.
    pub finished: bool,
}

impl JournalReplay {
    /// The schedule index resumption should start from: the first index
    /// with no journaled verdict.
    pub fn resume_index(&self) -> usize {
        self.completed
            .iter()
            .map(|t| t.index + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Partitions journal records into completed tests (with their final
/// attempt's events), the interrupted in-flight test if any, and the
/// campaign bookkeeping. Aborted attempts' events are discarded, as the
/// prince discards them live.
pub fn partition_journal(records: &[JournalRecord]) -> JournalReplay {
    let mut replay = JournalReplay::default();
    // The attempt currently being collected: (index, name, attempt, events).
    let mut in_flight: Option<(usize, String, u32, Vec<Event>)> = None;
    for record in records {
        match record {
            JournalRecord::CampaignStarted {
                campaign,
                tests,
                spec_digest,
            } => {
                replay.campaign = Some(campaign.clone());
                replay.schedule = tests.clone();
                replay.spec_digest = Some(spec_digest.clone());
            }
            JournalRecord::TestStarted {
                index,
                name,
                attempt,
            } => {
                in_flight = Some((*index, name.clone(), *attempt, Vec::new()));
            }
            JournalRecord::Event { index, event } => {
                if let Some((current, _, _, events)) = in_flight.as_mut() {
                    if current == index {
                        events.push(event.clone());
                    }
                }
            }
            // The dead attempt's events are superseded; a respawn
            // journals a fresh TestStarted for the same index.
            JournalRecord::AttemptAborted { index, .. }
                if in_flight.as_ref().is_some_and(|(i, ..)| i == index) =>
            {
                in_flight = None;
            }
            JournalRecord::AttemptAborted { .. } => {}
            JournalRecord::TestFinished { index, verdict, .. } => {
                let (events, name) = match in_flight.take() {
                    Some((i, name, _, events)) if i == *index => (events, name),
                    _ => (Vec::new(), String::new()),
                };
                replay.completed.push(ReplayedTest {
                    index: *index,
                    name,
                    verdict: verdict.clone(),
                    events,
                });
            }
            JournalRecord::CampaignFinished { .. } => {
                replay.finished = true;
            }
            // `JournalRecord` is non_exhaustive: future record kinds are
            // bookkeeping this replay does not need.
            _ => {}
        }
    }
    if let Some((index, name, attempt, events)) = in_flight {
        replay.interrupted = Some(InterruptedTest {
            index,
            name,
            attempt,
            events,
        });
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::id::NodeId;
    use jmst_api::time::SystemClock;
    use jmst_store::trace::Recorder;
    use jmst_store::{EventKind, Phase};
    use std::sync::Arc;

    fn some_events(n: usize) -> Vec<Event> {
        let recorder = Recorder::new();
        let node = recorder.node(NodeId::from_raw(1), Arc::new(SystemClock::new()));
        for _ in 0..n {
            node.record(EventKind::PhaseStarted { phase: Phase::Run });
        }
        recorder.snapshot().events().to_vec()
    }

    fn verdict(status: &str) -> VerdictRecord {
        VerdictRecord {
            status: status.to_owned(),
            detail: String::new(),
            violations: 0,
            sends: 0,
            receives: 0,
        }
    }

    #[test]
    fn partition_discards_aborted_attempts_and_finds_the_interruption() {
        let events_a = some_events(3);
        let events_b = some_events(2);
        let mut records = vec![
            JournalRecord::CampaignStarted {
                campaign: "c".to_owned(),
                tests: vec!["t0".to_owned(), "t1".to_owned()],
                spec_digest: "d".to_owned(),
            },
            // t0: first attempt dies, second completes.
            JournalRecord::TestStarted {
                index: 0,
                name: "t0".to_owned(),
                attempt: 1,
            },
        ];
        records.extend(
            some_events(4)
                .into_iter()
                .map(|event| JournalRecord::Event { index: 0, event }),
        );
        records.push(JournalRecord::AttemptAborted {
            index: 0,
            attempt: 1,
            reason: "worker killed".to_owned(),
        });
        records.push(JournalRecord::TestStarted {
            index: 0,
            name: "t0".to_owned(),
            attempt: 2,
        });
        records.extend(
            events_a
                .iter()
                .cloned()
                .map(|event| JournalRecord::Event { index: 0, event }),
        );
        records.push(JournalRecord::TestFinished {
            index: 0,
            name: "t0".to_owned(),
            verdict: verdict("passed"),
        });
        // t1: interrupted mid-run.
        records.push(JournalRecord::TestStarted {
            index: 1,
            name: "t1".to_owned(),
            attempt: 1,
        });
        records.extend(
            events_b
                .iter()
                .cloned()
                .map(|event| JournalRecord::Event { index: 1, event }),
        );

        let replay = partition_journal(&records);
        assert_eq!(replay.campaign.as_deref(), Some("c"));
        assert_eq!(replay.schedule, vec!["t0", "t1"]);
        assert!(!replay.finished);
        assert_eq!(replay.completed.len(), 1);
        // Only the final attempt's events survive.
        assert_eq!(replay.completed[0].events, events_a);
        assert_eq!(replay.completed[0].verdict.status, "passed");
        let interrupted = replay.interrupted.as_ref().expect("t1 was in flight");
        assert_eq!(interrupted.index, 1);
        assert_eq!(interrupted.events, events_b);
        assert_eq!(replay.resume_index(), 1);
    }

    #[test]
    fn finished_campaigns_have_nothing_to_resume() {
        let records = vec![
            JournalRecord::CampaignStarted {
                campaign: "c".to_owned(),
                tests: vec!["t0".to_owned()],
                spec_digest: "d".to_owned(),
            },
            JournalRecord::TestStarted {
                index: 0,
                name: "t0".to_owned(),
                attempt: 1,
            },
            JournalRecord::TestFinished {
                index: 0,
                name: "t0".to_owned(),
                verdict: verdict("passed"),
            },
            JournalRecord::CampaignFinished {
                passed: 1,
                violated: 0,
                failed: 0,
            },
        ];
        let replay = partition_journal(&records);
        assert!(replay.finished);
        assert!(replay.interrupted.is_none());
        assert_eq!(replay.resume_index(), 1);
    }

    #[test]
    fn replayed_events_reproduce_the_batch_analysis() {
        // A hand-built trace with sends and in-order receives: the
        // replayed streaming report must match the batch analyzer over
        // the same events, even when the events arrive shuffled (the
        // journal preserves arrival order, not canonical order).
        let mut builder = crate::test_support::TraceBuilder::new().phase(Phase::Run);
        for m in 0..40u64 {
            builder = builder.send(m, 1, m).receive_q(m, 1, m);
        }
        let trace = builder.build();
        let analyzer = Analyzer::new();
        let batch = analyzer.analyze(&trace);
        let mut shuffled = trace.events().to_vec();
        shuffled.reverse();
        let replayed = replay_events(&analyzer, shuffled);
        assert_eq!(replayed.sends, batch.sends);
        assert_eq!(replayed.receives, batch.receives);
        assert_eq!(replayed.violations, batch.violations);
        assert!(replayed.passed(), "{replayed:?}");
    }
}
