//! Report rendering: turns an [`AnalysisReport`] into human-readable
//! markdown and machine-readable CSV — the stand-in for the paper's
//! Access forms-and-reports facility.

use crate::analyzer::AnalysisReport;
use crate::violation::Violation;
use std::fmt::Write as _;

/// Renders the full analysis as a markdown document: verdict, violation
/// summary by property, the §3.2 performance table, per-actor
/// throughput, and expiry accounting.
pub fn to_markdown(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Test analysis\n");
    let _ = writeln!(
        out,
        "**Verdict:** {}  ",
        if report.passed() {
            "PASS".to_owned()
        } else {
            format!("{} violation(s)", report.violations.len())
        }
    );
    let _ = writeln!(
        out,
        "events: {} · sends: {} · receives: {}\n",
        report.events_analyzed, report.sends, report.receives
    );

    if !report.violations.is_empty() {
        let _ = writeln!(out, "## Violations\n");
        let _ = writeln!(out, "| property | count | first example |");
        let _ = writeln!(out, "|---|---:|---|");
        for (property, violations) in report.by_property() {
            let _ = writeln!(
                out,
                "| {property} | {} | {} |",
                violations.len(),
                violations[0]
            );
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "## Performance (run window)\n");
    let perf = &report.performance;
    let _ = writeln!(out, "| measure | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(
        out,
        "| producer throughput | {} |",
        perf.producer_throughput
    );
    let _ = writeln!(
        out,
        "| consumer throughput | {} |",
        perf.consumer_throughput
    );
    let d = &perf.delay.stats;
    let _ = writeln!(
        out,
        "| message delay | mean {:.3} ms · σ {:.3} ms · min {:.3} ms · max {:.3} ms (n={}) |",
        d.mean(),
        d.std_dev(),
        d.min().unwrap_or(0.0),
        d.max().unwrap_or(0.0),
        d.count()
    );
    if perf.delay.negative_samples > 0 {
        let _ = writeln!(
            out,
            "| negative delays (clock skew) | {} |",
            perf.delay.negative_samples
        );
    }
    let _ = writeln!(
        out,
        "| unfairness | producers {:.3} ms · consumers {:.3} ms |",
        perf.producer_unfairness_ms, perf.consumer_unfairness_ms
    );
    let _ = writeln!(out);

    if perf.per_producer.len() > 1 || perf.per_consumer.len() > 1 {
        let _ = writeln!(out, "## Per-actor throughput\n");
        let _ = writeln!(out, "| actor | msg/s | B/s | n |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for (id, throughput) in &perf.per_producer {
            let _ = writeln!(
                out,
                "| {id} | {:.2} | {:.0} | {} |",
                throughput.messages_per_sec, throughput.bytes_per_sec, throughput.count
            );
        }
        for (id, throughput) in &perf.per_consumer {
            let _ = writeln!(
                out,
                "| {id} | {:.2} | {:.0} | {} |",
                throughput.messages_per_sec, throughput.bytes_per_sec, throughput.count
            );
        }
        let _ = writeln!(out);
    }

    if !report.expiry.is_empty() {
        let _ = writeln!(out, "## Expiry accounting (Property 5)\n");
        let _ = writeln!(
            out,
            "| end-point | expected expired | delivered anyway | expected live | delivered |"
        );
        let _ = writeln!(out, "|---|---:|---:|---:|---:|");
        for breakdown in &report.expiry {
            let _ = writeln!(
                out,
                "| {} | {} | {} ({:.1}%) | {} | {} ({:.1}%) |",
                breakdown.endpoint,
                breakdown.expected_expired,
                breakdown.expired_delivered,
                breakdown.expired_delivered_percent(),
                breakdown.expected_live,
                breakdown.live_delivered,
                breakdown.live_delivered_percent()
            );
        }
    }
    out
}

/// Renders the violations as CSV rows (`property,description`).
pub fn violations_to_csv(violations: &[Violation]) -> String {
    jmst_store::csv::render(
        &["property", "description"],
        violations
            .iter()
            .map(|violation| vec![violation.property().to_string(), violation.to_string()]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use crate::Analyzer;
    use jmst_store::event::Phase;

    fn failing_report() -> AnalysisReport {
        let trace = TraceBuilder::new()
            .phase(Phase::Run)
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .at(5_000)
            .phase(Phase::WarmDown)
            .build();
        Analyzer::new().analyze(&trace)
    }

    #[test]
    fn markdown_includes_verdict_and_violation_table() {
        let report = failing_report();
        let markdown = to_markdown(&report);
        assert!(markdown.contains("# Test analysis"));
        assert!(markdown.contains("1 violation(s)"));
        assert!(markdown.contains("P2 required messages"));
        assert!(markdown.contains("## Performance"));
        assert!(markdown.contains("producer throughput"));
    }

    #[test]
    fn markdown_for_passing_report_has_no_violation_section() {
        let trace = TraceBuilder::new()
            .phase(Phase::Run)
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .at(5_000)
            .phase(Phase::WarmDown)
            .build();
        let report = Analyzer::new().analyze(&trace);
        let markdown = to_markdown(&report);
        assert!(markdown.contains("PASS"));
        assert!(!markdown.contains("## Violations"));
    }

    #[test]
    fn violations_csv_has_one_row_per_violation() {
        let report = failing_report();
        let csv = violations_to_csv(&report.violations);
        assert_eq!(csv.lines().count(), report.violations.len() + 1);
        assert!(csv.contains("P2 required messages"));
    }
}
