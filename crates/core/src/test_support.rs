//! Hand-built trace construction for checker unit tests.

use jmst_api::destination::{Destination, EndpointId, QueueName};
use jmst_api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId, TxId};
use jmst_api::modes::{DeliveryMode, Priority, SessionMode, TimeToLive};
use jmst_api::time::Timestamp;
use jmst_store::event::{Event, EventKind, MessageRecord, Phase};
use jmst_store::trace::Trace;

/// The queue every shorthand method uses.
pub fn default_queue_endpoint() -> EndpointId {
    EndpointId::for_queue(QueueName::new("q"))
}

/// A default message record addressed to queue `q`.
pub fn rec(message: u64, producer: u64, sequence: u64) -> MessageRecord {
    MessageRecord {
        message: MessageId::from_raw(message),
        producer: ProducerId::from_raw(producer),
        sequence,
        destination: Destination::queue("q"),
        priority: Priority::DEFAULT,
        delivery_mode: DeliveryMode::Persistent,
        time_to_live: TimeToLive::FOREVER,
        sent_at: Timestamp::ZERO, // overwritten by the builder at send
        body_bytes: 100,
        redelivered: false,
        delivery_count: 1,
        properties: Default::default(),
    }
}

/// Incremental trace builder: every event is stamped one millisecond
/// after the previous one unless [`TraceBuilder::at`] moves the clock.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
    seq: u64,
    now_ms: u64,
}

impl TraceBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the builder clock to an absolute millisecond value.
    pub fn at(mut self, ms: u64) -> Self {
        assert!(ms >= self.now_ms, "builder clock cannot go backwards");
        self.now_ms = ms;
        self
    }

    fn push(mut self, kind: EventKind) -> Self {
        self.events.push(Event {
            seq: self.seq,
            at: Timestamp::from_millis(self.now_ms),
            node: NodeId::from_raw(0),
            kind,
        });
        self.seq += 1;
        self
    }

    /// Logs a send of an explicit record (stamping `sent_at` to now).
    pub fn send_rec(self, mut record: MessageRecord, tx: Option<TxId>) -> Self {
        record.sent_at = Timestamp::from_millis(self.now_ms);
        let session = SessionId::from_raw(1);
        self.push(EventKind::Send {
            record,
            session,
            tx,
        })
    }

    /// Logs a non-transacted send to queue `q`.
    pub fn send(self, message: u64, producer: u64, sequence: u64) -> Self {
        self.send_rec(rec(message, producer, sequence), None)
    }

    /// Logs a transacted send to queue `q`.
    pub fn send_tx(self, message: u64, producer: u64, sequence: u64, tx: TxId) -> Self {
        self.send_rec(rec(message, producer, sequence), Some(tx))
    }

    /// Logs a receive of an explicit record at an explicit end-point.
    /// The record's `sent_at` is back-filled from the matching send if
    /// one was logged, so delays are consistent without the caller
    /// restamping records.
    pub fn receive_rec(
        self,
        endpoint: EndpointId,
        consumer: u64,
        mut record: MessageRecord,
        tx: Option<TxId>,
    ) -> Self {
        if let Some(sent) = self.matching_send_record(record.message.as_u64()) {
            record.sent_at = sent.sent_at;
        }
        let session = SessionId::from_raw(100 + consumer);
        self.push(EventKind::Receive {
            consumer: ConsumerId::from_raw(consumer),
            endpoint,
            record,
            session,
            tx,
        })
    }

    /// Logs a receive at queue `q` by consumer 50. The record's `sent_at`
    /// is back-filled from the matching send if present.
    pub fn receive_q(self, message: u64, producer: u64, sequence: u64) -> Self {
        self.receive_q_by(50, message, producer, sequence)
    }

    /// Logs a receive at queue `q` by an explicit consumer.
    pub fn receive_q_by(self, consumer: u64, message: u64, producer: u64, sequence: u64) -> Self {
        let record = self
            .matching_send_record(message)
            .unwrap_or_else(|| rec(message, producer, sequence));
        self.receive_rec(default_queue_endpoint(), consumer, record, None)
    }

    /// Logs a transacted receive at queue `q` by consumer 50.
    pub fn receive_q_tx(self, message: u64, producer: u64, sequence: u64, tx: TxId) -> Self {
        let record = self
            .matching_send_record(message)
            .unwrap_or_else(|| rec(message, producer, sequence));
        self.receive_rec(default_queue_endpoint(), 50, record, Some(tx))
    }

    fn matching_send_record(&self, message: u64) -> Option<MessageRecord> {
        self.events
            .iter()
            .rev()
            .find_map(|event| match &event.kind {
                EventKind::Send { record, .. } if record.message.as_u64() == message => {
                    Some(record.clone())
                }
                _ => None,
            })
    }

    /// Logs a client acknowledgement by a consumer's session (the same
    /// session id `receive_rec` derives for that consumer).
    pub fn ack_by(self, consumer: u64) -> Self {
        let session = SessionId::from_raw(100 + consumer);
        self.push(EventKind::Acknowledge { session })
    }

    /// Logs a dead-letter parking of an explicit record.
    pub fn dead_lettered(self, record: MessageRecord, parked_on: &str) -> Self {
        self.push(EventKind::DeadLettered {
            record,
            parked_on: QueueName::new(parked_on),
        })
    }

    /// Logs a commit.
    pub fn commit(self, tx: TxId) -> Self {
        let session = SessionId::from_raw(1);
        self.push(EventKind::Commit { session, tx })
    }

    /// Logs a rollback.
    pub fn rollback(self, tx: TxId) -> Self {
        let session = SessionId::from_raw(1);
        self.push(EventKind::Rollback { session, tx })
    }

    /// Logs a consumer creation.
    pub fn consumer_created(
        self,
        consumer: u64,
        endpoint: EndpointId,
        selector: Option<&str>,
    ) -> Self {
        self.push(EventKind::ConsumerCreated {
            consumer: ConsumerId::from_raw(consumer),
            endpoint,
            session_mode: SessionMode::AutoAcknowledge,
            selector: selector.map(str::to_owned),
        })
    }

    /// Logs a consumer creation with an explicit session mode.
    pub fn consumer_created_mode(
        self,
        consumer: u64,
        endpoint: EndpointId,
        mode: SessionMode,
    ) -> Self {
        self.push(EventKind::ConsumerCreated {
            consumer: ConsumerId::from_raw(consumer),
            endpoint,
            session_mode: mode,
            selector: None,
        })
    }

    /// Logs a consumer close.
    pub fn consumer_closed(self, consumer: u64, endpoint: EndpointId) -> Self {
        self.push(EventKind::ConsumerClosed {
            consumer: ConsumerId::from_raw(consumer),
            endpoint,
        })
    }

    /// Logs a phase start.
    pub fn phase(self, phase: Phase) -> Self {
        self.push(EventKind::PhaseStarted { phase })
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace::from_events(self.events)
    }
}
