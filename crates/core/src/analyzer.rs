//! The analyzer: runs every configured safety check and the performance
//! analysis over one trace and assembles the report — the equivalent of
//! the paper's battery of SQL statements.

use crate::config::AnalysisConfig;
use crate::perf::{self, PerformanceReport};
use crate::properties::expiry::{self, ExpiryBreakdown, FittedModel};
use crate::properties::{duplicates, integrity, ordering, priority, required};
use crate::violation::{PropertyKind, Violation};
use jmst_store::stats::DelayHistogram;
use jmst_store::table::TraceStore;
use jmst_store::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The complete analysis result for one test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All safety violations found, in check order.
    pub violations: Vec<Violation>,
    /// The §3.2 performance measures.
    pub performance: PerformanceReport,
    /// Per-end-point expiry accounting (empty when the check is off).
    pub expiry: Vec<ExpiryBreakdown>,
    /// Trace size, for sanity-checking reports.
    pub events_analyzed: usize,
    /// Number of effective sends.
    pub sends: usize,
    /// Number of effective receives.
    pub receives: usize,
}

impl AnalysisReport {
    /// Returns `true` if no safety property was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations grouped by property.
    pub fn by_property(&self) -> BTreeMap<PropertyKind, Vec<&Violation>> {
        let mut map: BTreeMap<PropertyKind, Vec<&Violation>> = BTreeMap::new();
        for violation in &self.violations {
            map.entry(violation.property()).or_default().push(violation);
        }
        map
    }

    /// Number of violations of one property.
    pub fn count_of(&self, property: PropertyKind) -> usize {
        self.violations
            .iter()
            .filter(|violation| violation.property() == property)
            .count()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analysis: {} events, {} sends, {} receives — {}",
            self.events_analyzed,
            self.sends,
            self.receives,
            if self.passed() {
                "PASS".to_owned()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for (property, violations) in self.by_property() {
            writeln!(f, "  {property}: {}", violations.len())?;
            for violation in violations.iter().take(5) {
                writeln!(f, "    - {violation}")?;
            }
            if violations.len() > 5 {
                writeln!(f, "    … and {} more", violations.len() - 5)?;
            }
        }
        write!(f, "{}", self.performance.to_table())
    }
}

/// Runs the paper's analysis over traces.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalysisConfig,
}

impl Analyzer {
    /// Creates an analyzer with the default configuration (all checks).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with an explicit configuration.
    pub fn with_config(config: AnalysisConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Analyses one trace: materialises the relational views, evaluates
    /// every enabled safety property, and computes the performance
    /// measures.
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        let store = TraceStore::build(trace);
        self.analyze_store(&store, trace.len())
    }

    /// Analyses an already-built store (used when the caller also wants
    /// the store for its own queries).
    pub fn analyze_store(&self, store: &TraceStore, events: usize) -> AnalysisReport {
        let config = &self.config;
        let mut violations = Vec::new();
        if config.check_integrity {
            violations.extend(integrity::check(store));
        }
        if config.check_required {
            violations.extend(required::check(store));
        }
        if config.check_ordering {
            violations.extend(ordering::check(store));
        }
        if config.check_priority {
            violations.extend(priority::check(store, &config.priority));
            if config.priority.strict {
                violations.extend(priority::check_strict(store, config.priority.strict_slack));
            }
        }
        let mut expiry_breakdowns = Vec::new();
        if config.check_expiry {
            let fitted = FittedModel::fit(
                store,
                &config.expiry,
                DelayHistogram::new(config.histogram_bucket, config.histogram_buckets),
            );
            let (expiry_violations, breakdowns) = expiry::check(store, &config.expiry, &fitted);
            violations.extend(expiry_violations);
            expiry_breakdowns = breakdowns;
        }
        if config.check_duplicates {
            violations.extend(duplicates::check(store));
        }
        if let Some(bound) = config.redelivery_bound {
            violations.extend(duplicates::check_redelivery_bound(store, bound));
        }
        let performance = perf::analyze(store, config.histogram_bucket, config.histogram_buckets);
        AnalysisReport {
            violations,
            performance,
            expiry: expiry_breakdowns,
            events_analyzed: events,
            sends: store.sends().len(),
            receives: store.receives().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::Phase;

    fn clean_trace() -> Trace {
        TraceBuilder::new()
            .phase(Phase::Run)
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(1, 1, 0)
            .receive_q(2, 1, 1)
            .at(5_000)
            .phase(Phase::WarmDown)
            .build()
    }

    #[test]
    fn clean_trace_passes_everything() {
        let report = Analyzer::new().analyze(&clean_trace());
        assert!(report.passed(), "{report}");
        assert_eq!(report.sends, 2);
        assert_eq!(report.receives, 2);
        assert!(report.by_property().is_empty());
    }

    #[test]
    fn each_fault_trips_exactly_its_property() {
        // Dropped message → P2 only.
        let dropped = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        let report = Analyzer::new().analyze(&dropped);
        assert_eq!(report.count_of(PropertyKind::RequiredMessages), 1);
        assert_eq!(report.violations.len(), 1);

        // Forged message → P1 only.
        let forged = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(99, 7, 0)
            .build();
        let report = Analyzer::new().analyze(&forged);
        assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 1);
        // The forged receive must not create phantom requirements.
        assert_eq!(report.violations.len(), 1, "{report}");

        // Reordered messages → P3 only.
        let reordered = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .build();
        let report = Analyzer::new().analyze(&reordered);
        assert_eq!(report.count_of(PropertyKind::MessageOrdering), 1);
        assert_eq!(report.violations.len(), 1);

        // Duplicate delivery → duplicate check only.
        let duplicated = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let report = Analyzer::new().analyze(&duplicated);
        assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 1);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn disabled_checks_do_not_run() {
        let reordered = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .build();
        let config = AnalysisConfig {
            check_ordering: false,
            ..AnalysisConfig::default()
        };
        let report = Analyzer::with_config(config).analyze(&reordered);
        assert!(report.passed());
    }

    #[test]
    fn report_display_includes_verdict_and_measures() {
        let report = Analyzer::new().analyze(&clean_trace());
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("producer throughput"));
        let failing = TraceBuilder::new().send(1, 1, 0).build();
        let text = Analyzer::new().analyze(&failing).to_string();
        assert!(text.contains("violation"));
        assert!(text.contains("P2"));
    }

    #[test]
    fn trivial_provider_passes_safety_with_zero_throughput() {
        // The paper's observation: a provider that never delivers
        // satisfies the pure safety subset — only performance exposes it.
        // (With deliveries absent, the queue's required set is non-empty,
        // so P2 *does* catch it here; the classic trivial provider is one
        // with no sends at all.)
        let trace = TraceBuilder::new()
            .phase(Phase::Run)
            .at(1000)
            .phase(Phase::WarmDown)
            .build();
        let report = Analyzer::new().analyze(&trace);
        assert!(report.passed());
        assert_eq!(report.performance.consumer_throughput.messages_per_sec, 0.0);
    }
}
