//! The analyzer: runs every configured safety check and the performance
//! analysis over one trace and assembles the report — the equivalent of
//! the paper's battery of SQL statements, re-expressed as one pass of
//! incremental checkers.
//!
//! [`StreamingAnalyzer`] is the single implementation: it owns one
//! incremental checker per enabled property and feeds each raw event to
//! all of them. [`Analyzer::analyze`] is the batch driver — it replays a
//! recorded [`Trace`] through the same streaming core, so batch and
//! streaming verdicts are equal by construction.

use crate::config::AnalysisConfig;
use crate::perf::{PerfAccumulator, PerformanceReport};
use crate::properties::duplicates::{DuplicatesChecker, RedeliveryBoundChecker};
use crate::properties::expiry::{ExpiryBreakdown, ExpiryChecker, FitAccumulator};
use crate::properties::integrity::IntegrityChecker;
use crate::properties::ordering::OrderingChecker;
use crate::properties::priority::{PriorityChecker, StrictPriorityChecker};
use crate::properties::required::RequiredChecker;
use crate::violation::{PropertyKind, Violation};
use jmst_store::event::{Event, EventKind};
use jmst_store::stats::DelayHistogram;
use jmst_store::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One incremental checker for a named (DSL-declared) property, driven
/// through the same observe/finish lifecycle as the built-in checkers.
///
/// `live_violations` mirrors the built-ins' `violations_so_far`: a
/// checker that can convict mid-stream reports a running count there so
/// the harness's fail-fast watcher sees it; finish-only checkers leave
/// the default `0`.
pub trait PropertyChecker: fmt::Debug + Send {
    /// Feeds one event in canonical `(at, seq)` order.
    fn observe(&mut self, event: &Event);

    /// Violations already decidable mid-stream.
    fn live_violations(&self) -> usize {
        0
    }

    /// Estimated resident state, in bytes.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Finishes the checker and reports its violations.
    fn finish(self: Box<Self>) -> Vec<Violation>;
}

type CheckerFactory = Arc<dyn Fn() -> Box<dyn PropertyChecker> + Send + Sync>;

/// A set of named property checkers to instantiate alongside the
/// built-ins on every streaming pass. Cloning shares the factories.
#[derive(Clone, Default)]
pub struct CheckerRegistry {
    factories: Vec<(String, CheckerFactory)>,
}

impl CheckerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named checker factory, called once per streaming pass.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn PropertyChecker> + Send + Sync + 'static,
    ) {
        self.factories.push((name.into(), Arc::new(factory)));
    }

    /// Names of the registered checkers, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.iter().map(|(name, _)| name.as_str())
    }

    /// Number of registered checkers.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Returns `true` if no checker is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    fn instantiate(&self) -> Vec<(String, Box<dyn PropertyChecker>)> {
        self.factories
            .iter()
            .map(|(name, factory)| (name.clone(), factory()))
            .collect()
    }
}

impl fmt::Debug for CheckerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.names()).finish()
    }
}

/// The per-property outcome row for one named (DSL-declared) property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedPropertyOutcome {
    /// The property's declared name.
    pub name: String,
    /// Number of violations it reported (0 = held).
    pub violations: usize,
}

/// The complete analysis result for one test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All safety violations found, in check order.
    pub violations: Vec<Violation>,
    /// The §3.2 performance measures.
    pub performance: PerformanceReport,
    /// Per-end-point expiry accounting (empty when the check is off).
    pub expiry: Vec<ExpiryBreakdown>,
    /// Trace size, for sanity-checking reports.
    pub events_analyzed: usize,
    /// Number of send operations observed (committed or not).
    pub sends: usize,
    /// Number of receive operations observed (committed or not).
    pub receives: usize,
    /// Per-property outcome rows for named (DSL-declared) properties, in
    /// registration order (empty when no registry is attached).
    #[serde(default)]
    pub named: Vec<NamedPropertyOutcome>,
}

impl AnalysisReport {
    /// Returns `true` if no safety property was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations grouped by property.
    pub fn by_property(&self) -> BTreeMap<PropertyKind, Vec<&Violation>> {
        let mut map: BTreeMap<PropertyKind, Vec<&Violation>> = BTreeMap::new();
        for violation in &self.violations {
            map.entry(violation.property()).or_default().push(violation);
        }
        map
    }

    /// Number of violations of one property.
    pub fn count_of(&self, property: PropertyKind) -> usize {
        self.violations
            .iter()
            .filter(|violation| violation.property() == property)
            .count()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analysis: {} events, {} sends, {} receives — {}",
            self.events_analyzed,
            self.sends,
            self.receives,
            if self.passed() {
                "PASS".to_owned()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for (property, violations) in self.by_property() {
            writeln!(f, "  {property}: {}", violations.len())?;
            for violation in violations.iter().take(5) {
                writeln!(f, "    - {violation}")?;
            }
            if violations.len() > 5 {
                writeln!(f, "    … and {} more", violations.len() - 5)?;
            }
        }
        for outcome in &self.named {
            if outcome.violations == 0 {
                writeln!(f, "  property '{}': held", outcome.name)?;
            }
        }
        write!(f, "{}", self.performance.to_table())
    }
}

/// One-pass incremental analyzer: feed events as they happen, finish for
/// the report.
///
/// Violations that are decidable mid-stream (ordering, duplicates,
/// redelivery-bound) surface through [`violations_so_far`] while the run
/// is still in flight — the harness's fail-fast mode polls it. The other
/// properties need the end of the trace to distinguish a violation from
/// in-flight latency and only report at [`finish`].
///
/// [`violations_so_far`]: StreamingAnalyzer::violations_so_far
/// [`finish`]: StreamingAnalyzer::finish
#[derive(Debug)]
pub struct StreamingAnalyzer {
    config: AnalysisConfig,
    integrity: Option<IntegrityChecker>,
    required: Option<RequiredChecker>,
    ordering: Option<OrderingChecker>,
    priority: Option<PriorityChecker>,
    strict: Option<StrictPriorityChecker>,
    fit: Option<FitAccumulator>,
    expiry: Option<ExpiryChecker>,
    duplicates: Option<DuplicatesChecker>,
    redelivery: Option<RedeliveryBoundChecker>,
    named: Vec<(String, Box<dyn PropertyChecker>)>,
    perf: PerfAccumulator,
    events: usize,
    sends: usize,
    receives: usize,
}

impl StreamingAnalyzer {
    /// Creates a streaming analyzer with the given configuration.
    pub fn new(config: AnalysisConfig) -> Self {
        let perf = PerfAccumulator::new(config.histogram_bucket, config.histogram_buckets);
        Self {
            integrity: config.check_integrity.then(IntegrityChecker::new),
            required: config.check_required.then(RequiredChecker::new),
            ordering: config.check_ordering.then(OrderingChecker::new),
            priority: config
                .check_priority
                .then(|| PriorityChecker::new(config.priority)),
            strict: (config.check_priority && config.priority.strict)
                .then(|| StrictPriorityChecker::new(config.priority.strict_slack)),
            fit: config.check_expiry.then(|| {
                FitAccumulator::new(DelayHistogram::new(
                    config.histogram_bucket,
                    config.histogram_buckets,
                ))
            }),
            expiry: config.check_expiry.then(ExpiryChecker::new),
            duplicates: config.check_duplicates.then(DuplicatesChecker::new),
            redelivery: config.redelivery_bound.map(RedeliveryBoundChecker::new),
            named: Vec::new(),
            perf,
            config,
            events: 0,
            sends: 0,
            receives: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Attaches a named property checker, fed every event alongside the
    /// built-ins and reported as its own row at [`finish`].
    ///
    /// [`finish`]: StreamingAnalyzer::finish
    pub fn register(&mut self, name: impl Into<String>, checker: Box<dyn PropertyChecker>) {
        self.named.push((name.into(), checker));
    }

    /// Feeds one event, in canonical `(at, seq)` order, to every enabled
    /// checker.
    pub fn observe(&mut self, event: &Event) {
        self.events += 1;
        match &event.kind {
            EventKind::Send { .. } => self.sends += 1,
            EventKind::Receive { .. } => self.receives += 1,
            _ => {}
        }
        if let Some(checker) = &mut self.integrity {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.required {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.ordering {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.priority {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.strict {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.fit {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.expiry {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.duplicates {
            checker.observe(event);
        }
        if let Some(checker) = &mut self.redelivery {
            checker.observe(event);
        }
        for (_, checker) in &mut self.named {
            checker.observe(event);
        }
        self.perf.observe(event);
    }

    /// Number of events observed so far.
    pub fn events_observed(&self) -> usize {
        self.events
    }

    /// Number of violations already decidable mid-stream (ordering,
    /// duplicate-delivery, and redelivery-bound breaches). A non-zero
    /// value is definitive — the final report will contain at least these.
    pub fn violations_so_far(&self) -> usize {
        self.ordering
            .as_ref()
            .map_or(0, OrderingChecker::violations_so_far)
            + self
                .duplicates
                .as_ref()
                .map_or(0, DuplicatesChecker::violations_so_far)
            + self
                .redelivery
                .as_ref()
                .map_or(0, RedeliveryBoundChecker::violations_so_far)
            + self
                .named
                .iter()
                .map(|(_, checker)| checker.live_violations())
                .sum::<usize>()
    }

    /// An estimate of the resident state across all checkers, in bytes.
    /// The streaming pipeline's memory story rests on this staying far
    /// below the size of the materialised trace.
    pub fn state_bytes(&self) -> usize {
        self.integrity
            .as_ref()
            .map_or(0, IntegrityChecker::state_bytes)
            + self
                .required
                .as_ref()
                .map_or(0, RequiredChecker::state_bytes)
            + self
                .ordering
                .as_ref()
                .map_or(0, OrderingChecker::state_bytes)
            + self
                .priority
                .as_ref()
                .map_or(0, PriorityChecker::state_bytes)
            + self
                .strict
                .as_ref()
                .map_or(0, StrictPriorityChecker::state_bytes)
            + self.fit.as_ref().map_or(0, FitAccumulator::state_bytes)
            + self.expiry.as_ref().map_or(0, ExpiryChecker::state_bytes)
            + self
                .duplicates
                .as_ref()
                .map_or(0, DuplicatesChecker::state_bytes)
            + self
                .redelivery
                .as_ref()
                .map_or(0, RedeliveryBoundChecker::state_bytes)
            + self
                .named
                .iter()
                .map(|(_, checker)| checker.state_bytes())
                .sum::<usize>()
            + self.perf.state_bytes()
    }

    /// Finishes every checker and assembles the report, with violations
    /// in the fixed check order: integrity, required, ordering, priority
    /// (and strict priority), expiry, duplicates, redelivery bound, then
    /// the named property checkers in registration order.
    pub fn finish(self) -> AnalysisReport {
        let mut violations = Vec::new();
        if let Some(checker) = self.integrity {
            violations.extend(checker.finish());
        }
        if let Some(checker) = self.required {
            violations.extend(checker.finish());
        }
        if let Some(checker) = self.ordering {
            violations.extend(checker.finish());
        }
        if let Some(checker) = self.priority {
            violations.extend(checker.finish());
        }
        if let Some(checker) = self.strict {
            violations.extend(checker.finish());
        }
        let mut expiry_breakdowns = Vec::new();
        if let (Some(fit), Some(checker)) = (self.fit, self.expiry) {
            let fitted = fit.finish(&self.config.expiry);
            let (expiry_violations, breakdowns) = checker.finish(&self.config.expiry, &fitted);
            violations.extend(expiry_violations);
            expiry_breakdowns = breakdowns;
        }
        if let Some(checker) = self.duplicates {
            violations.extend(checker.finish());
        }
        if let Some(checker) = self.redelivery {
            violations.extend(checker.finish());
        }
        let mut named = Vec::with_capacity(self.named.len());
        for (name, checker) in self.named {
            let found = checker.finish();
            named.push(NamedPropertyOutcome {
                name,
                violations: found.len(),
            });
            violations.extend(found);
        }
        AnalysisReport {
            violations,
            performance: self.perf.finish(),
            expiry: expiry_breakdowns,
            events_analyzed: self.events,
            sends: self.sends,
            receives: self.receives,
            named,
        }
    }
}

/// Runs the paper's analysis over traces.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalysisConfig,
    registry: CheckerRegistry,
}

impl Analyzer {
    /// Creates an analyzer with the default configuration (all checks).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with an explicit configuration.
    pub fn with_config(config: AnalysisConfig) -> Self {
        Self {
            config,
            registry: CheckerRegistry::new(),
        }
    }

    /// Replaces the named-property registry; every subsequent streaming
    /// pass instantiates one checker per registered factory.
    pub fn with_registry(mut self, registry: CheckerRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The attached named-property registry.
    pub fn registry(&self) -> &CheckerRegistry {
        &self.registry
    }

    /// Starts a streaming pass with this analyzer's configuration.
    pub fn streaming(&self) -> StreamingAnalyzer {
        let mut streaming = StreamingAnalyzer::new(self.config);
        streaming.named = self.registry.instantiate();
        streaming
    }

    /// Analyses one recorded trace by replaying it, in canonical order,
    /// through the streaming core.
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        let mut streaming = self.streaming();
        for event in trace {
            streaming.observe(event);
        }
        streaming.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::*;
    use jmst_store::event::Phase;

    fn clean_trace() -> Trace {
        TraceBuilder::new()
            .phase(Phase::Run)
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(1, 1, 0)
            .receive_q(2, 1, 1)
            .at(5_000)
            .phase(Phase::WarmDown)
            .build()
    }

    #[test]
    fn clean_trace_passes_everything() {
        let report = Analyzer::new().analyze(&clean_trace());
        assert!(report.passed(), "{report}");
        assert_eq!(report.sends, 2);
        assert_eq!(report.receives, 2);
        assert!(report.by_property().is_empty());
    }

    #[test]
    fn each_fault_trips_exactly_its_property() {
        // Dropped message → P2 only.
        let dropped = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .send(3, 1, 2)
            .receive_q(1, 1, 0)
            .receive_q(3, 1, 2)
            .build();
        let report = Analyzer::new().analyze(&dropped);
        assert_eq!(report.count_of(PropertyKind::RequiredMessages), 1);
        assert_eq!(report.violations.len(), 1);

        // Forged message → P1 only.
        let forged = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(99, 7, 0)
            .build();
        let report = Analyzer::new().analyze(&forged);
        assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 1);
        // The forged receive must not create phantom requirements.
        assert_eq!(report.violations.len(), 1, "{report}");

        // Reordered messages → P3 only.
        let reordered = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .build();
        let report = Analyzer::new().analyze(&reordered);
        assert_eq!(report.count_of(PropertyKind::MessageOrdering), 1);
        assert_eq!(report.violations.len(), 1);

        // Duplicate delivery → duplicate check only.
        let duplicated = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let report = Analyzer::new().analyze(&duplicated);
        assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 1);
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn disabled_checks_do_not_run() {
        let reordered = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .build();
        let config = AnalysisConfig {
            check_ordering: false,
            ..AnalysisConfig::default()
        };
        let report = Analyzer::with_config(config).analyze(&reordered);
        assert!(report.passed());
    }

    #[test]
    fn report_display_includes_verdict_and_measures() {
        let report = Analyzer::new().analyze(&clean_trace());
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("producer throughput"));
        let failing = TraceBuilder::new().send(1, 1, 0).build();
        let text = Analyzer::new().analyze(&failing).to_string();
        assert!(text.contains("violation"));
        assert!(text.contains("P2"));
    }

    #[test]
    fn trivial_provider_passes_safety_with_zero_throughput() {
        // The paper's observation: a provider that never delivers
        // satisfies the pure safety subset — only performance exposes it.
        // (With deliveries absent, the queue's required set is non-empty,
        // so P2 *does* catch it here; the classic trivial provider is one
        // with no sends at all.)
        let trace = TraceBuilder::new()
            .phase(Phase::Run)
            .at(1000)
            .phase(Phase::WarmDown)
            .build();
        let report = Analyzer::new().analyze(&trace);
        assert!(report.passed());
        assert_eq!(report.performance.consumer_throughput.messages_per_sec, 0.0);
    }

    #[test]
    fn mid_stream_violations_surface_before_finish() {
        let mut streaming = Analyzer::new().streaming();
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0) // duplicate delivery, decidable on sight
            .build();
        let mut seen_live = false;
        for event in &trace {
            streaming.observe(event);
            seen_live |= streaming.violations_so_far() > 0;
        }
        assert!(seen_live);
        let report = streaming.finish();
        assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 1);
    }

    #[test]
    fn streaming_report_equals_batch_report() {
        let analyzer = Analyzer::new();
        let trace = TraceBuilder::new()
            .send(1, 1, 0)
            .send(2, 1, 1)
            .receive_q(2, 1, 1)
            .receive_q(1, 1, 0)
            .receive_q(1, 1, 0)
            .build();
        let batch = analyzer.analyze(&trace);
        let mut streaming = analyzer.streaming();
        for event in &trace {
            streaming.observe(event);
        }
        assert_eq!(batch, streaming.finish());
    }
}
