//! Safety-property violations the analysis can report.

use jmst_api::destination::EndpointId;
use jmst_api::id::{ConsumerId, MessageId, ProducerId};
use jmst_api::modes::Priority;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Which of the paper's properties a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PropertyKind {
    /// Property 1: delivery integrity.
    DeliveryIntegrity,
    /// Property 2: required messages.
    RequiredMessages,
    /// Property 3: message ordering (including the persistent /
    /// non-persistent overtaking rule).
    MessageOrdering,
    /// Property 4: message priority (best effort).
    MessagePriority,
    /// Property 5: expired messages.
    ExpiredMessages,
    /// The duplicate-delivery check (implied by JMS acknowledgement modes;
    /// the paper notes lazy acknowledgement may duplicate).
    DuplicateDelivery,
    /// The bounded-redelivery check: no delivery may exceed the
    /// provider's configured redelivery limit (poison messages must be
    /// dead-lettered instead).
    BoundedRedelivery,
    /// A declared per-message deadline property (QoS DSL).
    Deadline,
    /// A declared windowed SLO property — throughput, latency statistic,
    /// fairness, or receive-count bound (QoS DSL).
    SloWindow,
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PropertyKind::DeliveryIntegrity => "P1 delivery integrity",
            PropertyKind::RequiredMessages => "P2 required messages",
            PropertyKind::MessageOrdering => "P3 message ordering",
            PropertyKind::MessagePriority => "P4 message priority",
            PropertyKind::ExpiredMessages => "P5 expired messages",
            PropertyKind::DuplicateDelivery => "duplicate delivery",
            PropertyKind::BoundedRedelivery => "bounded redelivery",
            PropertyKind::Deadline => "QoS deadline",
            PropertyKind::SloWindow => "QoS SLO",
        })
    }
}

/// A concrete violation found in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Violation {
    /// A consumer received a message no producer ever (effectively) sent.
    ReceivedButNeverSent {
        /// The phantom message.
        message: MessageId,
        /// The consumer that received it.
        consumer: ConsumerId,
        /// The end-point it arrived at.
        endpoint: EndpointId,
    },
    /// A message in the required set of an end-point was never received.
    RequiredMessageMissing {
        /// The end-point whose required set is violated.
        endpoint: EndpointId,
        /// The producer whose message stream is incomplete.
        producer: ProducerId,
        /// The missing message.
        message: MessageId,
        /// Its per-producer sequence number.
        sequence: u64,
    },
    /// Two messages from one producer (same priority, same delivery mode)
    /// arrived out of send order at one consumer.
    OutOfOrder {
        /// The receiving consumer.
        consumer: ConsumerId,
        /// The producer whose order was broken.
        producer: ProducerId,
        /// Sequence number of the earlier-sent message (delivered late).
        earlier_sequence: u64,
        /// Sequence number of the later-sent message (delivered first).
        later_sequence: u64,
    },
    /// A persistent message overtook an earlier non-persistent message
    /// from the same producer (the permitted direction is the reverse).
    PersistentOvertookNonPersistent {
        /// The receiving consumer.
        consumer: ConsumerId,
        /// The producer.
        producer: ProducerId,
        /// Sequence of the non-persistent message that was overtaken.
        non_persistent_sequence: u64,
        /// Sequence of the persistent message that skipped ahead.
        persistent_sequence: u64,
    },
    /// A lower-priority class was served faster than a higher-priority
    /// class from the same producer at the same end-point.
    PriorityInversion {
        /// The producer.
        producer: ProducerId,
        /// The end-point.
        endpoint: EndpointId,
        /// The lower of the two priorities.
        lower: Priority,
        /// The higher of the two priorities.
        higher: Priority,
        /// Mean delay of the lower-priority class, milliseconds.
        lower_mean_ms: f64,
        /// Mean delay of the higher-priority class, milliseconds.
        higher_mean_ms: f64,
    },
    /// Too many messages that should have expired were delivered.
    ExpiredMessagesDelivered {
        /// The end-point.
        endpoint: EndpointId,
        /// Messages the expectation model classed as expired.
        expected_expired: u64,
        /// How many of them were delivered anyway.
        delivered: u64,
        /// The configured maximum percentage.
        max_percent: f64,
    },
    /// Too few messages that should have lived were delivered.
    LiveMessagesNotDelivered {
        /// The end-point.
        endpoint: EndpointId,
        /// Messages the expectation model classed as deliverable.
        expected_live: u64,
        /// How many of them actually arrived.
        delivered: u64,
        /// The configured minimum percentage.
        min_percent: f64,
    },
    /// A message was delivered more than once at an end-point whose
    /// consumers do not tolerate duplicates.
    DuplicateDelivery {
        /// The duplicated message.
        message: MessageId,
        /// The end-point.
        endpoint: EndpointId,
        /// Number of (non-redelivery) deliveries observed.
        deliveries: u64,
    },
    /// A delivery's attempt count exceeded the provider's configured
    /// redelivery bound: the message should have been dead-lettered
    /// before this delivery happened.
    RedeliveryLimitExceeded {
        /// The end-point that saw the over-limit delivery.
        endpoint: EndpointId,
        /// The over-redelivered message.
        message: MessageId,
        /// The delivery count observed on the delivery.
        delivery_count: u32,
        /// The configured bound (maximum redeliveries after the first
        /// delivery).
        bound: u32,
    },
    /// A message took longer than a declared property's deadline to reach
    /// a consumer.
    DeadlineMissed {
        /// Name of the declared property.
        property: String,
        /// The late message.
        message: MessageId,
        /// The end-point it (eventually) arrived at.
        endpoint: EndpointId,
        /// The declared deadline.
        deadline: Duration,
        /// The observed send-to-receive latency.
        observed: Duration,
    },
    /// A declared windowed service-level objective was not met over the
    /// measurement window.
    SloNotMet {
        /// Name of the declared property.
        property: String,
        /// Human-readable description of the missed bound.
        detail: String,
    },
}

impl Violation {
    /// The property this violation falls under.
    pub fn property(&self) -> PropertyKind {
        match self {
            Violation::ReceivedButNeverSent { .. } => PropertyKind::DeliveryIntegrity,
            Violation::RequiredMessageMissing { .. } => PropertyKind::RequiredMessages,
            Violation::OutOfOrder { .. } | Violation::PersistentOvertookNonPersistent { .. } => {
                PropertyKind::MessageOrdering
            }
            Violation::PriorityInversion { .. } => PropertyKind::MessagePriority,
            Violation::ExpiredMessagesDelivered { .. }
            | Violation::LiveMessagesNotDelivered { .. } => PropertyKind::ExpiredMessages,
            Violation::DuplicateDelivery { .. } => PropertyKind::DuplicateDelivery,
            Violation::RedeliveryLimitExceeded { .. } => PropertyKind::BoundedRedelivery,
            Violation::DeadlineMissed { .. } => PropertyKind::Deadline,
            Violation::SloNotMet { .. } => PropertyKind::SloWindow,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ReceivedButNeverSent {
                message,
                consumer,
                endpoint,
            } => write!(
                f,
                "{consumer} received {message} at {endpoint}, but no producer sent it"
            ),
            Violation::RequiredMessageMissing {
                endpoint,
                producer,
                message,
                sequence,
            } => write!(
                f,
                "{message} (seq {sequence}) from {producer} was required at {endpoint} but never received"
            ),
            Violation::OutOfOrder {
                consumer,
                producer,
                earlier_sequence,
                later_sequence,
            } => write!(
                f,
                "{consumer} received seq {later_sequence} before seq {earlier_sequence} from {producer}"
            ),
            Violation::PersistentOvertookNonPersistent {
                consumer,
                producer,
                non_persistent_sequence,
                persistent_sequence,
            } => write!(
                f,
                "persistent seq {persistent_sequence} overtook non-persistent seq {non_persistent_sequence} from {producer} at {consumer}"
            ),
            Violation::PriorityInversion {
                producer,
                endpoint,
                lower,
                higher,
                lower_mean_ms,
                higher_mean_ms,
            } => write!(
                f,
                "priority {higher} (mean {higher_mean_ms:.2}ms) slower than priority {lower} (mean {lower_mean_ms:.2}ms) from {producer} at {endpoint}"
            ),
            Violation::ExpiredMessagesDelivered {
                endpoint,
                expected_expired,
                delivered,
                max_percent,
            } => write!(
                f,
                "{delivered} of {expected_expired} expected-expired messages delivered at {endpoint} (limit {max_percent}%)"
            ),
            Violation::LiveMessagesNotDelivered {
                endpoint,
                expected_live,
                delivered,
                min_percent,
            } => write!(
                f,
                "only {delivered} of {expected_live} expected-live messages delivered at {endpoint} (minimum {min_percent}%)"
            ),
            Violation::DuplicateDelivery {
                message,
                endpoint,
                deliveries,
            } => write!(
                f,
                "{message} delivered {deliveries} times at {endpoint}"
            ),
            Violation::RedeliveryLimitExceeded {
                endpoint,
                message,
                delivery_count,
                bound,
            } => write!(
                f,
                "{message} reached delivery count {delivery_count} at {endpoint} (redelivery bound {bound})"
            ),
            Violation::DeadlineMissed {
                property,
                message,
                endpoint,
                deadline,
                observed,
            } => write!(
                f,
                "property '{property}': {message} took {observed:?} to reach {endpoint} (deadline {deadline:?})"
            ),
            Violation::SloNotMet { property, detail } => {
                write!(f, "property '{property}': {detail}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_classification() {
        let v = Violation::ReceivedButNeverSent {
            message: MessageId::from_raw(1),
            consumer: ConsumerId::from_raw(2),
            endpoint: EndpointId::for_queue("q".into()),
        };
        assert_eq!(v.property(), PropertyKind::DeliveryIntegrity);
        let v = Violation::OutOfOrder {
            consumer: ConsumerId::from_raw(1),
            producer: ProducerId::from_raw(1),
            earlier_sequence: 1,
            later_sequence: 2,
        };
        assert_eq!(v.property(), PropertyKind::MessageOrdering);
        let v = Violation::PersistentOvertookNonPersistent {
            consumer: ConsumerId::from_raw(1),
            producer: ProducerId::from_raw(1),
            non_persistent_sequence: 1,
            persistent_sequence: 2,
        };
        assert_eq!(v.property(), PropertyKind::MessageOrdering);
    }

    #[test]
    fn displays_are_informative() {
        let v = Violation::RequiredMessageMissing {
            endpoint: EndpointId::for_queue("orders".into()),
            producer: ProducerId::from_raw(3),
            message: MessageId::from_raw(17),
            sequence: 4,
        };
        let text = v.to_string();
        assert!(text.contains("msg-17"));
        assert!(text.contains("orders"));
        assert!(text.contains("seq 4"));
    }

    #[test]
    fn property_kind_displays() {
        assert!(PropertyKind::RequiredMessages.to_string().contains("P2"));
        assert!(PropertyKind::DuplicateDelivery
            .to_string()
            .contains("duplicate"));
    }
}
