//! The trace-level definitions of the paper's formal model
//! (Definitions 1–7), as queries over a [`TraceStore`].
//!
//! Definitions 1 and 2 (*sent* / *received* messages, which fold
//! transaction outcomes into effectiveness) are provided by
//! [`TraceStore::effective_sends`] and [`TraceStore::effective_receives`];
//! this module adds the rest: next message (Def 3), last close (Def 4),
//! last message (Def 5), first message (Def 6), possibly-received
//! messages (Def 7), and the required-message closure of Property 2.

use jmst_api::destination::{Destination, EndpointId};
use jmst_api::id::ProducerId;
use jmst_api::selector::{EvalValue, Selector};
use jmst_api::time::Timestamp;
use jmst_store::event::MessageRecord;
use jmst_store::table::{ReceiveRow, SendRow, TraceStore};
use std::collections::BTreeMap;

/// Returns `true` if messages sent to `destination` arrive at `endpoint`
/// (ignoring selectors).
pub fn endpoint_covers_destination(endpoint: &EndpointId, destination: &Destination) -> bool {
    match (endpoint, destination) {
        (EndpointId::Queue(queue), Destination::Queue(sent_to)) => queue == sent_to,
        (
            EndpointId::DurableSubscription { topic, .. }
            | EndpointId::NonDurableSubscription { topic, .. },
            Destination::Topic(sent_to),
        ) => topic == sent_to,
        _ => false,
    }
}

/// Evaluates a message selector against a trace record, resolving JMS
/// header fields and user properties exactly as delivery-time evaluation
/// would.
pub fn selector_accepts_record(selector: &Selector, record: &MessageRecord) -> bool {
    selector.matches_with(|name| match name {
        "JMSPriority" => Some(EvalValue::Long(i64::from(record.priority.level()))),
        "JMSDeliveryMode" => Some(EvalValue::Str(if record.delivery_mode.is_persistent() {
            "PERSISTENT".to_owned()
        } else {
            "NON_PERSISTENT".to_owned()
        })),
        "JMSMessageID" => Some(EvalValue::Str(record.message.to_string())),
        "JMSTimestamp" => Some(EvalValue::Long(record.sent_at.as_millis() as i64)),
        _ => record.properties.get(name).map(EvalValue::from_value),
    })
}

/// The selector an end-point filters with, derived from its consumers'
/// recorded selectors.
///
/// Returns `Ok(None)` when no consumer had a selector, `Ok(Some(_))` when
/// every consumer used the same selector, and `Err(())` when consumers
/// used different selectors (a queue shared by differently-selective
/// receivers), in which case selector-sensitive checks skip the end-point.
pub fn endpoint_selector(
    store: &TraceStore,
    endpoint: &EndpointId,
) -> Result<Option<Selector>, MixedSelectors> {
    let mut texts: Vec<Option<&str>> = store
        .consumers()
        .iter()
        .filter(|row| &row.endpoint == endpoint)
        .map(|row| row.selector.as_deref())
        .collect();
    texts.dedup();
    match texts.len() {
        0 => Ok(None),
        1 => match texts[0] {
            None => Ok(None),
            Some(text) => Ok(Some(
                Selector::parse(text).expect("selector accepted by the provider must parse"),
            )),
        },
        _ => {
            let unique: std::collections::BTreeSet<_> = texts.into_iter().collect();
            if unique.len() == 1 {
                match unique.into_iter().next().expect("non-empty") {
                    None => Ok(None),
                    Some(text) => Ok(Some(
                        Selector::parse(text)
                            .expect("selector accepted by the provider must parse"),
                    )),
                }
            } else {
                Err(MixedSelectors)
            }
        }
    }
}

/// Marker error: an end-point's consumers used differing selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixedSelectors;

/// Effective sends grouped by producer and sorted by the producer's send
/// sequence — the order Definition 3's *next message* walks.
pub fn sends_by_producer(store: &TraceStore) -> BTreeMap<ProducerId, Vec<&SendRow>> {
    let mut map: BTreeMap<ProducerId, Vec<&SendRow>> = BTreeMap::new();
    for row in store.effective_sends() {
        map.entry(row.record.producer).or_default().push(row);
    }
    for rows in map.values_mut() {
        rows.sort_by_key(|row| row.record.sequence);
    }
    map
}

/// Definition 3: the message produced immediately after `sequence` by the
/// same producer, within an already-sorted send list.
pub fn next_message<'a>(sends: &[&'a SendRow], sequence: u64) -> Option<&'a SendRow> {
    let index = sends
        .binary_search_by_key(&sequence, |row| row.record.sequence)
        .ok()?;
    sends.get(index + 1).copied()
}

/// Effective receives at one end-point, in receive order.
pub fn receives_at<'a>(store: &'a TraceStore, endpoint: &EndpointId) -> Vec<&'a ReceiveRow> {
    store
        .effective_receives()
        .filter(|row| &row.endpoint == endpoint)
        .collect()
}

/// Definition 4 with the harness convention for never-closed groups: the
/// last close of the end-point, or the end of the trace if no consumer of
/// it ever closed.
pub fn close_bound(store: &TraceStore, endpoint: &EndpointId) -> Timestamp {
    store.last_close(endpoint).unwrap_or(store.trace_end())
}

/// Definitions 5 and 6 materialised for one (end-point, producer) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirstLast {
    /// Sequence number of the first required message (Definition 6).
    pub first_sequence: u64,
    /// Sequence number of the last required message (Definition 5), or
    /// `u64::MAX` when the recursion never terminates (a queue end-point
    /// that received nothing: everything sent is required).
    pub last_sequence: u64,
}

/// Computes the first/last window of Property 2 for `producer` at
/// `endpoint`, or `None` when the end-point imposes no requirement on the
/// producer (nothing sent; or a subscription that never received from it,
/// which subscription latency excuses).
pub fn first_last(
    endpoint: &EndpointId,
    producer_sends: &[&SendRow],
    endpoint_receives: &[&ReceiveRow],
    producer: ProducerId,
    close_bound: Timestamp,
) -> Option<FirstLast> {
    if producer_sends.is_empty() {
        return None;
    }
    // Receives of this producer at this end-point, received before the
    // last close (Definition 5's qualifier).
    let timely: Vec<&&ReceiveRow> = endpoint_receives
        .iter()
        .filter(|row| row.record.producer == producer && row.at <= close_bound)
        .collect();
    let last_sequence = timely.iter().map(|row| row.record.sequence).max();
    let first_sequence = match endpoint {
        // Definition 6, queues: the first message sent by p.
        EndpointId::Queue(_) => producer_sends[0].record.sequence,
        // Definition 6, subscriptions: the first message sent by p that
        // was received by a subscriber (any receive qualifies, not only
        // timely ones — the close qualifier is Definition 5's).
        EndpointId::DurableSubscription { .. } | EndpointId::NonDurableSubscription { .. } => {
            endpoint_receives
                .iter()
                .filter(|row| row.record.producer == producer)
                .map(|row| row.record.sequence)
                .min()?
        }
    };
    let last_sequence = match last_sequence {
        Some(sequence) => sequence.max(first_sequence),
        // No timely receives: a queue still requires everything from the
        // first message on (the recursion of Property 2 never meets a
        // last message); a subscription without receives was already
        // excluded by `?` above, except when its only receives came after
        // the close — then nothing more than the first is required.
        None => match endpoint {
            EndpointId::Queue(_) => u64::MAX,
            _ => first_sequence,
        },
    };
    Some(FirstLast {
        first_sequence,
        last_sequence,
    })
}

/// Definition 7: whether a sent message is *possibly received* at an
/// end-point — its destination is covered and the end-point's selector
/// (if any) accepts it.
pub fn possibly_received(
    endpoint: &EndpointId,
    selector: Option<&Selector>,
    record: &MessageRecord,
) -> bool {
    endpoint_covers_destination(endpoint, &record.destination)
        && selector.is_none_or(|s| selector_accepts_record(s, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmst_api::destination::QueueName;
    use jmst_api::id::{ConsumerId, MessageId, NodeId, SessionId};
    use jmst_api::modes::{DeliveryMode, Priority, SessionMode, TimeToLive};
    use jmst_api::value::Value;
    use jmst_store::event::{Event, EventKind};
    use jmst_store::trace::Trace;

    fn record(
        message: u64,
        producer: u64,
        sequence: u64,
        destination: Destination,
    ) -> MessageRecord {
        MessageRecord {
            message: MessageId::from_raw(message),
            producer: ProducerId::from_raw(producer),
            sequence,
            destination,
            priority: Priority::DEFAULT,
            delivery_mode: DeliveryMode::Persistent,
            time_to_live: TimeToLive::FOREVER,
            sent_at: Timestamp::from_millis(sequence),
            body_bytes: 1,
            redelivered: false,
            delivery_count: 1,
            properties: Default::default(),
        }
    }

    fn send_event(seq: u64, at: u64, rec: MessageRecord) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at),
            node: NodeId::from_raw(0),
            kind: EventKind::Send {
                record: rec,
                session: SessionId::from_raw(1),
                tx: None,
            },
        }
    }

    fn receive_event(seq: u64, at: u64, endpoint: EndpointId, rec: MessageRecord) -> Event {
        Event {
            seq,
            at: Timestamp::from_millis(at),
            node: NodeId::from_raw(0),
            kind: EventKind::Receive {
                consumer: ConsumerId::from_raw(50),
                endpoint,
                record: rec,
                session: SessionId::from_raw(2),
                tx: None,
            },
        }
    }

    fn queue_endpoint() -> EndpointId {
        EndpointId::for_queue(QueueName::new("q"))
    }

    #[test]
    fn endpoint_destination_coverage() {
        let queue = queue_endpoint();
        assert!(endpoint_covers_destination(
            &queue,
            &Destination::queue("q")
        ));
        assert!(!endpoint_covers_destination(
            &queue,
            &Destination::queue("r")
        ));
        assert!(!endpoint_covers_destination(
            &queue,
            &Destination::topic("q")
        ));
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(1));
        assert!(endpoint_covers_destination(&sub, &Destination::topic("t")));
        assert!(!endpoint_covers_destination(&sub, &Destination::topic("u")));
    }

    #[test]
    fn selector_evaluation_on_records() {
        let selector = Selector::parse("JMSPriority = 4 AND region = 'emea'").unwrap();
        let mut rec = record(1, 1, 0, Destination::topic("t"));
        assert!(!selector_accepts_record(&selector, &rec));
        rec.properties.set("region", Value::from("emea")).unwrap();
        assert!(selector_accepts_record(&selector, &rec));
    }

    #[test]
    fn sends_by_producer_sorts_by_sequence() {
        let trace = Trace::from_events(vec![
            send_event(0, 5, record(2, 1, 1, Destination::queue("q"))),
            send_event(1, 3, record(1, 1, 0, Destination::queue("q"))),
            send_event(2, 7, record(3, 2, 0, Destination::queue("q"))),
        ]);
        let store = TraceStore::build(&trace);
        let by_producer = sends_by_producer(&store);
        assert_eq!(by_producer.len(), 2);
        let p1 = &by_producer[&ProducerId::from_raw(1)];
        assert_eq!(p1.len(), 2);
        assert_eq!(p1[0].record.sequence, 0);
        assert_eq!(next_message(p1, 0).unwrap().record.sequence, 1);
        assert_eq!(next_message(p1, 1), None);
        assert_eq!(next_message(p1, 99), None);
    }

    #[test]
    fn first_last_for_queue_includes_unreceived_head() {
        let q = Destination::queue("q");
        let trace = Trace::from_events(vec![
            send_event(0, 1, record(1, 1, 0, q.clone())),
            send_event(1, 2, record(2, 1, 1, q.clone())),
            send_event(2, 3, record(3, 1, 2, q.clone())),
            // Only the middle message is received.
            receive_event(3, 4, queue_endpoint(), record(2, 1, 1, q.clone())),
        ]);
        let store = TraceStore::build(&trace);
        let sends = sends_by_producer(&store);
        let receives = receives_at(&store, &queue_endpoint());
        let window = first_last(
            &queue_endpoint(),
            &sends[&ProducerId::from_raw(1)],
            &receives,
            ProducerId::from_raw(1),
            close_bound(&store, &queue_endpoint()),
        )
        .unwrap();
        // Queue: first = first sent (0); last = last received (1).
        assert_eq!(window.first_sequence, 0);
        assert_eq!(window.last_sequence, 1);
    }

    #[test]
    fn first_last_for_queue_with_no_receives_requires_everything() {
        let q = Destination::queue("q");
        let trace = Trace::from_events(vec![send_event(0, 1, record(1, 1, 0, q))]);
        let store = TraceStore::build(&trace);
        let sends = sends_by_producer(&store);
        let window = first_last(
            &queue_endpoint(),
            &sends[&ProducerId::from_raw(1)],
            &[],
            ProducerId::from_raw(1),
            close_bound(&store, &queue_endpoint()),
        )
        .unwrap();
        assert_eq!(window.first_sequence, 0);
        assert_eq!(window.last_sequence, u64::MAX);
    }

    #[test]
    fn first_last_for_subscription_requires_nothing_without_receives() {
        let t = Destination::topic("t");
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(1));
        let trace = Trace::from_events(vec![send_event(0, 1, record(1, 1, 0, t))]);
        let store = TraceStore::build(&trace);
        let sends = sends_by_producer(&store);
        let window = first_last(
            &sub,
            &sends[&ProducerId::from_raw(1)],
            &[],
            ProducerId::from_raw(1),
            close_bound(&store, &sub),
        );
        assert_eq!(window, None);
    }

    #[test]
    fn first_last_for_subscription_spans_received_window() {
        let t = Destination::topic("t");
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(1));
        let trace = Trace::from_events(vec![
            send_event(0, 1, record(1, 1, 0, t.clone())),
            send_event(1, 2, record(2, 1, 1, t.clone())),
            send_event(2, 3, record(3, 1, 2, t.clone())),
            send_event(3, 4, record(4, 1, 3, t.clone())),
            // Subscriber saw seq 1 and seq 2 (subscription latency missed
            // seq 0; seq 3 was in flight at close).
            receive_event(4, 5, sub.clone(), record(2, 1, 1, t.clone())),
            receive_event(5, 6, sub.clone(), record(3, 1, 2, t.clone())),
        ]);
        let store = TraceStore::build(&trace);
        let sends = sends_by_producer(&store);
        let receives = receives_at(&store, &sub);
        let window = first_last(
            &sub,
            &sends[&ProducerId::from_raw(1)],
            &receives,
            ProducerId::from_raw(1),
            close_bound(&store, &sub),
        )
        .unwrap();
        assert_eq!(window.first_sequence, 1);
        assert_eq!(window.last_sequence, 2);
    }

    #[test]
    fn last_message_respects_close_bound() {
        let q = Destination::queue("q");
        let endpoint = queue_endpoint();
        let trace = Trace::from_events(vec![
            Event {
                seq: 0,
                at: Timestamp::from_millis(0),
                node: NodeId::from_raw(0),
                kind: EventKind::ConsumerCreated {
                    consumer: ConsumerId::from_raw(50),
                    endpoint: endpoint.clone(),
                    session_mode: SessionMode::AutoAcknowledge,
                    selector: None,
                },
            },
            send_event(1, 1, record(1, 1, 0, q.clone())),
            send_event(2, 2, record(2, 1, 1, q.clone())),
            receive_event(3, 3, endpoint.clone(), record(1, 1, 0, q.clone())),
            Event {
                seq: 4,
                at: Timestamp::from_millis(4),
                node: NodeId::from_raw(0),
                kind: EventKind::ConsumerClosed {
                    consumer: ConsumerId::from_raw(50),
                    endpoint: endpoint.clone(),
                },
            },
            // Received *after* the last close: does not extend the window.
            receive_event(5, 5, endpoint.clone(), record(2, 1, 1, q.clone())),
        ]);
        let store = TraceStore::build(&trace);
        assert_eq!(close_bound(&store, &endpoint), Timestamp::from_millis(4));
        let sends = sends_by_producer(&store);
        let receives = receives_at(&store, &endpoint);
        let window = first_last(
            &endpoint,
            &sends[&ProducerId::from_raw(1)],
            &receives,
            ProducerId::from_raw(1),
            close_bound(&store, &endpoint),
        )
        .unwrap();
        assert_eq!(window.last_sequence, 0);
    }

    #[test]
    fn endpoint_selector_resolution() {
        let endpoint = queue_endpoint();
        let consumer_created = |seq: u64, id: u64, selector: Option<&str>| Event {
            seq,
            at: Timestamp::from_millis(seq),
            node: NodeId::from_raw(0),
            kind: EventKind::ConsumerCreated {
                consumer: ConsumerId::from_raw(id),
                endpoint: endpoint.clone(),
                session_mode: SessionMode::AutoAcknowledge,
                selector: selector.map(str::to_owned),
            },
        };
        // No consumers: no selector.
        let store = TraceStore::build(&Trace::new());
        assert_eq!(endpoint_selector(&store, &endpoint), Ok(None));
        // One selector, used consistently.
        let store = TraceStore::build(&Trace::from_events(vec![
            consumer_created(0, 1, Some("a = 1")),
            consumer_created(1, 2, Some("a = 1")),
        ]));
        assert!(matches!(endpoint_selector(&store, &endpoint), Ok(Some(_))));
        // Mixed selectors.
        let store = TraceStore::build(&Trace::from_events(vec![
            consumer_created(0, 1, Some("a = 1")),
            consumer_created(1, 2, None),
        ]));
        assert_eq!(endpoint_selector(&store, &endpoint), Err(MixedSelectors));
    }

    #[test]
    fn possibly_received_applies_selector() {
        let sub = EndpointId::non_durable("t".into(), ConsumerId::from_raw(1));
        let selector = Selector::parse("kind = 'a'").unwrap();
        let mut rec = record(1, 1, 0, Destination::topic("t"));
        assert!(possibly_received(&sub, None, &rec));
        assert!(!possibly_received(&sub, Some(&selector), &rec));
        rec.properties.set("kind", Value::from("a")).unwrap();
        assert!(possibly_received(&sub, Some(&selector), &rec));
        let other = record(2, 1, 1, Destination::topic("other"));
        assert!(!possibly_received(&sub, None, &other));
    }
}
