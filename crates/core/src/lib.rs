//! # jmst-core — the formal JMS behaviour model and trace analysis
//!
//! This crate is the reproduction of the paper's contribution proper:
//! a formal model of JMS behaviour derived from group-communication-system
//! properties, evaluated as queries over execution traces.
//!
//! * [`defs`] — Definitions 1–7 of the paper (sent/received messages,
//!   next message, last close, last/first message, possibly-received);
//! * [`properties`] — the safety checkers: Property 1 delivery integrity,
//!   Property 2 required messages, Property 3 ordering, Property 4
//!   priority, Property 5 expiry (with the simple, histogram, and normal
//!   expectation models), plus the duplicate-delivery check;
//! * [`perf`] — the §3.2 performance measures: producer/consumer
//!   throughput in messages and bytes per second, delay min/max/mean/σ,
//!   and the per-producer / per-consumer unfairness measures;
//! * [`analyzer`] — [`StreamingAnalyzer`] feeds every event through the
//!   incremental checkers in one pass; [`Analyzer`] is the batch driver
//!   that replays a recorded trace through it and builds an
//!   [`AnalysisReport`];
//! * [`stream`] — the building blocks of the incremental checkers:
//!   transaction resolution, run-window gating, selector tracking;
//! * [`config`] / [`violation`] — knobs and findings.
//!
//! # Examples
//!
//! ```
//! use jmst_core::{Analyzer, AnalysisConfig};
//! use jmst_store::Trace;
//!
//! let analyzer = Analyzer::with_config(AnalysisConfig::all_checks());
//! let report = analyzer.analyze(&Trace::new());
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyzer;
pub mod config;
pub mod defs;
pub mod perf;
pub mod properties;
pub mod replay;
pub mod report;
pub mod stream;
pub mod violation;

#[cfg(test)]
pub(crate) mod test_support;

pub use analyzer::{
    AnalysisReport, Analyzer, CheckerRegistry, NamedPropertyOutcome, PropertyChecker,
    StreamingAnalyzer,
};
pub use config::{AnalysisConfig, ExpiryConfig, ExpiryModel, PriorityConfig};
pub use perf::{PerformanceReport, Throughput};
pub use properties::expiry::ExpiryBreakdown;
pub use replay::{partition_journal, replay_events, InterruptedTest, JournalReplay, ReplayedTest};
pub use violation::{PropertyKind, Violation};
