//! The fault-detection matrix as a generated artifact.
//!
//! EXPERIMENTS.md's "fault-detection matrix" table used to be prose
//! maintained by hand; it is now rendered from an actual run of the
//! seeded-defect corpus, between marker comments:
//!
//! ```text
//! <!-- jmst-corpus:matrix:begin -->
//! | injected defect | scenario | verdict | flagged by |
//! ...
//! <!-- jmst-corpus:matrix:end -->
//! ```
//!
//! `jmst_corpus matrix` prints the table; `--check FILE` re-runs the
//! corpus and fails when the committed block drifted from what the
//! pipeline actually does; `--update FILE` rewrites the block in place.

use crate::expect::FaultKind;
use crate::generator::{build_seed_entry, AckMode};
use crate::runner::{analysis_for, run_spec, VerdictKind};
use jmst_api::destination::Destination;
use jmst_api::modes::{Priority, TimeToLive};
use jmst_core::{AnalysisConfig, PriorityConfig};
use jmst_harness::{ConsumerSpec, FaultPlan, NodeSpec, ProducerSpec, TestSpec};
use std::time::Duration;

/// Opening marker of the generated block.
pub const MATRIX_BEGIN: &str = "<!-- jmst-corpus:matrix:begin -->";
/// Closing marker of the generated block.
pub const MATRIX_END: &str = "<!-- jmst-corpus:matrix:end -->";

/// One row of the matrix: an injected defect, the scenario that
/// carries it, and the analyzer configuration it is judged under.
pub struct MatrixRow {
    /// Scenario name (also rendered in the table).
    pub name: &'static str,
    /// Human description of the injected defect.
    pub injected: &'static str,
    /// The scenario.
    pub spec: TestSpec,
    /// The analyzer configuration for this row.
    pub analysis: AnalysisConfig,
}

fn seeded(name: &'static str, injected: &'static str, fault: FaultKind) -> MatrixRow {
    let mut entry = build_seed_entry(AckMode::Auto, fault, true);
    entry.spec.name = name.to_owned();
    MatrixRow {
        name,
        injected,
        spec: entry.spec,
        analysis: analysis_for(fault),
    }
}

/// The matrix rows: the control, one row per seeded defect, and the
/// two QoS property-DSL rows.
pub fn matrix_rows() -> Vec<MatrixRow> {
    let mut rows = vec![
        seeded("matrix-clean", "none (control)", FaultKind::Clean),
        seeded("matrix-drop", "drop 25% of deliveries", FaultKind::Drop),
        seeded(
            "matrix-duplicate",
            "deliver 25% of messages twice",
            FaultKind::Duplicate,
        ),
        seeded(
            "matrix-reorder",
            "hold back 15% of messages for 60 ms",
            FaultKind::Reorder,
        ),
        seeded("matrix-forge", "forge 15% extra messages", FaultKind::Forge),
        seeded(
            "matrix-expiry",
            "deliver expired messages (TTL ignored, 10 ms delay)",
            FaultKind::Expiry,
        ),
    ];
    rows.push(priority_row());
    rows.push(seeded(
        "matrix-crash-loss",
        "lose persistent messages across a mid-run crash",
        FaultKind::CrashLoss,
    ));
    rows.push(qos_row(
        "matrix-dsl-deadline",
        "reorder plan vs a compiled `deadline 30ms` property",
        FaultKind::Reorder,
    ));
    rows.push(qos_row(
        "matrix-dsl-slo",
        "drop 25% of a 120-message run vs `receives >= 110`",
        FaultKind::Drop,
    ));
    rows
}

/// A QoS property-DSL row: the scenario's own `[properties]` section is
/// the oracle, compiled onto the streaming core by the prince.
fn qos_row(name: &'static str, injected: &'static str, fault: FaultKind) -> MatrixRow {
    let mut entry = crate::generator::build_qos_entry(AckMode::Auto, fault);
    entry.spec.name = name.to_owned();
    MatrixRow {
        name,
        injected,
        spec: entry.spec,
        analysis: analysis_for(fault),
    }
}

/// The ignore-priority row: the backlog-forming priority workload of
/// the E7 experiment, judged by the paper's §5 strict pairwise priority
/// analysis (the best-effort model accepts FIFO ties; the strict model
/// convicts them).
fn priority_row() -> MatrixRow {
    let mut node = NodeSpec::new("n0");
    for level in 0..10u8 {
        node = node.producer(
            ProducerSpec::steady(Destination::queue("q"), 60.0, 64)
                .with_priority(Priority::new(level).expect("0..=9 is valid"))
                .with_ttl(TimeToLive::FOREVER),
        );
    }
    node = node.consumer(
        ConsumerSpec::auto(Destination::queue("q")).with_think_time(Duration::from_millis(2)),
    );
    let mut plan = FaultPlan::none();
    plan.ignore_priority = true;
    let spec = TestSpec::new("matrix-priority")
        .with_seed(7)
        .with_periods(
            Duration::from_millis(50),
            Duration::from_millis(500),
            Duration::from_secs(5),
        )
        .node(node)
        .with_faults(plan);
    let mut analysis = AnalysisConfig::strict_safety_only();
    analysis.check_priority = true;
    analysis.priority = PriorityConfig {
        strict: true,
        strict_slack: Duration::from_millis(20),
        ..PriorityConfig::default()
    };
    MatrixRow {
        name: "matrix-priority",
        injected: "serve strictly FIFO, ignoring priority (strict §5 analysis)",
        spec,
        analysis,
    }
}

/// Runs every row and renders the markdown block (markers included).
pub fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(MATRIX_BEGIN);
    out.push('\n');
    out.push_str(
        "<!-- generated by `cargo run --release --example jmst_corpus -- matrix` — do not edit by hand -->\n",
    );
    out.push_str("| injected defect | scenario | verdict | flagged by |\n");
    out.push_str("|---|---|---|---|\n");
    for row in matrix_rows() {
        let observed = run_spec(&row.spec, row.analysis);
        let flagged = if observed.properties.is_empty() {
            "—".to_owned()
        } else {
            observed
                .properties
                .iter()
                .map(|property| property.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        out.push_str(&format!(
            "| {} | `{}` | {} | {} |\n",
            row.injected,
            row.name,
            verdict_cell(observed.verdict),
            flagged
        ));
    }
    out.push_str(MATRIX_END);
    out.push('\n');
    out
}

fn verdict_cell(verdict: VerdictKind) -> &'static str {
    match verdict {
        VerdictKind::Pass => "PASSED",
        VerdictKind::Violated => "VIOLATED",
        VerdictKind::Hung => "HUNG",
        VerdictKind::Inconclusive => "INCONCLUSIVE",
        VerdictKind::Invalid => "INVALID",
    }
}

/// Extracts the generated block (markers included) from a document.
pub fn extract_block(document: &str) -> Option<&str> {
    let begin = document.find(MATRIX_BEGIN)?;
    let end = document[begin..].find(MATRIX_END)?;
    Some(&document[begin..begin + end + MATRIX_END.len()])
}

/// Replaces the generated block in a document with `block` (which must
/// itself carry the markers, as [`render_matrix`] output does).
pub fn replace_block(document: &str, block: &str) -> Result<String, String> {
    let current = extract_block(document)
        .ok_or_else(|| format!("document has no {MATRIX_BEGIN} .. {MATRIX_END} block"))?;
    Ok(document.replacen(current, block.trim_end(), 1))
}

/// `Ok(())` when the document's committed block matches `block` exactly
/// (modulo trailing whitespace); otherwise both versions, for the diff.
pub fn check_document(document: &str, block: &str) -> Result<(), String> {
    let committed = extract_block(document)
        .ok_or_else(|| format!("document has no {MATRIX_BEGIN} .. {MATRIX_END} block"))?;
    if committed.trim_end() == block.trim_end() {
        Ok(())
    } else {
        Err(format!(
            "committed matrix has drifted from the pipeline's actual behaviour\n\
             --- committed ---\n{committed}\n--- generated ---\n{block}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distinct_and_valid() {
        let rows = matrix_rows();
        assert_eq!(rows.len(), 10);
        let mut names: Vec<&str> = rows.iter().map(|row| row.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        for row in &rows {
            row.spec
                .validate()
                .unwrap_or_else(|error| panic!("{}: {error}", row.name));
        }
    }

    #[test]
    fn block_extraction_and_replacement() {
        let document = format!(
            "# Title\n\nprose before\n\n{MATRIX_BEGIN}\nold table\n{MATRIX_END}\n\nprose after\n"
        );
        let block = format!("{MATRIX_BEGIN}\nnew table\n{MATRIX_END}\n");
        assert!(extract_block(&document)
            .expect("found")
            .contains("old table"));
        let updated = replace_block(&document, &block).expect("replaced");
        assert!(updated.contains("new table"));
        assert!(!updated.contains("old table"));
        assert!(updated.contains("prose before"));
        assert!(updated.contains("prose after"));
        assert!(check_document(&updated, &block).is_ok());
        assert!(check_document(&document, &block).is_err());
        assert!(check_document("no markers here", &block).is_err());
    }
}
