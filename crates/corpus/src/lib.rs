//! # jmst-corpus — the scenario corpus engine
//!
//! Three instruments that turn the scenario text format into a test
//! corpus the analysis pipeline is continuously held to:
//!
//! * [`generator`] — enumerates the cross-product of workload shape ×
//!   acknowledgement mode × fault plan × shard count × retry policy ×
//!   open/closed loop into a few hundred lint-clean `.cfg` scenarios,
//!   each annotated with the verdict the pipeline must reach
//!   ([`expect`]);
//! * [`fuzzer`] — a coverage-guided mutation loop over spec knobs and
//!   fault scripts, keyed on a map of (fault kind × verdict × flagged
//!   property) tuples ([`coverage`]), keeping inputs that light new
//!   tuples and delta-minimising any scenario whose observed verdict
//!   contradicts its annotation;
//! * [`matrix`] — EXPERIMENTS.md's fault-detection matrix as a
//!   generated artifact: rendered from a real run of the seeded-defect
//!   corpus and re-checked so documentation drift fails loudly.
//!
//! The [`runner`] gives all three the same road a campaign test takes:
//! lint, then the daemon prince against a reference broker built from
//! the scenario's own fault plan.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coverage;
pub mod expect;
pub mod fuzzer;
pub mod generator;
pub mod matrix;
pub mod runner;

pub use coverage::{reachable_tuples, CoverageKey, CoverageMap};
pub use expect::{ExpectedVerdict, FaultKind};
pub use fuzzer::{fuzz, minimize, seed_entries, FuzzConfig, FuzzOutcome};
pub use generator::{generate_corpus, AckMode, CorpusEntry};
pub use matrix::{render_matrix, MATRIX_BEGIN, MATRIX_END};
pub use runner::{check_entry, run_entry, run_spec, Observed, VerdictKind};
