//! The corpus generator: enumerates the cross-product of workload
//! shape × acknowledgement mode × fault plan × shard count × retry
//! policy × open/closed loop into a few hundred scenario files, each
//! carrying an expected-verdict annotation.
//!
//! Every entry uses fault parameters proven deterministic by the
//! integration suite (the seeds and probabilities of
//! `tests/fault_detection.rs`, the crash-loss recipe of
//! `tests/crash_recovery.rs`, the TTL ∈ {1 ms, ∞} expiry configuration
//! of `tests/expiry_and_priority.rs`), so the annotations are an oracle
//! the runner can actually hold the pipeline to.

use crate::expect::{render_annotations, ExpectedVerdict, FaultKind};
use jmst_api::body::BodyKind;
use jmst_api::destination::Destination;
use jmst_api::modes::{DeliveryMode, SessionMode, TimeToLive};
use jmst_api::value::Value;
use jmst_core::PropertyKind;
use jmst_harness::{
    serialize_spec, ConsumerSpec, CrashPlan, FaultPlan, NodeSpec, ProducerSpec, ReconnectSpec,
    RetryPolicy, SerializeError, TestSpec,
};
use jmst_props::PropertySpec;
use jmst_sim::ArrivalProcess;
use std::time::Duration;

/// The consumer acknowledgement modes the corpus crosses with every
/// fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AckMode {
    /// `auto` — acknowledged on receipt, batch 1.
    Auto,
    /// `client-ack 4` — explicit acknowledgement every 4 messages.
    ClientAck,
    /// `dups-ok` — lazy acknowledgement, batch 1.
    DupsOk,
    /// `transacted 4` — session transactions committed every 4 messages.
    Transacted,
}

impl AckMode {
    /// Every acknowledgement mode, in canonical order.
    pub const ALL: [AckMode; 4] = [
        AckMode::Auto,
        AckMode::ClientAck,
        AckMode::DupsOk,
        AckMode::Transacted,
    ];

    /// File-name token.
    pub fn name(self) -> &'static str {
        match self {
            AckMode::Auto => "auto",
            AckMode::ClientAck => "clientack",
            AckMode::DupsOk => "dupsok",
            AckMode::Transacted => "txn",
        }
    }

    /// The session mode and acknowledge/commit batch this mode runs.
    pub fn session(self) -> (SessionMode, u32) {
        match self {
            AckMode::Auto => (SessionMode::AutoAcknowledge, 1),
            AckMode::ClientAck => (SessionMode::ClientAcknowledge, 4),
            AckMode::DupsOk => (SessionMode::DupsOkAcknowledge, 1),
            AckMode::Transacted => (SessionMode::Transacted, 4),
        }
    }
}

/// One generated scenario: the spec, its defect family, and the verdict
/// the analysis pipeline is expected to reach.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Unique scenario name (also the spec name and the file stem).
    pub name: String,
    /// The full test specification.
    pub spec: TestSpec,
    /// The injected-defect family.
    pub fault: FaultKind,
    /// The annotated verdict.
    pub expect: ExpectedVerdict,
}

impl CorpusEntry {
    /// The file name this entry is written under.
    pub fn file_name(&self) -> String {
        format!("{}.cfg", self.name)
    }

    /// Renders the scenario file: annotation header + serialized spec.
    pub fn config_text(&self) -> Result<String, SerializeError> {
        let body = serialize_spec(&self.spec)?;
        Ok(format!(
            "{}\n{body}",
            render_annotations(self.fault, self.expect)
        ))
    }

    /// Reads a scenario file back into an entry. Errors when the
    /// annotation header is missing or the body does not parse.
    pub fn from_config_text(text: &str) -> Result<CorpusEntry, String> {
        let (fault, expect) = crate::expect::parse_annotations(text)
            .ok_or_else(|| "missing or unparseable # fault: / # expect: annotations".to_owned())?;
        let spec = jmst_harness::parse_spec(text).map_err(|error| error.to_string())?;
        Ok(CorpusEntry {
            name: spec.name.clone(),
            spec,
            fault,
            expect,
        })
    }
}

/// The verdict a correctly working analysis pipeline reaches for a
/// fault kind. `retry_on` describes the harness retry policy (it
/// decides how connect failures resolve); `ack` is the consumer
/// acknowledgement mode (it decides whether lost acknowledgements are
/// observable at all).
pub fn expected_verdict(fault: FaultKind, retry_on: bool, ack: AckMode) -> ExpectedVerdict {
    match fault {
        FaultKind::Clean => ExpectedVerdict::Pass,
        FaultKind::Drop => ExpectedVerdict::Violated(PropertyKind::RequiredMessages),
        FaultKind::Duplicate => ExpectedVerdict::Violated(PropertyKind::DuplicateDelivery),
        FaultKind::Reorder => ExpectedVerdict::Violated(PropertyKind::MessageOrdering),
        FaultKind::Forge => ExpectedVerdict::Violated(PropertyKind::DeliveryIntegrity),
        FaultKind::Expiry => ExpectedVerdict::Violated(PropertyKind::ExpiredMessages),
        FaultKind::CrashLoss => ExpectedVerdict::Violated(PropertyKind::RequiredMessages),
        FaultKind::Connect => {
            if retry_on {
                ExpectedVerdict::Pass
            } else {
                ExpectedVerdict::Inconclusive
            }
        }
        FaultKind::Stall => ExpectedVerdict::Pass,
        // Only an explicit client acknowledgement travels through the
        // lossy ack path; when it is swallowed, the broker keeps the
        // deliveries in flight and the consumer's mid-run reconnects
        // re-receive messages whose acknowledgement completed at the
        // client — flagged by the duplicate-delivery check. Auto-ack has
        // nothing in flight, and dups-ok / transacted acknowledgements
        // take the batch/commit path the fault does not touch.
        FaultKind::AckLoss => {
            if ack == AckMode::ClientAck {
                ExpectedVerdict::Violated(PropertyKind::DuplicateDelivery)
            } else {
                ExpectedVerdict::Pass
            }
        }
    }
}

/// The proven fault plan for a kind, or `None` for `Clean`.
/// `retry_on = false` hardens the connect plan so a retry-less run
/// deterministically fails to come up.
pub fn fault_plan(fault: FaultKind, retry_on: bool) -> Option<FaultPlan> {
    let mut plan = FaultPlan::none();
    match fault {
        FaultKind::Clean => return None,
        FaultKind::Drop => {
            plan.seed = 11;
            plan.drop_probability = 0.25;
        }
        FaultKind::Duplicate => {
            plan.seed = 12;
            plan.duplicate_probability = 0.25;
        }
        FaultKind::Reorder => {
            plan.seed = 13;
            plan.reorder_probability = 0.15;
            plan.reorder_delay = Duration::from_millis(60);
        }
        FaultKind::Forge => {
            plan.seed = 14;
            plan.forge_probability = 0.15;
        }
        FaultKind::Expiry => {
            plan.seed = 18;
            plan.ignore_expiry = true;
            plan.delivery_delay = Duration::from_millis(10);
        }
        FaultKind::CrashLoss => {
            plan.seed = 19;
            plan.lose_persistent_on_crash = true;
            // Keeps a window of messages inside the broker at crash time,
            // so the crash actually has something to lose.
            plan.delivery_delay = Duration::from_millis(50);
        }
        FaultKind::Connect => {
            plan.seed = 15;
            plan.connect_failure_probability = if retry_on { 0.2 } else { 0.9 };
        }
        FaultKind::Stall => {
            plan.seed = 16;
            plan.stall_probability = 0.05;
            plan.stall_duration = Duration::from_millis(2);
        }
        FaultKind::AckLoss => {
            plan.seed = 17;
            // Near-certain loss: every reconnect boundary then sits on a
            // tail of believed-acknowledged deliveries, so the duplicate
            // conviction does not hinge on one lucky coin flip.
            plan.ack_loss_probability = 0.9;
        }
    }
    Some(plan)
}

/// Workload families the generator crosses the fault axis with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Steady 300/s, 128-byte text bodies, queue `q`.
    Base,
    /// Steady base workload, connect faults, retry disabled.
    RetryOff,
    /// Bursts of 20 every 50 ms, 512-byte bytes bodies, queue `q`.
    Burst,
    /// Steady workload on topic `t` with two subscribers.
    Topic,
    /// Steady workload with a typed property and a selecting consumer.
    Selector,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Base => "base",
            Family::RetryOff => "retryoff",
            Family::Burst => "burst",
            Family::Topic => "topic",
            Family::Selector => "selector",
        }
    }
}

/// Build one entry of a family. `open` selects the open-loop engine;
/// crash scenarios only exist closed-loop (the crash recipe is tuned for
/// the closed-loop drivers).
#[allow(clippy::too_many_lines)]
fn build_entry(
    family: Family,
    ack: AckMode,
    fault: FaultKind,
    shards: u32,
    open: bool,
) -> CorpusEntry {
    let retry_on = family != Family::RetryOff;
    let mut name = format!("{}-{}-{}", family.name(), ack.name(), fault.name());
    if shards != 1 {
        name.push_str(&format!("-s{shards}"));
    }
    if open {
        name.push_str("-open");
    }

    let destination = match family {
        Family::Topic => Destination::topic("t"),
        _ => Destination::queue("q"),
    };
    let (mode, batch) = ack.session();
    let consumer = || {
        let consumer = ConsumerSpec::auto(destination.clone()).with_mode(mode, batch);
        if fault == FaultKind::AckLoss {
            // Lost acknowledgements only become visible when the consumer
            // comes back and re-receives what the broker still holds in
            // flight: reconnect a few times mid-run.
            consumer.with_reconnect(ReconnectSpec {
                after_messages: 20,
                pause: Duration::from_millis(10),
                max_cycles: 4,
            })
        } else {
            consumer
        }
    };

    let mut node = NodeSpec::new("n0");
    match fault {
        // The paper's expiry configuration: half the messages at a 1 ms
        // TTL (expected to expire under the 10 ms delivery delay), half
        // at ∞ (must arrive).
        FaultKind::Expiry => {
            node = node
                .producer(
                    producer_for(family, destination.clone(), 150.0)
                        .with_ttl(TimeToLive::from_millis(1)),
                )
                .producer(producer_for(family, destination.clone(), 150.0));
        }
        // The crash-loss recipe needs persistent messages in flight when
        // the broker goes down.
        FaultKind::CrashLoss => {
            node = node.producer(
                producer_for(family, destination.clone(), 200.0)
                    .with_delivery_mode(DeliveryMode::Persistent),
            );
        }
        _ => {
            node = node.producer(producer_for(family, destination.clone(), 300.0));
        }
    }
    node = node.consumer(consumer());
    if family == Family::Topic {
        node = node.consumer(consumer());
    }

    let (warm_up, run, warm_down) = match fault {
        FaultKind::Expiry => (30, 400, 3000),
        FaultKind::CrashLoss => (30, 500, 4000),
        _ => (30, 300, 3000),
    };
    let mut spec = TestSpec::new(name.clone())
        .with_seed(7)
        .with_periods(
            Duration::from_millis(warm_up),
            Duration::from_millis(run),
            Duration::from_millis(warm_down),
        )
        .node(node)
        .with_shards(shards);
    if let Some(plan) = fault_plan(fault, retry_on) {
        spec = spec.with_faults(plan);
    }
    if fault == FaultKind::CrashLoss {
        spec = spec.with_crash(CrashPlan {
            crash_after: Duration::from_millis(250),
            down_for: Duration::from_millis(80),
        });
    }
    if !retry_on {
        spec = spec.with_retry(RetryPolicy::disabled());
    }
    if open {
        spec = spec.open_loop();
    }

    CorpusEntry {
        name,
        spec,
        fault,
        expect: expected_verdict(fault, retry_on, ack),
    }
}

/// The proven closed-loop single-shard template for a fault kind — the
/// fuzzer's seed corpus. `retry_on = false` selects the retry-disabled
/// connect variant (the inconclusive branch).
pub fn build_seed_entry(ack: AckMode, fault: FaultKind, retry_on: bool) -> CorpusEntry {
    if retry_on {
        build_entry(Family::Base, ack, fault, 1, false)
    } else {
        build_entry(Family::RetryOff, ack, fault, 1, false)
    }
}

/// One entry of the QoS property-DSL family: the oracle is a
/// `[properties]` declaration compiled onto the streaming core, not a
/// built-in check.
///
/// * `Clean` — a deadline and a tail-latency SLO over an unfaulted
///   broker; both must hold.
/// * `Reorder` — the proven reorder plan holds 15% of messages back 60 ms
///   against a 30 ms per-message deadline (30 ms clears every jittered
///   reorder delay the fuzzer may pick, which stays ≥ 40 ms).
/// * `Drop` — a 120-message limited producer under 25% drops against a
///   `receives >= 110` floor.
///
/// Any other fault kind panics: the family's oracles are only proven for
/// these three.
pub fn build_qos_entry(ack: AckMode, fault: FaultKind) -> CorpusEntry {
    let name = format!("qos-{}-{}", ack.name(), fault.name());
    let destination = Destination::queue("q");
    let (mode, batch) = ack.session();
    let parse = |line: &str| PropertySpec::parse_line(line).expect("qos property parses");
    let (producer, properties, run_ms, expect) = match fault {
        FaultKind::Clean => (
            ProducerSpec::steady(destination.clone(), 300.0, 128),
            vec![
                parse("late = deadline 30ms"),
                parse("tail = latency p99 <= 30ms"),
            ],
            300,
            ExpectedVerdict::Pass,
        ),
        FaultKind::Reorder => (
            ProducerSpec::steady(destination.clone(), 300.0, 128),
            vec![parse("late = deadline 30ms")],
            300,
            ExpectedVerdict::Violated(PropertyKind::Deadline),
        ),
        FaultKind::Drop => (
            ProducerSpec::steady(destination.clone(), 300.0, 128).limited(120),
            vec![parse("floor = receives >= 110")],
            500,
            ExpectedVerdict::Violated(PropertyKind::SloWindow),
        ),
        other => panic!("no proven QoS oracle for fault kind {other}"),
    };
    let mut spec = TestSpec::new(name.clone())
        .with_seed(7)
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(run_ms),
            Duration::from_millis(3000),
        )
        .node(
            NodeSpec::new("n0")
                .producer(producer)
                .consumer(ConsumerSpec::auto(destination).with_mode(mode, batch)),
        )
        .with_properties(properties);
    if let Some(plan) = fault_plan(fault, true) {
        spec = spec.with_faults(plan);
    }
    CorpusEntry {
        name,
        spec,
        fault,
        expect,
    }
}

/// The family's producer shape at the given rate.
fn producer_for(family: Family, destination: Destination, rate: f64) -> ProducerSpec {
    match family {
        Family::Burst => {
            let mut producer =
                ProducerSpec::steady(destination, rate, 512).with_body(BodyKind::Bytes);
            producer.workload = ArrivalProcess::burst(20, Duration::from_millis(50));
            producer
        }
        Family::Selector => {
            ProducerSpec::steady(destination, rate, 128).with_property("p0", Value::Long(1))
        }
        _ => ProducerSpec::steady(destination, rate, 128),
    }
}

/// Generates the full corpus: every family crossed with its fault and
/// mode axes. Deterministic — two calls return identical entries.
pub fn generate_corpus() -> Vec<CorpusEntry> {
    let mut entries = Vec::new();

    // Base family: the full acknowledgement-mode × fault-kind
    // cross-product, at 1 and 8 destination shards, closed- and
    // open-loop. Crash scenarios are closed-loop only.
    for ack in AckMode::ALL {
        for fault in FaultKind::ALL {
            for shards in [1u32, 8] {
                for open in [false, true] {
                    if fault == FaultKind::CrashLoss && open {
                        continue;
                    }
                    entries.push(build_entry(Family::Base, ack, fault, shards, open));
                }
            }
        }
    }

    // Retry-off family: hard connect failures with the retry budget
    // zeroed — the drivers must abandon and the verdict is inconclusive.
    for ack in AckMode::ALL {
        for shards in [1u32, 8] {
            entries.push(build_entry(
                Family::RetryOff,
                ack,
                FaultKind::Connect,
                shards,
                false,
            ));
        }
    }

    // Burst family: bursty bytes-bodied workload under every fault that
    // needs no special producer shape.
    for ack in AckMode::ALL {
        for fault in [
            FaultKind::Clean,
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Forge,
            FaultKind::Connect,
            FaultKind::Stall,
            FaultKind::AckLoss,
        ] {
            entries.push(build_entry(Family::Burst, ack, fault, 1, false));
        }
    }

    // Topic family: one publisher, two subscribers.
    for ack in AckMode::ALL {
        for fault in [
            FaultKind::Clean,
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Forge,
            FaultKind::Stall,
        ] {
            entries.push(build_entry(Family::Topic, ack, fault, 1, false));
        }
    }

    // Selector family: a typed application property routed through a
    // message selector.
    for ack in AckMode::ALL {
        for fault in [FaultKind::Clean, FaultKind::Drop] {
            let mut entry = build_entry(Family::Selector, ack, fault, 1, false);
            for node in &mut entry.spec.nodes {
                for consumer in &mut node.consumers {
                    consumer.selector = Some("p0 >= 0".to_owned());
                }
            }
            entries.push(entry);
        }
    }

    // QoS property-DSL family: the oracle is a compiled `[properties]`
    // declaration (deadline / SLO), not a built-in check.
    for ack in AckMode::ALL {
        for fault in [FaultKind::Clean, FaultKind::Reorder, FaultKind::Drop] {
            entries.push(build_qos_entry(ack, fault));
        }
    }

    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_distinct_and_valid() {
        let corpus = generate_corpus();
        assert!(corpus.len() >= 200, "only {} entries", corpus.len());
        let mut names: Vec<&str> = corpus.iter().map(|entry| entry.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "duplicate scenario names");
        for entry in &corpus {
            entry
                .spec
                .validate()
                .unwrap_or_else(|error| panic!("{}: invalid spec: {error}", entry.name));
        }
    }

    #[test]
    fn base_family_covers_the_full_ack_by_fault_cross_product() {
        let corpus = generate_corpus();
        for ack in AckMode::ALL {
            for fault in FaultKind::ALL {
                let prefix = format!("base-{}-{}", ack.name(), fault.name());
                assert!(
                    corpus.iter().any(|entry| entry.name == prefix),
                    "missing {prefix}"
                );
            }
        }
    }

    #[test]
    fn entries_round_trip_through_their_config_text() {
        let corpus = generate_corpus();
        for entry in corpus.iter().take(25) {
            let text = entry.config_text().expect("serializes");
            let back = CorpusEntry::from_config_text(&text).expect("reads back");
            assert_eq!(back.spec, entry.spec, "{}", entry.name);
            assert_eq!(back.fault, entry.fault);
            assert_eq!(back.expect, entry.expect);
        }
    }

    #[test]
    fn qos_entries_carry_properties_and_round_trip() {
        let corpus = generate_corpus();
        for ack in AckMode::ALL {
            for (fault, property) in [
                (FaultKind::Clean, None),
                (FaultKind::Reorder, Some(PropertyKind::Deadline)),
                (FaultKind::Drop, Some(PropertyKind::SloWindow)),
            ] {
                let name = format!("qos-{}-{}", ack.name(), fault.name());
                let entry = corpus
                    .iter()
                    .find(|entry| entry.name == name)
                    .unwrap_or_else(|| panic!("missing {name}"));
                assert!(
                    !entry.spec.properties.is_empty(),
                    "{name} has no properties"
                );
                match property {
                    Some(property) => {
                        assert_eq!(entry.expect, ExpectedVerdict::Violated(property), "{name}");
                    }
                    None => assert_eq!(entry.expect, ExpectedVerdict::Pass, "{name}"),
                }
                // The `[properties]` section must survive the file format
                // (and its expect code must parse back).
                let text = entry.config_text().expect("serializes");
                assert!(text.contains("[properties]"), "{name}:\n{text}");
                let back = CorpusEntry::from_config_text(&text).expect("reads back");
                assert_eq!(back.spec.properties, entry.spec.properties, "{name}");
                assert_eq!(back.expect, entry.expect, "{name}");
            }
        }
    }
}
