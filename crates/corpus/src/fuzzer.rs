//! A coverage-guided fuzzer over scenario specs and fault scripts.
//!
//! The fuzzer starts from one proven seed scenario per reachable
//! coverage tuple, then mutates spec knobs (rates, ack modes, shard
//! counts, run lengths, seeds) and fault-script parameters, keeping any
//! input whose run lights a (fault × verdict × property) tuple the
//! [`CoverageMap`] has not seen. Mutations stay inside ranges where the
//! injected defect remains decisively detectable, so a scenario whose
//! observed verdict disagrees with its annotation is a genuine
//! *divergence* — a pipeline surprise — and is handed to the
//! delta-minimiser, which shrinks it to the smallest reproducing spec.

use crate::coverage::{reachable_tuples, CoverageMap};
use crate::expect::FaultKind;
use crate::generator::{build_seed_entry, AckMode, CorpusEntry};
use crate::runner::{run_entry, Observed};
use jmst_harness::{FaultPlan, TestSpec};
use jmst_sim::SimRng;
use std::time::{Duration, Instant};

/// Fuzzing budget and seed.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; two runs with equal seeds and budgets explore the
    /// same inputs.
    pub seed: u64,
    /// Maximum number of scenario executions (seed corpus included).
    pub max_runs: usize,
    /// Optional wall-clock budget; checked between runs.
    pub time_budget: Option<Duration>,
    /// Delta-minimise divergent finds (costs extra runs per find).
    pub minimize_divergent: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            max_runs: 64,
            time_budget: None,
            minimize_divergent: true,
        }
    }
}

/// A scenario whose observed verdict contradicted its annotation.
#[derive(Debug, Clone)]
pub struct DivergentFind {
    /// The diverging scenario as found.
    pub entry: CorpusEntry,
    /// What the pipeline actually said.
    pub observed: Observed,
    /// The smallest spec that still reproduces the divergence, when
    /// minimisation was enabled and succeeded.
    pub minimized: Option<TestSpec>,
}

/// What a fuzzing campaign produced.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Scenario executions spent.
    pub runs: usize,
    /// Tuples lit.
    pub coverage: CoverageMap,
    /// Inputs kept because they lit a new tuple (the seed corpus plus
    /// every interesting mutant).
    pub kept: Vec<CorpusEntry>,
    /// Annotation-contradicting finds.
    pub divergent: Vec<DivergentFind>,
}

impl FuzzOutcome {
    /// Fraction of the canonical reachable tuple set this campaign lit.
    pub fn coverage_ratio(&self) -> f64 {
        self.coverage.ratio_of(&reachable_tuples())
    }
}

/// The proven seed corpus: one scenario per reachable tuple — the base
/// closed-loop template of each fault kind (client-ack for ack loss,
/// which is unobservable otherwise), plus the retry-off connect variant
/// for the inconclusive branch, the auto-ack ack-loss variant for its
/// pass branch, and the two QoS property-DSL variants whose verdicts
/// only a compiled `[properties]` declaration can light.
pub fn seed_entries() -> Vec<CorpusEntry> {
    let mut entries: Vec<CorpusEntry> = FaultKind::ALL
        .iter()
        .map(|fault| {
            let ack = if *fault == FaultKind::AckLoss {
                AckMode::ClientAck
            } else {
                AckMode::Auto
            };
            build_seed_entry(ack, *fault, true)
        })
        .collect();
    entries.push(build_seed_entry(AckMode::Auto, FaultKind::Connect, false));
    entries.push(build_seed_entry(AckMode::Auto, FaultKind::AckLoss, true));
    entries.push(crate::generator::build_qos_entry(
        AckMode::Auto,
        FaultKind::Reorder,
    ));
    entries.push(crate::generator::build_qos_entry(
        AckMode::Auto,
        FaultKind::Drop,
    ));
    entries
}

/// Runs a fuzzing campaign.
pub fn fuzz(config: &FuzzConfig) -> FuzzOutcome {
    let started = Instant::now();
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut coverage = CoverageMap::new();
    let mut kept: Vec<CorpusEntry> = Vec::new();
    let mut divergent = Vec::new();
    let mut runs = 0usize;

    // A delivered SIGTERM/SIGINT ends the campaign between runs, like
    // an exhausted budget: the outcome so far is still returned (and
    // flushed by the caller) instead of being torn down mid-run.
    let out_of_budget = |runs: usize, started: Instant| {
        runs >= config.max_runs
            || jmst_harness::signals::termination_requested()
            || config
                .time_budget
                .is_some_and(|budget| started.elapsed() >= budget)
    };

    // Phase 1: execute the seed corpus; every seed should light its own
    // tuple and is kept either way (seeds are the mutation pool).
    for entry in seed_entries() {
        if out_of_budget(runs, started) {
            break;
        }
        runs += 1;
        match run_entry(&entry) {
            Ok(observed) => {
                coverage.record(entry.fault, &observed);
                if !observed.matches(entry.expect) {
                    divergent.push(finish_divergence(
                        entry.clone(),
                        observed,
                        config,
                        &mut runs,
                    ));
                }
                kept.push(entry);
            }
            Err(_) => {
                // A seed that cannot even lint is a generator bug; the
                // corpus tests catch it — skip it here.
            }
        }
    }

    // Phase 2: mutate kept inputs, keep whatever lights a new tuple.
    let mut cursor = 0usize;
    while !out_of_budget(runs, started) && !kept.is_empty() {
        let parent = &kept[cursor % kept.len()];
        cursor = cursor.wrapping_add(1);
        let mutant = mutate(parent, &mut rng);
        runs += 1;
        let Ok(observed) = run_entry(&mutant) else {
            continue;
        };
        let lit_new = coverage.record(mutant.fault, &observed);
        if !observed.matches(mutant.expect) {
            divergent.push(finish_divergence(
                mutant.clone(),
                observed,
                config,
                &mut runs,
            ));
        }
        if lit_new {
            kept.push(mutant);
        }
    }

    FuzzOutcome {
        runs,
        coverage,
        kept,
        divergent,
    }
}

fn finish_divergence(
    entry: CorpusEntry,
    observed: Observed,
    config: &FuzzConfig,
    runs: &mut usize,
) -> DivergentFind {
    let minimized = if config.minimize_divergent {
        let (spec, spent) = minimize(&entry);
        *runs += spent;
        Some(spec)
    } else {
        None
    };
    DivergentFind {
        entry,
        observed,
        minimized,
    }
}

/// One seeded mutation of a corpus entry. The defect that defines the
/// entry's fault kind is jittered, never removed, so the annotation
/// stays a valid oracle for the mutant.
pub fn mutate(parent: &CorpusEntry, rng: &mut SimRng) -> CorpusEntry {
    let mut entry = parent.clone();
    entry.name = format!("{}-m{:08x}", parent.name, rng.next_u64() as u32);
    entry.spec.name = entry.name.clone();

    let mutations = 1 + (rng.next_u64() % 2) as usize;
    for _ in 0..mutations {
        match rng.next_u64() % 6 {
            0 => entry.spec.seed = rng.next_u64() % 1_000_000,
            1 => {
                if let Some(plan) = &mut entry.spec.faults {
                    plan.seed = rng.next_u64() % 1_000_000;
                }
            }
            2 => {
                // Jitter producer rates inside the decisively-detectable
                // band (crash timing is tuned; leave its rate alone).
                if entry.fault != FaultKind::CrashLoss {
                    for node in &mut entry.spec.nodes {
                        for producer in &mut node.producers {
                            let rate = 150.0 + f64::from((rng.next_u64() % 3000) as u32) / 10.0;
                            producer.workload = jmst_sim::ArrivalProcess::steady(rate);
                        }
                    }
                }
            }
            3 => {
                let ack = AckMode::ALL[(rng.next_u64() % 4) as usize];
                let (mode, batch) = ack.session();
                for node in &mut entry.spec.nodes {
                    for consumer in &mut node.consumers {
                        consumer.session_mode = mode;
                        consumer.batch = batch;
                    }
                }
                // The ack-loss oracle depends on the acknowledgement
                // mode; keep the annotation true for the mutant.
                let retry_on = entry.spec.retry != jmst_harness::RetryPolicy::disabled();
                entry.expect = crate::generator::expected_verdict(entry.fault, retry_on, ack);
            }
            4 => {
                let shards = [1u32, 2, 4, 8][(rng.next_u64() % 4) as usize];
                entry.spec.shards = Some(shards);
            }
            _ => {
                if let Some(plan) = &mut entry.spec.faults {
                    jitter_fault(entry.fault, plan, rng);
                }
            }
        }
    }
    entry
}

/// Jitters the defining knob of the fault kind without leaving the band
/// in which the defect is reliably detected.
fn jitter_fault(fault: FaultKind, plan: &mut FaultPlan, rng: &mut SimRng) {
    let in_band = |rng: &mut SimRng, low: f64, high: f64| {
        low + (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * (high - low)
    };
    match fault {
        FaultKind::Drop => plan.drop_probability = in_band(rng, 0.2, 0.45),
        FaultKind::Duplicate => plan.duplicate_probability = in_band(rng, 0.2, 0.45),
        FaultKind::Reorder => {
            plan.reorder_probability = in_band(rng, 0.12, 0.3);
            plan.reorder_delay = Duration::from_millis(40 + rng.next_u64() % 40);
        }
        FaultKind::Forge => plan.forge_probability = in_band(rng, 0.12, 0.3),
        FaultKind::Connect => {
            plan.connect_failure_probability = in_band(rng, 0.1, 0.35);
        }
        FaultKind::Stall => {
            plan.stall_probability = in_band(rng, 0.02, 0.08);
            plan.stall_duration = Duration::from_millis(1 + rng.next_u64() % 4);
        }
        // Stays near-certain so reconnect boundaries keep sitting on
        // believed-acknowledged tails (see the generator's plan).
        FaultKind::AckLoss => plan.ack_loss_probability = in_band(rng, 0.8, 0.98),
        FaultKind::Clean | FaultKind::Expiry | FaultKind::CrashLoss => {
            // Clean has no plan; expiry and crash-loss are switch-defined
            // — their timing recipes are tuned, only seeds move.
            plan.seed = rng.next_u64() % 1_000_000;
        }
    }
}

/// Counts the active entries of a spec's fault script (each non-zero
/// probability, each engaged switch, the delivery delay, the redelivery
/// bound, and a crash plan each count as one).
pub fn active_fault_entries(spec: &TestSpec) -> usize {
    let mut count = usize::from(spec.crash.is_some());
    if let Some(plan) = &spec.faults {
        let probabilities = [
            plan.drop_probability,
            plan.duplicate_probability,
            plan.reorder_probability,
            plan.forge_probability,
            plan.connect_failure_probability,
            plan.send_error_probability,
            plan.stall_probability,
            plan.ack_loss_probability,
        ];
        count += probabilities.iter().filter(|p| **p > 0.0).count();
        count += usize::from(plan.ignore_expiry)
            + usize::from(plan.ignore_priority)
            + usize::from(plan.lose_persistent_on_crash)
            + usize::from(plan.delivery_delay > Duration::ZERO)
            + usize::from(plan.max_redeliveries.is_some());
    }
    count
}

/// Shrinks a divergent scenario to the smallest spec that still
/// reproduces the divergence, greedily and to a fixpoint, along four
/// axes: producers, consumers, active fault entries, and run time.
/// Returns the minimised spec and the number of runs spent.
pub fn minimize(entry: &CorpusEntry) -> (TestSpec, usize) {
    let mut runs = 0usize;
    let mut current = entry.spec.clone();

    let still_diverges = |spec: &TestSpec, runs: &mut usize| -> bool {
        *runs += 1;
        let candidate = CorpusEntry {
            name: spec.name.clone(),
            spec: spec.clone(),
            fault: entry.fault,
            expect: entry.expect,
        };
        if candidate.spec.validate().is_err() {
            return false;
        }
        match run_entry(&candidate) {
            Ok(observed) => !observed.matches(entry.expect),
            Err(_) => false,
        }
    };

    loop {
        if jmst_harness::signals::termination_requested() {
            // Interrupted mid-shrink: the current candidate is still a
            // genuine reproducer, just not minimal — return it as-is.
            break;
        }
        let mut shrunk = false;

        // Axis 1: drop producers.
        'producers: for node in 0..current.nodes.len() {
            for index in (0..current.nodes[node].producers.len()).rev() {
                let mut candidate = current.clone();
                candidate.nodes[node].producers.remove(index);
                if still_diverges(&candidate, &mut runs) {
                    current = candidate;
                    shrunk = true;
                    break 'producers;
                }
            }
        }

        // Axis 2: drop consumers.
        'consumers: for node in 0..current.nodes.len() {
            for index in (0..current.nodes[node].consumers.len()).rev() {
                let mut candidate = current.clone();
                candidate.nodes[node].consumers.remove(index);
                if still_diverges(&candidate, &mut runs) {
                    current = candidate;
                    shrunk = true;
                    break 'consumers;
                }
            }
        }

        // Axis 3: deactivate fault entries one at a time.
        for zeroed in zeroing_candidates(&current) {
            if active_fault_entries(&zeroed) < active_fault_entries(&current)
                && still_diverges(&zeroed, &mut runs)
            {
                current = zeroed;
                shrunk = true;
                break;
            }
        }

        // Axis 4: halve the run period (floor 50 ms).
        if current.run >= Duration::from_millis(100) {
            let mut candidate = current.clone();
            candidate.run = current.run / 2;
            if let Some(crash) = &mut candidate.crash {
                crash.crash_after = crash.crash_after.min(candidate.run / 2);
            }
            if still_diverges(&candidate, &mut runs) {
                current = candidate;
                shrunk = true;
            }
        }

        if !shrunk || runs > 60 {
            break;
        }
    }
    (current, runs)
}

/// Every one-step fault deactivation of a spec.
fn zeroing_candidates(spec: &TestSpec) -> Vec<TestSpec> {
    let mut candidates = Vec::new();
    if spec.crash.is_some() {
        let mut candidate = spec.clone();
        candidate.crash = None;
        candidates.push(candidate);
    }
    let Some(plan) = &spec.faults else {
        return candidates;
    };
    let mut variants: Vec<FaultPlan> = Vec::new();
    let mut with = |edit: &dyn Fn(&mut FaultPlan)| {
        let mut variant = *plan;
        edit(&mut variant);
        variants.push(variant);
    };
    if plan.drop_probability > 0.0 {
        with(&|p| p.drop_probability = 0.0);
    }
    if plan.duplicate_probability > 0.0 {
        with(&|p| p.duplicate_probability = 0.0);
    }
    if plan.reorder_probability > 0.0 {
        with(&|p| p.reorder_probability = 0.0);
    }
    if plan.forge_probability > 0.0 {
        with(&|p| p.forge_probability = 0.0);
    }
    if plan.connect_failure_probability > 0.0 {
        with(&|p| p.connect_failure_probability = 0.0);
    }
    if plan.send_error_probability > 0.0 {
        with(&|p| p.send_error_probability = 0.0);
    }
    if plan.stall_probability > 0.0 {
        with(&|p| p.stall_probability = 0.0);
    }
    if plan.ack_loss_probability > 0.0 {
        with(&|p| p.ack_loss_probability = 0.0);
    }
    if plan.ignore_expiry {
        with(&|p| p.ignore_expiry = false);
    }
    if plan.ignore_priority {
        with(&|p| p.ignore_priority = false);
    }
    if plan.lose_persistent_on_crash {
        with(&|p| p.lose_persistent_on_crash = false);
    }
    if plan.delivery_delay > Duration::ZERO {
        with(&|p| p.delivery_delay = Duration::ZERO);
    }
    if plan.max_redeliveries.is_some() {
        with(&|p| p.max_redeliveries = None);
    }
    for variant in variants {
        let mut candidate = spec.clone();
        candidate.faults = if variant.is_active() {
            Some(variant)
        } else {
            None
        };
        candidates.push(candidate);
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_corpus_has_one_entry_per_reachable_tuple() {
        let seeds = seed_entries();
        assert_eq!(seeds.len(), reachable_tuples().len());
    }

    #[test]
    fn a_requested_termination_stops_the_campaign_between_runs() {
        // The flag is process-global; raise it before the campaign and
        // clear it afterwards so other tests are unaffected.
        jmst_harness::signals::request_termination();
        let outcome = fuzz(&FuzzConfig {
            seed: 11,
            max_runs: 10_000,
            time_budget: None,
            minimize_divergent: false,
        });
        jmst_harness::signals::reset_termination();
        assert_eq!(
            outcome.runs, 0,
            "a termination request delivered before the campaign must stop it immediately"
        );
    }

    #[test]
    fn mutation_preserves_the_fault_label_and_renames() {
        let parent = build_seed_entry(AckMode::Auto, FaultKind::Drop, true);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..20 {
            let mutant = mutate(&parent, &mut rng);
            assert_eq!(mutant.fault, parent.fault);
            assert_eq!(mutant.expect, parent.expect);
            assert_ne!(mutant.name, parent.name);
            assert!(mutant.spec.validate().is_ok());
            let plan = mutant.spec.faults.expect("drop seeds carry a plan");
            assert!(
                plan.drop_probability >= 0.2,
                "mutation left the detectable band: {}",
                plan.drop_probability
            );
        }
    }

    #[test]
    fn active_fault_entries_counts_every_axis() {
        let entry = build_seed_entry(AckMode::Auto, FaultKind::CrashLoss, true);
        // lose_persistent_on_crash + delivery_delay + crash plan = 3.
        assert_eq!(active_fault_entries(&entry.spec), 3);
        let clean = build_seed_entry(AckMode::Auto, FaultKind::Clean, true);
        assert_eq!(active_fault_entries(&clean.spec), 0);
    }
}
