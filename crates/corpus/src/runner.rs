//! Running corpus entries through the real analysis pipeline.
//!
//! Every run goes the same road a campaign test does: static lint
//! (errors abort before a message is sent), then the daemon prince
//! drives a reference broker built from the scenario's own fault plan,
//! and the analyzer delivers the verdict.
//!
//! The analyzer configuration follows the repo's chaos precedent:
//! operational faults are judged on the strict safety properties alone
//! (latency-sensitive statistical checks would convict an innocent
//! stall), while expiry-defect scenarios additionally enable the
//! Property 5 check they exist to exercise.

use crate::expect::{ExpectedVerdict, FaultKind};
use crate::generator::CorpusEntry;
use jmst_broker::ReferenceBroker;
use jmst_core::{AnalysisConfig, Analyzer, PropertyKind};
use jmst_harness::{lint_spec, BrokerAdmin, DaemonPrince, TestOutcome, TestSpec};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// The verdict classes a run can end in (the coverage-map axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VerdictKind {
    /// Ran to completion, all checked properties held.
    Pass,
    /// Ran to completion with violations.
    Violated,
    /// A driver group hung.
    Hung,
    /// The drivers abandoned the run.
    Inconclusive,
    /// The spec was rejected before running.
    Invalid,
}

impl VerdictKind {
    /// Short stable token (file names, the matrix, annotations).
    pub fn name(self) -> &'static str {
        match self {
            VerdictKind::Pass => "pass",
            VerdictKind::Violated => "violated",
            VerdictKind::Hung => "hung",
            VerdictKind::Inconclusive => "inconclusive",
            VerdictKind::Invalid => "invalid",
        }
    }
}

impl fmt::Display for VerdictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a run actually did: the verdict class plus the set of
/// properties the analyzer flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// The verdict class.
    pub verdict: VerdictKind,
    /// Properties with at least one violation.
    pub properties: BTreeSet<PropertyKind>,
}

impl Observed {
    /// Does this observation satisfy the annotated expectation?
    pub fn matches(&self, expect: ExpectedVerdict) -> bool {
        match expect {
            ExpectedVerdict::Pass => self.verdict == VerdictKind::Pass,
            ExpectedVerdict::Violated(property) => {
                self.verdict == VerdictKind::Violated && self.properties.contains(&property)
            }
            ExpectedVerdict::Inconclusive => self.verdict == VerdictKind::Inconclusive,
        }
    }

    /// A one-line description for reports and divergence messages.
    pub fn describe(&self) -> String {
        if self.properties.is_empty() {
            self.verdict.to_string()
        } else {
            let flagged: Vec<String> = self
                .properties
                .iter()
                .map(|property| crate::expect::property_code(*property).to_owned())
                .collect();
            format!("{} [{}]", self.verdict, flagged.join(", "))
        }
    }
}

impl fmt::Display for Observed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// The analyzer configuration a fault kind is judged under.
pub fn analysis_for(fault: FaultKind) -> AnalysisConfig {
    let mut config = AnalysisConfig::strict_safety_only();
    if fault == FaultKind::Expiry {
        config.check_expiry = true;
    }
    config
}

/// Runs a spec against a reference broker built from the spec's own
/// fault plan, under the given analyzer configuration.
pub fn run_spec(spec: &TestSpec, analysis: AnalysisConfig) -> Observed {
    let prince = DaemonPrince::with_analyzer(Analyzer::with_config(analysis));
    let factory = |spec: &TestSpec| -> (Arc<dyn jmst_api::provider::Provider>, _) {
        let config = spec
            .broker_config()
            .expect("a validated spec has a valid fault plan");
        let broker = ReferenceBroker::with_config(config);
        let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
        (Arc::new(broker), Some(admin))
    };
    let outcome = prince.run_test(&factory, spec).outcome;
    let (verdict, report) = match &outcome {
        TestOutcome::Passed(report) => (VerdictKind::Pass, Some(report)),
        TestOutcome::Violated(report) => (VerdictKind::Violated, Some(report)),
        TestOutcome::Hung { report, .. } => (VerdictKind::Hung, Some(report)),
        TestOutcome::Inconclusive { report, .. } => (VerdictKind::Inconclusive, Some(report)),
        // `Invalid`, plus any future non-exhaustive variants.
        _ => (VerdictKind::Invalid, None),
    };
    let properties = report
        .map(|report| report.by_property().into_keys().collect())
        .unwrap_or_default();
    Observed {
        verdict,
        properties,
    }
}

/// Lints, then runs, one corpus entry. Lint errors are a hard failure —
/// a generated scenario must never reach the broker misconfigured.
pub fn run_entry(entry: &CorpusEntry) -> Result<Observed, String> {
    let lint = lint_spec(&entry.spec);
    if lint.has_errors() {
        return Err(format!("{}: lint errors:\n{lint}", entry.name));
    }
    Ok(run_spec(&entry.spec, analysis_for(entry.fault)))
}

/// `Ok(())` when the entry's observed verdict satisfies its annotation,
/// otherwise a description of the divergence.
pub fn check_entry(entry: &CorpusEntry) -> Result<Observed, String> {
    let observed = run_entry(entry)?;
    if observed.matches(entry.expect) {
        Ok(observed)
    } else {
        Err(format!(
            "{}: expected {}, observed {}",
            entry.name,
            entry.expect.render(),
            observed.describe()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_rules() {
        let pass = Observed {
            verdict: VerdictKind::Pass,
            properties: BTreeSet::new(),
        };
        assert!(pass.matches(ExpectedVerdict::Pass));
        assert!(!pass.matches(ExpectedVerdict::Inconclusive));

        let mut flagged = BTreeSet::new();
        flagged.insert(PropertyKind::RequiredMessages);
        let violated = Observed {
            verdict: VerdictKind::Violated,
            properties: flagged,
        };
        assert!(violated.matches(ExpectedVerdict::Violated(PropertyKind::RequiredMessages)));
        assert!(!violated.matches(ExpectedVerdict::Violated(PropertyKind::MessageOrdering)));
        assert!(!violated.matches(ExpectedVerdict::Pass));
        assert_eq!(violated.describe(), "violated [P2]");
    }

    #[test]
    fn expiry_scenarios_get_the_expiry_check() {
        assert!(analysis_for(FaultKind::Expiry).check_expiry);
        assert!(!analysis_for(FaultKind::Drop).check_expiry);
        assert!(!analysis_for(FaultKind::Drop).check_priority);
    }
}
