//! Expected-verdict annotations carried by every generated scenario.
//!
//! The scenario text format strips `#` comments before parsing, so the
//! corpus rides its oracle inside comment lines at the top of each
//! `.cfg` file:
//!
//! ```text
//! # jmst-corpus scenario
//! # fault: drop
//! # expect: violated P2
//! ```
//!
//! `fault:` names the injected defect family (the coverage-map axis),
//! `expect:` the verdict the analysis pipeline must reach. A scenario
//! whose observed verdict disagrees with its annotation is *divergent* —
//! the fuzzer's most interesting find, and the input to the
//! delta-minimiser.

use jmst_core::PropertyKind;
use std::fmt;

/// The injected-defect families the corpus enumerates. `Clean` is the
/// control: no fault at all, the scenario must pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// No injected fault; the control group.
    Clean,
    /// The broker silently drops delivered messages.
    Drop,
    /// The broker delivers some messages twice.
    Duplicate,
    /// The broker delays individual messages past their successors.
    Reorder,
    /// The broker forges messages nobody sent.
    Forge,
    /// The broker ignores time-to-live and delivers expired messages.
    Expiry,
    /// The broker loses persistent messages across a mid-run crash.
    CrashLoss,
    /// Connect attempts fail with some probability (operational fault).
    Connect,
    /// Sends stall for a while with some probability (operational fault).
    Stall,
    /// Consumer acknowledgements are lost with some probability.
    AckLoss,
}

impl FaultKind {
    /// Every fault kind, in canonical order.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::Clean,
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Forge,
        FaultKind::Expiry,
        FaultKind::CrashLoss,
        FaultKind::Connect,
        FaultKind::Stall,
        FaultKind::AckLoss,
    ];

    /// The annotation / file-name token for this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Clean => "clean",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Forge => "forge",
            FaultKind::Expiry => "expiry",
            FaultKind::CrashLoss => "crash-loss",
            FaultKind::Connect => "connect",
            FaultKind::Stall => "stall",
            FaultKind::AckLoss => "ack-loss",
        }
    }

    /// Parses an annotation token back into a kind.
    pub fn parse(text: &str) -> Option<FaultKind> {
        FaultKind::ALL
            .iter()
            .copied()
            .find(|kind| kind.name() == text)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Short stable codes for the properties, used in annotations and the
/// generated matrix ("P2", "dup", ...).
pub fn property_code(property: PropertyKind) -> &'static str {
    match property {
        PropertyKind::DeliveryIntegrity => "P1",
        PropertyKind::RequiredMessages => "P2",
        PropertyKind::MessageOrdering => "P3",
        PropertyKind::MessagePriority => "P4",
        PropertyKind::ExpiredMessages => "P5",
        PropertyKind::DuplicateDelivery => "dup",
        PropertyKind::BoundedRedelivery => "redelivery",
        PropertyKind::Deadline => "deadline",
        PropertyKind::SloWindow => "slo",
    }
}

/// Parses a [`property_code`] back into a property.
pub fn parse_property_code(text: &str) -> Option<PropertyKind> {
    [
        PropertyKind::DeliveryIntegrity,
        PropertyKind::RequiredMessages,
        PropertyKind::MessageOrdering,
        PropertyKind::MessagePriority,
        PropertyKind::ExpiredMessages,
        PropertyKind::DuplicateDelivery,
        PropertyKind::BoundedRedelivery,
        PropertyKind::Deadline,
        PropertyKind::SloWindow,
    ]
    .into_iter()
    .find(|property| property_code(*property) == text)
}

/// The verdict a scenario is annotated to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExpectedVerdict {
    /// The run completes and every checked property holds.
    Pass,
    /// The run completes and the named property is among the flagged
    /// violations.
    Violated(PropertyKind),
    /// The drivers abandon the run (e.g. connect failures with retry
    /// disabled); the analysis is inconclusive by design.
    Inconclusive,
}

impl ExpectedVerdict {
    /// The annotation text after `# expect: `.
    pub fn render(self) -> String {
        match self {
            ExpectedVerdict::Pass => "pass".to_owned(),
            ExpectedVerdict::Violated(property) => {
                format!("violated {}", property_code(property))
            }
            ExpectedVerdict::Inconclusive => "inconclusive".to_owned(),
        }
    }

    /// Parses an annotation back into a verdict.
    pub fn parse(text: &str) -> Option<ExpectedVerdict> {
        match text.trim() {
            "pass" => Some(ExpectedVerdict::Pass),
            "inconclusive" => Some(ExpectedVerdict::Inconclusive),
            other => {
                let code = other.strip_prefix("violated ")?;
                Some(ExpectedVerdict::Violated(parse_property_code(code.trim())?))
            }
        }
    }
}

impl fmt::Display for ExpectedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders the annotation header prepended to a generated `.cfg` file.
pub fn render_annotations(fault: FaultKind, expect: ExpectedVerdict) -> String {
    format!(
        "# jmst-corpus scenario\n# fault: {}\n# expect: {}\n",
        fault.name(),
        expect.render()
    )
}

/// Reads the annotation header back out of scenario text. Returns `None`
/// when either line is missing or unparseable.
pub fn parse_annotations(text: &str) -> Option<(FaultKind, ExpectedVerdict)> {
    let mut fault = None;
    let mut expect = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# fault:") {
            fault = FaultKind::parse(rest.trim());
        } else if let Some(rest) = line.strip_prefix("# expect:") {
            expect = ExpectedVerdict::parse(rest.trim());
        }
    }
    Some((fault?, expect?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nonsense"), None);
    }

    #[test]
    fn verdicts_round_trip() {
        let verdicts = [
            ExpectedVerdict::Pass,
            ExpectedVerdict::Inconclusive,
            ExpectedVerdict::Violated(PropertyKind::RequiredMessages),
            ExpectedVerdict::Violated(PropertyKind::DuplicateDelivery),
        ];
        for verdict in verdicts {
            assert_eq!(ExpectedVerdict::parse(&verdict.render()), Some(verdict));
        }
        assert_eq!(ExpectedVerdict::parse("violated P9"), None);
    }

    #[test]
    fn annotations_round_trip_through_scenario_text() {
        let header = render_annotations(
            FaultKind::Reorder,
            ExpectedVerdict::Violated(PropertyKind::MessageOrdering),
        );
        let text = format!("{header}\n[test]\nname = x\n");
        assert_eq!(
            parse_annotations(&text),
            Some((
                FaultKind::Reorder,
                ExpectedVerdict::Violated(PropertyKind::MessageOrdering)
            ))
        );
        assert_eq!(parse_annotations("[test]\nname = x\n"), None);
    }
}
