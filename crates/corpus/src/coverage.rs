//! The fuzzer's coverage map: which (fault kind × verdict × flagged
//! property) tuples the corpus has demonstrated.
//!
//! A tuple is the corpus-level analogue of a branch: "a drop-defect
//! scenario that the pipeline convicted of Property 2" is one behaviour
//! of the whole detection stack, and an input that lights a tuple nobody
//! has lit before taught us something — the fuzzer keeps it.

use crate::expect::FaultKind;
use crate::runner::{Observed, VerdictKind};
use jmst_core::PropertyKind;
use std::collections::BTreeSet;
use std::fmt;

/// One coverage tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoverageKey {
    /// The injected-defect family of the scenario.
    pub fault: FaultKind,
    /// The verdict class the pipeline reached.
    pub verdict: VerdictKind,
    /// A property the analyzer flagged (`None` for verdicts without
    /// violations).
    pub property: Option<PropertyKind>,
}

impl fmt::Display for CoverageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.property {
            Some(property) => write!(
                f,
                "({}, {}, {})",
                self.fault,
                self.verdict,
                crate::expect::property_code(property)
            ),
            None => write!(f, "({}, {}, -)", self.fault, self.verdict),
        }
    }
}

/// The keys one observation contributes: one per flagged property, or a
/// single propertyless key when nothing was flagged.
pub fn keys_of(fault: FaultKind, observed: &Observed) -> Vec<CoverageKey> {
    if observed.properties.is_empty() {
        vec![CoverageKey {
            fault,
            verdict: observed.verdict,
            property: None,
        }]
    } else {
        observed
            .properties
            .iter()
            .map(|property| CoverageKey {
                fault,
                verdict: observed.verdict,
                property: Some(*property),
            })
            .collect()
    }
}

/// The set of tuples seen so far.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    seen: BTreeSet<CoverageKey>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation; returns `true` when it lit at least one
    /// tuple the map had not seen before.
    pub fn record(&mut self, fault: FaultKind, observed: &Observed) -> bool {
        let mut lit_new = false;
        for key in keys_of(fault, observed) {
            lit_new |= self.seen.insert(key);
        }
        lit_new
    }

    /// Has this exact tuple been seen?
    pub fn contains(&self, key: &CoverageKey) -> bool {
        self.seen.contains(key)
    }

    /// Number of distinct tuples seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Iterates the tuples in canonical order.
    pub fn keys(&self) -> impl Iterator<Item = &CoverageKey> {
        self.seen.iter()
    }

    /// Fraction of `targets` this map has hit.
    pub fn ratio_of(&self, targets: &[CoverageKey]) -> f64 {
        if targets.is_empty() {
            return 1.0;
        }
        let hit = targets.iter().filter(|key| self.contains(key)).count();
        hit as f64 / targets.len() as f64
    }

    /// The targets not yet hit.
    pub fn missing_from<'a>(&self, targets: &'a [CoverageKey]) -> Vec<&'a CoverageKey> {
        targets.iter().filter(|key| !self.contains(key)).collect()
    }
}

/// The canonical reachable tuple set: for every defect family, the
/// verdict and flagged property a correct detection pipeline produces
/// (plus the retry-off inconclusive branch of connect faults). This is
/// the denominator of the fuzzer's coverage ratio.
pub fn reachable_tuples() -> Vec<CoverageKey> {
    let key = |fault, verdict, property| CoverageKey {
        fault,
        verdict,
        property,
    };
    vec![
        key(FaultKind::Clean, VerdictKind::Pass, None),
        key(
            FaultKind::Drop,
            VerdictKind::Violated,
            Some(PropertyKind::RequiredMessages),
        ),
        key(
            FaultKind::Duplicate,
            VerdictKind::Violated,
            Some(PropertyKind::DuplicateDelivery),
        ),
        key(
            FaultKind::Reorder,
            VerdictKind::Violated,
            Some(PropertyKind::MessageOrdering),
        ),
        key(
            FaultKind::Forge,
            VerdictKind::Violated,
            Some(PropertyKind::DeliveryIntegrity),
        ),
        key(
            FaultKind::Expiry,
            VerdictKind::Violated,
            Some(PropertyKind::ExpiredMessages),
        ),
        key(
            FaultKind::CrashLoss,
            VerdictKind::Violated,
            Some(PropertyKind::RequiredMessages),
        ),
        key(FaultKind::Connect, VerdictKind::Pass, None),
        key(FaultKind::Connect, VerdictKind::Inconclusive, None),
        key(FaultKind::Stall, VerdictKind::Pass, None),
        // Lost acks convict a reconnecting client-ack consumer of
        // duplicate delivery; under the other acknowledgement modes the
        // fault is unobservable and the scenario passes.
        key(
            FaultKind::AckLoss,
            VerdictKind::Violated,
            Some(PropertyKind::DuplicateDelivery),
        ),
        key(FaultKind::AckLoss, VerdictKind::Pass, None),
        // The QoS property-DSL family: a reorder plan convicted by a
        // compiled per-message deadline, and a drop plan convicted by a
        // receive-count SLO floor — per-property verdict dimensions the
        // built-in checks cannot light.
        key(
            FaultKind::Reorder,
            VerdictKind::Violated,
            Some(PropertyKind::Deadline),
        ),
        key(
            FaultKind::Drop,
            VerdictKind::Violated,
            Some(PropertyKind::SloWindow),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn pass() -> Observed {
        Observed {
            verdict: VerdictKind::Pass,
            properties: BTreeSet::new(),
        }
    }

    #[test]
    fn recording_reports_novelty_once() {
        let mut map = CoverageMap::new();
        assert!(map.record(FaultKind::Clean, &pass()));
        assert!(!map.record(FaultKind::Clean, &pass()));
        assert!(map.record(FaultKind::Stall, &pass()));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn violations_contribute_one_key_per_property() {
        let mut properties = BTreeSet::new();
        properties.insert(PropertyKind::RequiredMessages);
        properties.insert(PropertyKind::MessageOrdering);
        let observed = Observed {
            verdict: VerdictKind::Violated,
            properties,
        };
        assert_eq!(keys_of(FaultKind::Drop, &observed).len(), 2);
    }

    #[test]
    fn reachable_set_is_distinct_and_covers_every_fault_kind() {
        let targets = reachable_tuples();
        let distinct: BTreeSet<&CoverageKey> = targets.iter().collect();
        assert_eq!(distinct.len(), targets.len());
        for fault in FaultKind::ALL {
            assert!(
                targets.iter().any(|key| key.fault == fault),
                "no reachable tuple for {fault}"
            );
        }
        let mut map = CoverageMap::new();
        assert_eq!(map.ratio_of(&targets), 0.0);
        map.record(FaultKind::Clean, &pass());
        assert!(map.ratio_of(&targets) > 0.0);
        assert_eq!(map.missing_from(&targets).len(), targets.len() - 1);
    }
}
