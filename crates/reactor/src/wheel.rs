//! A timing wheel: O(1) schedule/fire for millions of pending timers.
//!
//! Virtual clients each have exactly one pending event (their next
//! intended send), so the engine needs a timer structure whose cost per
//! event is a couple of pointer moves, not a `BinaryHeap`'s `log n`
//! sift. The wheel hashes deadlines into fixed-width tick slots; events
//! beyond the wheel's horizon wait in a sorted overflow map and are
//! promoted as the wheel turns.
//!
//! Deadlines are `u64` nanosecond offsets from an epoch the caller
//! chooses (the engine uses its start instant). Firing order within one
//! tick is insertion order; across ticks it is deadline order at tick
//! resolution.

use std::collections::BTreeMap;
use std::time::Duration;

/// One scheduled event: the exact deadline and the caller's payload
/// (client index).
type Entry = (u64, u32);

/// A fixed-horizon timing wheel with sorted overflow.
#[derive(Debug)]
pub struct TimingWheel {
    tick_nanos: u64,
    slots: Vec<Vec<Entry>>,
    /// The tick currently being processed; every slot entry's tick is in
    /// `[current_tick, current_tick + slots.len())`.
    current_tick: u64,
    /// Events beyond the horizon, keyed by tick.
    overflow: BTreeMap<u64, Vec<Entry>>,
    len: usize,
}

impl TimingWheel {
    /// Creates a wheel of `slots` ticks of `tick` width each; the horizon
    /// is `slots × tick`, beyond which events sit in the overflow map.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or `slots` is zero.
    pub fn new(tick: Duration, slots: usize) -> Self {
        assert!(!tick.is_zero(), "tick width must be positive");
        assert!(slots > 0, "need at least one slot");
        Self {
            tick_nanos: tick.as_nanos() as u64,
            slots: vec![Vec::new(); slots],
            current_tick: 0,
            overflow: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `client` to fire at `deadline_nanos`. Deadlines already
    /// in the past land in the current tick and fire on the next
    /// [`TimingWheel::advance`].
    pub fn schedule(&mut self, deadline_nanos: u64, client: u32) {
        let tick = (deadline_nanos / self.tick_nanos).max(self.current_tick);
        if tick >= self.current_tick + self.slots.len() as u64 {
            self.overflow
                .entry(tick)
                .or_default()
                .push((deadline_nanos, client));
        } else {
            let index = (tick % self.slots.len() as u64) as usize;
            self.slots[index].push((deadline_nanos, client));
        }
        self.len += 1;
    }

    /// Turns the wheel to `now_nanos`, appending every due event to
    /// `due`: all events in ticks before the one containing `now`, plus
    /// the events in the current tick whose exact deadline has passed.
    pub fn advance(&mut self, now_nanos: u64, due: &mut Vec<Entry>) {
        let before = due.len();
        let target = now_nanos / self.tick_nanos;
        while self.current_tick < target {
            let index = (self.current_tick % self.slots.len() as u64) as usize;
            due.append(&mut self.slots[index]);
            self.current_tick += 1;
            self.promote_overflow();
        }
        let index = (self.current_tick % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[index];
        let mut i = 0;
        while i < slot.len() {
            if slot[i].0 <= now_nanos {
                due.push(slot.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.len -= due.len() - before;
    }

    /// Moves overflow events whose tick is now within the horizon into
    /// their slots.
    fn promote_overflow(&mut self) {
        let horizon = self.current_tick + self.slots.len() as u64;
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() >= horizon {
                break;
            }
            let (tick, entries) = entry.remove_entry();
            let index = (tick % self.slots.len() as u64) as usize;
            self.slots[index].extend(entries);
        }
    }

    /// The earliest pending deadline, in nanoseconds. `None` when empty.
    pub fn next_deadline(&self) -> Option<u64> {
        for offset in 0..self.slots.len() as u64 {
            let tick = self.current_tick + offset;
            let slot = &self.slots[(tick % self.slots.len() as u64) as usize];
            if let Some(min) = slot.iter().map(|entry| entry.0).min() {
                return Some(min);
            }
        }
        self.overflow
            .values()
            .next()
            .and_then(|entries| entries.iter().map(|entry| entry.0).min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimingWheel {
        TimingWheel::new(Duration::from_millis(1), 16)
    }

    fn fire(wheel: &mut TimingWheel, now: u64) -> Vec<u32> {
        let mut due = Vec::new();
        wheel.advance(now, &mut due);
        due.sort_unstable();
        due.into_iter().map(|(_, client)| client).collect()
    }

    #[test]
    fn fires_in_deadline_order_at_tick_resolution() {
        let mut w = wheel();
        w.schedule(5_000_000, 1);
        w.schedule(2_000_000, 2);
        w.schedule(9_000_000, 3);
        assert_eq!(w.len(), 3);
        assert_eq!(fire(&mut w, 3_000_000), vec![2]);
        assert_eq!(fire(&mut w, 10_000_000), vec![1, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn partial_tick_fires_only_elapsed_deadlines() {
        let mut w = wheel();
        w.schedule(1_100_000, 1);
        w.schedule(1_900_000, 2);
        // Both are in tick 1; at 1.5 ms only the first is due.
        assert_eq!(fire(&mut w, 1_500_000), vec![1]);
        assert_eq!(w.len(), 1);
        assert_eq!(fire(&mut w, 1_900_000), vec![2]);
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = wheel();
        assert_eq!(fire(&mut w, 50_000_000), Vec::<u32>::new());
        w.schedule(1_000_000, 7); // far in the past
        assert_eq!(w.next_deadline(), Some(1_000_000));
        assert_eq!(fire(&mut w, 50_000_000), vec![7]);
    }

    #[test]
    fn overflow_events_survive_the_horizon() {
        let mut w = wheel(); // horizon = 16 ms
        w.schedule(100_000_000, 1); // 100 ms: overflow
        w.schedule(3_000_000, 2);
        assert_eq!(fire(&mut w, 4_000_000), vec![2]);
        assert_eq!(fire(&mut w, 99_000_000), Vec::<u32>::new());
        assert_eq!(fire(&mut w, 100_000_000), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_scans_slots_then_overflow() {
        let mut w = wheel();
        assert_eq!(w.next_deadline(), None);
        w.schedule(200_000_000, 1);
        assert_eq!(w.next_deadline(), Some(200_000_000));
        w.schedule(4_000_000, 2);
        assert_eq!(w.next_deadline(), Some(4_000_000));
        let _ = fire(&mut w, 5_000_000);
        assert_eq!(w.next_deadline(), Some(200_000_000));
    }

    #[test]
    fn dense_schedule_round_trips() {
        let mut w = TimingWheel::new(Duration::from_millis(1), 32);
        for client in 0..10_000u32 {
            // Deadlines spread over 500 ms — mostly overflow.
            w.schedule(u64::from(client) * 50_000, client);
        }
        assert_eq!(w.len(), 10_000);
        let mut seen = Vec::new();
        let mut now = 0;
        while !w.is_empty() {
            now += 3_000_000;
            let mut due = Vec::new();
            w.advance(now, &mut due);
            for (deadline, client) in due {
                assert!(deadline <= now);
                seen.push(client);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 10_000);
        assert!(seen.iter().enumerate().all(|(i, &c)| i as u32 == c));
    }

    #[test]
    #[should_panic(expected = "tick width must be positive")]
    fn zero_tick_rejected() {
        TimingWheel::new(Duration::ZERO, 8);
    }
}
