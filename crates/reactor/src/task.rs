//! The task model: poll-driven state machines.
//!
//! A [`Task`] is polled with a [`Context`] and either completes
//! (`Poll::Ready`) or parks (`Poll::Pending`) after arranging its own
//! wake-up — a timer via [`Context::wake_after`], an external readiness
//! event via [`Context::waker`], or an immediate requeue via
//! [`Context::yield_now`]. A task that returns `Pending` without
//! arranging any of the three is never polled again (the executor does
//! not spin on idle tasks — that is the whole point).

use crate::ready::{ReadyList, Waker};
use crate::wheel::TimingWheel;
use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

/// Result of polling a [`Task`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The task has finished and is dropped.
    Ready,
    /// The task parked after arranging its own wake-up.
    Pending,
}

/// A poll-driven state machine scheduled by a [`Reactor`](crate::Reactor).
pub trait Task: Send {
    /// Advances the task as far as it can without blocking.
    ///
    /// Must not block: do a bounded amount of work, arrange a wake-up,
    /// and return. When [`Context::stopping`] is `true`, the task must
    /// finish (flush, close, report) within a bounded number of polls.
    fn poll(&mut self, cx: &mut Context<'_>) -> Poll;
}

/// The per-poll capability handle: the clock, timers, waker minting,
/// and the worker-local state slot.
pub struct Context<'a> {
    pub(crate) now: Duration,
    pub(crate) stopping: bool,
    pub(crate) timers: &'a mut TimingWheel,
    pub(crate) ready: &'a Arc<ReadyList>,
    pub(crate) task: u32,
    pub(crate) worker: usize,
    pub(crate) state: &'a mut Option<Box<dyn Any + Send>>,
    pub(crate) yielded: bool,
}

impl Context<'_> {
    /// Time since the reactor's run epoch, sampled when this poll began.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// [`Context::now`] as nanoseconds — the unit timer deadlines use.
    pub fn now_nanos(&self) -> u64 {
        self.now.as_nanos() as u64
    }

    /// `true` once the reactor is shutting down (stop flag or run
    /// deadline); the task must complete promptly.
    pub fn stopping(&self) -> bool {
        self.stopping
    }

    /// Index of the worker this task is pinned to.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Schedules a one-shot wake at `deadline_nanos` from the epoch.
    /// Deadlines in the past fire on the next scheduling pass.
    pub fn wake_at_nanos(&mut self, deadline_nanos: u64) {
        self.timers.schedule(deadline_nanos, self.task);
    }

    /// Schedules a one-shot wake `delay` from now.
    pub fn wake_after(&mut self, delay: Duration) {
        let deadline = self.now_nanos().saturating_add(delay.as_nanos() as u64);
        self.timers.schedule(deadline, self.task);
    }

    /// Mints a waker for this task, usable from any thread.
    pub fn waker(&self) -> Waker {
        Waker::new(Arc::clone(self.ready), self.task)
    }

    /// Requeues this task immediately: return `Pending` afterwards and
    /// the task is polled again on the same pass, after its siblings.
    pub fn yield_now(&mut self) {
        self.yielded = true;
    }

    /// Borrows the worker-local state slot downcast to `T`, if the slot
    /// was seeded via [`Reactor::set_worker_state`](crate::Reactor) with
    /// that type. Tasks pinned to one worker share this slot, so a
    /// thousand virtual clients can multiplex one transport.
    pub fn state_mut<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.state.as_mut()?.downcast_mut::<T>()
    }
}
