//! The readiness registry: O(ready) wake delivery.
//!
//! This generalises the load engine's old `DrainPump` design — a vector
//! of per-consumer dirty flags that a pump thread re-scanned in full on
//! every pass — into a ready *list*: a wake pushes the task index onto a
//! queue exactly once, and the worker pops only tasks that are actually
//! ready. Cost per wake is O(1) and cost per scheduling pass is
//! O(ready), independent of how many idle tasks exist.
//!
//! Duplicate suppression is a small per-task state machine
//! ([`TaskState`]): a wake of an `Idle` task enqueues it; a wake of a
//! task that is already `Scheduled` is a no-op; a wake that lands while
//! the task is `Running` flags it `Notified` so the executor reschedules
//! it after the poll instead of losing the event.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lifecycle of one task with respect to the ready list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum TaskState {
    /// Parked: the next wake enqueues it.
    Idle = 0,
    /// Sitting in the ready queue; further wakes are no-ops.
    Scheduled = 1,
    /// Being polled right now; a wake moves it to `Notified`.
    Running = 2,
    /// Woken while running; the executor requeues it after the poll.
    Notified = 3,
    /// Completed; wakes are permanently ignored.
    Done = 4,
}

impl TaskState {
    fn from_u8(value: u8) -> Self {
        match value {
            0 => Self::Idle,
            1 => Self::Scheduled,
            2 => Self::Running,
            3 => Self::Notified,
            _ => Self::Done,
        }
    }
}

/// One worker's ready list: per-task wake states plus the queue of
/// ready task indices, shared with every [`Waker`] handed out.
pub struct ReadyList {
    states: Vec<AtomicU8>,
    queue: Mutex<VecDeque<u32>>,
    signal: Condvar,
}

impl ReadyList {
    /// A ready list for `tasks` tasks, all starting `Idle`.
    pub(crate) fn new(tasks: usize) -> Self {
        Self {
            states: (0..tasks)
                .map(|_| AtomicU8::new(TaskState::Idle as u8))
                .collect(),
            queue: Mutex::new(VecDeque::new()),
            signal: Condvar::new(),
        }
    }

    /// Wakes `task`: enqueues it if idle, marks it notified if running,
    /// and does nothing if it is already queued or done. O(1).
    pub fn wake(&self, task: u32) {
        let state = &self.states[task as usize];
        let mut current = state.load(Ordering::Acquire);
        loop {
            let next = match TaskState::from_u8(current) {
                TaskState::Idle => TaskState::Scheduled,
                TaskState::Running => TaskState::Notified,
                TaskState::Scheduled | TaskState::Notified | TaskState::Done => return,
            };
            match state.compare_exchange_weak(
                current,
                next as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // Enqueue only on the Idle→Scheduled edge *we* made;
                    // the Running→Notified edge is the executor's to
                    // convert (re-checking state here would race with
                    // `park_or_requeue` and double-enqueue).
                    if next == TaskState::Scheduled {
                        self.queue.lock().push_back(task);
                        self.signal.notify_one();
                    }
                    return;
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Pops the next ready task and marks it `Running`.
    pub(crate) fn pop(&self) -> Option<u32> {
        let task = self.queue.lock().pop_front()?;
        self.states[task as usize].store(TaskState::Running as u8, Ordering::Release);
        Some(task)
    }

    /// Called after a `Pending` poll: returns the task to `Idle`, unless
    /// a wake arrived mid-poll (`Notified`), in which case it is requeued
    /// and the method returns `true`.
    pub(crate) fn park_or_requeue(&self, task: u32) -> bool {
        let state = &self.states[task as usize];
        if state
            .compare_exchange(
                TaskState::Running as u8,
                TaskState::Idle as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return false;
        }
        // A wake landed while the task ran: requeue it ourselves.
        state.store(TaskState::Scheduled as u8, Ordering::Release);
        self.queue.lock().push_back(task);
        true
    }

    /// Forces `task` back onto the queue (used for an explicit yield).
    pub(crate) fn requeue(&self, task: u32) {
        self.states[task as usize].store(TaskState::Scheduled as u8, Ordering::Release);
        self.queue.lock().push_back(task);
    }

    /// Marks `task` complete; all later wakes are ignored.
    pub(crate) fn finish(&self, task: u32) {
        self.states[task as usize].store(TaskState::Done as u8, Ordering::Release);
    }

    /// `true` when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Parks the caller until a wake arrives or `timeout` passes.
    pub(crate) fn park(&self, timeout: Duration) {
        let mut guard = self.queue.lock();
        if guard.is_empty() {
            self.signal.wait_for(&mut guard, timeout);
        }
    }
}

/// A cheap cloneable handle that wakes one task on one worker.
///
/// Hand it to anything that produces readiness events — a broker
/// endpoint's waker list, a consumer's `set_waker`, another thread —
/// and the task is re-polled soon after, exactly once per burst of
/// wakes.
#[derive(Clone)]
pub struct Waker {
    ready: Arc<ReadyList>,
    task: u32,
}

impl Waker {
    pub(crate) fn new(ready: Arc<ReadyList>, task: u32) -> Self {
        Self { ready, task }
    }

    /// Schedules the task for another poll.
    pub fn wake(&self) {
        self.ready.wake(self.task);
    }

    /// Adapts the waker into the `Arc<dyn Fn()>` callback shape used by
    /// [`Consumer::set_waker`](jmst-api) and the broker's endpoint waker
    /// list.
    pub fn into_callback(self) -> Arc<dyn Fn() + Send + Sync> {
        Arc::new(move || self.wake())
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").field("task", &self.task).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_enqueues_once_per_burst() {
        let ready = ReadyList::new(4);
        ready.wake(2);
        ready.wake(2);
        ready.wake(2);
        assert_eq!(ready.pop(), Some(2));
        assert_eq!(ready.pop(), None);
    }

    #[test]
    fn wake_during_run_requeues() {
        let ready = ReadyList::new(1);
        ready.wake(0);
        assert_eq!(ready.pop(), Some(0));
        // Mid-poll wake: task is Running, so the wake flags Notified …
        ready.wake(0);
        assert!(ready.is_empty());
        // … and park_or_requeue converts the flag into a requeue.
        assert!(ready.park_or_requeue(0));
        assert_eq!(ready.pop(), Some(0));
        assert!(!ready.park_or_requeue(0));
    }

    #[test]
    fn finished_tasks_ignore_wakes() {
        let ready = ReadyList::new(1);
        ready.wake(0);
        assert_eq!(ready.pop(), Some(0));
        ready.finish(0);
        ready.wake(0);
        assert_eq!(ready.pop(), None);
    }

    #[test]
    fn waker_callback_round_trips() {
        let ready = Arc::new(ReadyList::new(2));
        let callback = Waker::new(Arc::clone(&ready), 1).into_callback();
        callback();
        assert_eq!(ready.pop(), Some(1));
    }
}
