//! # jmst-reactor
//!
//! A small readiness-driven scheduler — the shared core under the
//! broker endpoints, the harness drivers, and the open-loop load
//! engine. The build environment is offline (no tokio, no mio), so this
//! is a from-scratch reactor specialised to what the workspace needs:
//!
//! * **Poll-driven tasks** ([`Task`]): state machines advanced by
//!   non-blocking `poll` calls. One task per producer driver, consumer
//!   driver, or virtual client — tasks cost a heap allocation, not an
//!   OS thread, which is how `throughput_curve` sweeps to 1M clients.
//! * **O(ready) wake delivery** ([`ReadyList`], [`Waker`]): the
//!   generalisation of the load engine's old dirty-flag scan. A wake
//!   enqueues the task index once; a scheduling pass touches only ready
//!   tasks, never the idle population.
//! * **Timing-wheel timers** ([`TimingWheel`]): O(1) one-shot deadlines
//!   (moved here from `jmst-load`, which re-exports it).
//! * **A fixed worker pool** ([`Reactor`]): tasks are pinned to a
//!   worker at spawn, so each is polled by exactly one thread and can
//!   share that worker's state slot (e.g. one transport for thousands
//!   of clients) without locking.
//!
//! ```
//! use jmst_reactor::{Context, Poll, Reactor, Task};
//! use std::time::Duration;
//!
//! struct Ticker { left: u32 }
//!
//! impl Task for Ticker {
//!     fn poll(&mut self, cx: &mut Context<'_>) -> Poll {
//!         if self.left == 0 || cx.stopping() {
//!             return Poll::Ready;
//!         }
//!         self.left -= 1;
//!         cx.wake_after(Duration::from_millis(1));
//!         Poll::Pending
//!     }
//! }
//!
//! let mut reactor = Reactor::new(2);
//! for _ in 0..100 {
//!     reactor.spawn(Box::new(Ticker { left: 3 }));
//! }
//! let outcome = reactor.run(None, None);
//! assert_eq!(outcome.completed, 100);
//! ```

#![warn(missing_docs)]

mod executor;
mod ready;
mod task;
mod wheel;

pub use executor::{Reactor, RunOutcome};
pub use ready::{ReadyList, Waker};
pub use task::{Context, Poll, Task};
pub use wheel::TimingWheel;
