//! The worker-pool executor.
//!
//! A [`Reactor`] owns a fixed set of workers. Every task is pinned to
//! one worker at spawn time (explicitly, or round-robin), so a task is
//! only ever polled by one thread and needs no internal locking against
//! itself. Each worker runs a scheduling loop over three sources of
//! readiness:
//!
//! 1. its [`ReadyList`] — tasks woken by timers, by other tasks, or by
//!    external threads (broker sessions firing endpoint wakers);
//! 2. its [`TimingWheel`] — one-shot deadlines tasks armed via
//!    [`Context::wake_after`]/[`Context::wake_at_nanos`];
//! 3. an explicit [`Context::yield_now`] requeue.
//!
//! The loop pops *only ready* tasks; idle tasks cost nothing per pass.
//! When the queue is empty the worker parks until the next timer
//! deadline or an external wake, bounded by a short slice so stop flags
//! are observed promptly.

use crate::ready::ReadyList;
use crate::task::{Context, Poll, Task};
use crate::wheel::TimingWheel;
use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest a worker parks before re-checking stop flags and deadlines.
const PARK_SLICE: Duration = Duration::from_millis(10);
/// Pause between shutdown sweeps while tasks finish up.
const DRAIN_SLICE: Duration = Duration::from_millis(1);
/// Shutdown sweeps before remaining tasks are abandoned as unfinished
/// (a task violating the bounded-shutdown contract must not hang the
/// process).
const MAX_DRAIN_SWEEPS: u32 = 10_000;

/// What one reactor run did.
#[derive(Debug)]
pub struct RunOutcome {
    /// Tasks that returned [`Poll::Ready`].
    pub completed: usize,
    /// Tasks still alive when the run stopped (stop flag, deadline, or a
    /// task that ignored the shutdown contract).
    pub unfinished: usize,
    /// Total `poll` calls across all workers — the load-proportionality
    /// measure the O(ready) regression test asserts on.
    pub polls: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The worker-local state slots, in worker order, for the caller to
    /// downcast and harvest (reports, transports, …).
    pub worker_states: Vec<Option<Box<dyn Any + Send>>>,
}

/// A readiness-driven scheduler: spawn tasks, then [`run`](Reactor::run).
pub struct Reactor {
    tasks: Vec<Vec<Box<dyn Task>>>,
    worker_states: Vec<Option<Box<dyn Any + Send>>>,
    tick: Duration,
    slots: usize,
    next_worker: usize,
}

impl Reactor {
    /// A reactor with `workers` worker threads (clamped to at least 1)
    /// and the default 1 ms × 4096-slot timer wheel per worker.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            tasks: (0..workers).map(|_| Vec::new()).collect(),
            worker_states: (0..workers).map(|_| None).collect(),
            tick: Duration::from_millis(1),
            slots: 4096,
            next_worker: 0,
        }
    }

    /// Overrides the per-worker timer wheel geometry.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or `slots` is zero (wheel invariants).
    pub fn with_timer_resolution(mut self, tick: Duration, slots: usize) -> Self {
        assert!(!tick.is_zero(), "tick width must be positive");
        assert!(slots > 0, "need at least one slot");
        self.tick = tick;
        self.slots = slots;
        self
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.tasks.len()
    }

    /// Seeds worker `worker`'s shared state slot (see
    /// [`Context::state_mut`]).
    pub fn set_worker_state(&mut self, worker: usize, state: Box<dyn Any + Send>) {
        self.worker_states[worker] = Some(state);
    }

    /// Spawns `task` on the least-recently-used worker (round-robin).
    /// Returns the worker it was pinned to.
    pub fn spawn(&mut self, task: Box<dyn Task>) -> usize {
        let worker = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.tasks.len();
        self.spawn_on(worker, task);
        worker
    }

    /// Spawns `task` pinned to `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or the worker already holds
    /// `u32::MAX` tasks.
    pub fn spawn_on(&mut self, worker: usize, task: Box<dyn Task>) {
        assert!(worker < self.tasks.len(), "worker index out of range");
        assert!(
            self.tasks[worker].len() < u32::MAX as usize,
            "too many tasks on one worker"
        );
        self.tasks[worker].push(task);
    }

    /// Runs every spawned task to completion, or until `stop` is set or
    /// `run_for` elapses — whichever comes first. On shutdown each live
    /// task is swept with [`Context::stopping`] `true` until it
    /// completes.
    pub fn run(self, stop: Option<Arc<AtomicBool>>, run_for: Option<Duration>) -> RunOutcome {
        let epoch = Instant::now();
        let halt = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(self.tasks.len());
        for (worker, (tasks, state)) in self.tasks.into_iter().zip(self.worker_states).enumerate() {
            let stop = stop.clone();
            let halt = Arc::clone(&halt);
            let tick = self.tick;
            let slots = self.slots;
            handles.push(std::thread::spawn(move || {
                worker_loop(
                    worker, tasks, state, epoch, tick, slots, stop, run_for, halt,
                )
            }));
        }
        let mut outcome = RunOutcome {
            completed: 0,
            unfinished: 0,
            polls: 0,
            elapsed: Duration::ZERO,
            worker_states: Vec::with_capacity(handles.len()),
        };
        for handle in handles {
            let done = handle.join().expect("reactor worker panicked");
            outcome.completed += done.completed;
            outcome.unfinished += done.unfinished;
            outcome.polls += done.polls;
            outcome.worker_states.push(done.state);
        }
        outcome.elapsed = epoch.elapsed();
        outcome
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("workers", &self.tasks.len())
            .field(
                "tasks",
                &self.tasks.iter().map(Vec::len).collect::<Vec<_>>(),
            )
            .field("tick", &self.tick)
            .field("slots", &self.slots)
            .finish()
    }
}

struct WorkerDone {
    completed: usize,
    unfinished: usize,
    polls: u64,
    state: Option<Box<dyn Any + Send>>,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    tasks: Vec<Box<dyn Task>>,
    mut state: Option<Box<dyn Any + Send>>,
    epoch: Instant,
    tick: Duration,
    slots: usize,
    stop: Option<Arc<AtomicBool>>,
    run_for: Option<Duration>,
    halt: Arc<AtomicBool>,
) -> WorkerDone {
    let ready = Arc::new(ReadyList::new(tasks.len()));
    let mut slots_vec: Vec<Option<Box<dyn Task>>> = tasks.into_iter().map(Some).collect();
    let mut timers = TimingWheel::new(tick, slots);
    let mut live = slots_vec.len();
    let mut completed = 0usize;
    let mut polls = 0u64;
    let mut due = Vec::new();

    // Every task gets an initial poll, in spawn order.
    for index in 0..slots_vec.len() {
        ready.wake(index as u32);
    }

    let should_halt = |elapsed: Duration| {
        halt.load(Ordering::Acquire)
            || stop
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::Acquire))
            || run_for.is_some_and(|limit| elapsed >= limit)
    };

    while live > 0 {
        let now = epoch.elapsed();
        if should_halt(now) {
            // Tell the sibling workers too: one stop reason (e.g. this
            // worker's deadline check) halts the whole reactor.
            halt.store(true, Ordering::Release);
            break;
        }

        // Fire due timers into the ready list (dedup via TaskState).
        timers.advance(now.as_nanos() as u64, &mut due);
        for (_, task) in due.drain(..) {
            ready.wake(task);
        }

        // Drain the ready queue: O(ready), idle tasks untouched. The
        // budget bounds one pass so yield-looping tasks cannot starve
        // timer fires or the halt check above.
        let mut ran_any = false;
        let mut budget = 4096usize.max(slots_vec.len());
        while let Some(index) = ready.pop() {
            if budget == 0 {
                ready.requeue(index);
                break;
            }
            budget -= 1;
            let slot = &mut slots_vec[index as usize];
            let Some(task) = slot.as_mut() else {
                continue;
            };
            ran_any = true;
            polls += 1;
            let mut cx = Context {
                now: epoch.elapsed(),
                stopping: false,
                timers: &mut timers,
                ready: &ready,
                task: index,
                worker,
                state: &mut state,
                yielded: false,
            };
            match task.poll(&mut cx) {
                Poll::Ready => {
                    ready.finish(index);
                    *slot = None;
                    live -= 1;
                    completed += 1;
                }
                Poll::Pending => {
                    if cx.yielded {
                        ready.requeue(index);
                    } else {
                        ready.park_or_requeue(index);
                    }
                }
            }
        }
        if ran_any || live == 0 {
            continue;
        }

        // Nothing ready: park until the next timer, an external wake, or
        // the park slice — whichever is soonest.
        let now_nanos = epoch.elapsed().as_nanos() as u64;
        let until_timer = timers
            .next_deadline()
            .map(|deadline| Duration::from_nanos(deadline.saturating_sub(now_nanos)));
        let mut wait = until_timer.unwrap_or(PARK_SLICE).min(PARK_SLICE);
        if let Some(limit) = run_for {
            wait = wait.min(limit.saturating_sub(epoch.elapsed()));
        }
        if !wait.is_zero() {
            ready.park(wait);
        }
    }

    // Shutdown: sweep live tasks with `stopping = true` until each has
    // finished (they are contract-bound to do so in bounded polls).
    let mut sweeps = 0u32;
    while live > 0 && sweeps < MAX_DRAIN_SWEEPS {
        sweeps += 1;
        let mut progressed = false;
        for (index, slot) in slots_vec.iter_mut().enumerate() {
            let Some(task) = slot.as_mut() else {
                continue;
            };
            polls += 1;
            let mut cx = Context {
                now: epoch.elapsed(),
                stopping: true,
                timers: &mut timers,
                ready: &ready,
                task: index as u32,
                worker,
                state: &mut state,
                yielded: false,
            };
            if task.poll(&mut cx) == Poll::Ready {
                ready.finish(index as u32);
                *slot = None;
                live -= 1;
                completed += 1;
                progressed = true;
            }
        }
        if live > 0 && !progressed {
            std::thread::sleep(DRAIN_SLICE);
        }
    }

    WorkerDone {
        completed,
        unfinished: live,
        polls,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    /// Counts down on a timer cadence, recording fire times.
    struct Countdown {
        remaining: u32,
        gap: Duration,
        fired: Arc<AtomicU64>,
    }

    impl Task for Countdown {
        fn poll(&mut self, cx: &mut Context<'_>) -> Poll {
            if cx.stopping() || self.remaining == 0 {
                return Poll::Ready;
            }
            self.remaining -= 1;
            self.fired.fetch_add(1, Ordering::Relaxed);
            if self.remaining == 0 {
                return Poll::Ready;
            }
            cx.wake_after(self.gap);
            Poll::Pending
        }
    }

    #[test]
    fn tasks_run_to_completion_on_timers() {
        let fired = Arc::new(AtomicU64::new(0));
        let mut reactor = Reactor::new(2);
        for _ in 0..10 {
            reactor.spawn(Box::new(Countdown {
                remaining: 5,
                gap: Duration::from_millis(1),
                fired: Arc::clone(&fired),
            }));
        }
        let outcome = reactor.run(None, None);
        assert_eq!(outcome.completed, 10);
        assert_eq!(outcome.unfinished, 0);
        assert_eq!(fired.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn stop_flag_sweeps_tasks_out() {
        let fired = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let mut reactor = Reactor::new(1);
        reactor.spawn(Box::new(Countdown {
            remaining: u32::MAX,
            gap: Duration::from_millis(5),
            fired: Arc::clone(&fired),
        }));
        let flag = Arc::clone(&stop);
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag.store(true, Ordering::Release);
        });
        let outcome = reactor.run(Some(stop), None);
        canceller.join().unwrap();
        assert_eq!(outcome.completed, 1);
        assert_eq!(outcome.unfinished, 0);
        assert!(fired.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn run_deadline_halts_all_workers() {
        let mut reactor = Reactor::new(3);
        for _ in 0..3 {
            reactor.spawn(Box::new(Countdown {
                remaining: u32::MAX,
                gap: Duration::from_millis(2),
                fired: Arc::new(AtomicU64::new(0)),
            }));
        }
        let outcome = reactor.run(None, Some(Duration::from_millis(40)));
        assert_eq!(outcome.completed, 3);
        assert!(outcome.elapsed >= Duration::from_millis(40));
        assert!(outcome.elapsed < Duration::from_secs(5));
    }

    /// Parks forever until an external waker fires, then completes.
    struct WaitForWake {
        handoff: Arc<Mutex<Option<crate::Waker>>>,
        armed: bool,
    }

    impl Task for WaitForWake {
        fn poll(&mut self, cx: &mut Context<'_>) -> Poll {
            if cx.stopping() {
                return Poll::Ready;
            }
            if !self.armed {
                self.armed = true;
                *self.handoff.lock().unwrap() = Some(cx.waker());
                return Poll::Pending;
            }
            Poll::Ready
        }
    }

    #[test]
    fn external_wake_reschedules_parked_task() {
        let handoff = Arc::new(Mutex::new(None));
        let mut reactor = Reactor::new(1);
        reactor.spawn(Box::new(WaitForWake {
            handoff: Arc::clone(&handoff),
            armed: false,
        }));
        let waker_thread = std::thread::spawn(move || loop {
            if let Some(waker) = handoff.lock().unwrap().take() {
                std::thread::sleep(Duration::from_millis(10));
                waker.wake();
                return;
            }
            std::thread::yield_now();
        });
        let outcome = reactor.run(None, Some(Duration::from_secs(10)));
        waker_thread.join().unwrap();
        assert_eq!(outcome.completed, 1);
        assert!(outcome.elapsed < Duration::from_secs(5));
    }

    /// Uses the worker-local state slot as a shared accumulator.
    struct AddToSlot(u64);

    impl Task for AddToSlot {
        fn poll(&mut self, cx: &mut Context<'_>) -> Poll {
            *cx.state_mut::<u64>().expect("slot seeded") += self.0;
            Poll::Ready
        }
    }

    #[test]
    fn worker_state_is_shared_and_harvested() {
        let mut reactor = Reactor::new(2);
        reactor.set_worker_state(0, Box::new(0u64));
        reactor.set_worker_state(1, Box::new(0u64));
        for value in 1..=4u64 {
            reactor.spawn(Box::new(AddToSlot(value)));
        }
        let outcome = reactor.run(None, None);
        let total: u64 = outcome
            .worker_states
            .into_iter()
            .map(|slot| *slot.unwrap().downcast::<u64>().unwrap())
            .sum();
        assert_eq!(total, 10);
    }

    /// Yields a fixed number of times, then completes.
    struct Yielder {
        left: u32,
    }

    impl Task for Yielder {
        fn poll(&mut self, cx: &mut Context<'_>) -> Poll {
            if self.left == 0 {
                return Poll::Ready;
            }
            self.left -= 1;
            cx.yield_now();
            Poll::Pending
        }
    }

    #[test]
    fn yield_now_requeues_without_timers() {
        let mut reactor = Reactor::new(1);
        reactor.spawn(Box::new(Yielder { left: 100 }));
        let outcome = reactor.run(None, Some(Duration::from_secs(10)));
        assert_eq!(outcome.completed, 1);
        assert_eq!(outcome.polls, 101);
    }
}
