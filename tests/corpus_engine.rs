//! End-to-end tests of the scenario-corpus engine: the cross-product
//! generator (size, distinctness, lint-cleanliness, annotation
//! round-trip), the expected-verdict oracle on the seed subset, the
//! coverage-guided fuzzer's fixed-seed coverage guarantee, the
//! delta-minimiser, and the generated fault-detection matrix against
//! the committed EXPERIMENTS.md table.

use jmst::api::destination::Destination;
use jmst::corpus::fuzzer::active_fault_entries;
use jmst::corpus::{
    check_entry, fuzz, generate_corpus, matrix, minimize, reachable_tuples, run_entry,
    seed_entries, AckMode, CorpusEntry, ExpectedVerdict, FaultKind, FuzzConfig,
};
use jmst::harness::{lint_spec, ConsumerSpec, FaultPlan, NodeSpec, ProducerSpec, TestSpec};
use std::path::PathBuf;
use std::time::Duration;

#[test]
fn generator_emits_a_large_lint_clean_annotated_corpus() {
    let corpus = generate_corpus();
    assert!(
        corpus.len() >= 200,
        "corpus has only {} scenarios",
        corpus.len()
    );

    // Names are distinct.
    let mut names: Vec<&str> = corpus.iter().map(|entry| entry.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), corpus.len(), "duplicate scenario names");

    // The full acknowledgement-mode × fault-kind cross-product is
    // covered by the base family alone.
    for ack in AckMode::ALL {
        for fault in FaultKind::ALL {
            let prefix = format!("base-{}-{}", ack.name(), fault.name());
            assert!(
                corpus.iter().any(|entry| entry.name == prefix),
                "cross-product hole: no {prefix}"
            );
        }
    }

    // Every entry serializes, round-trips through the text format with
    // its annotations intact, and lints clean.
    for entry in &corpus {
        let text = entry
            .config_text()
            .unwrap_or_else(|error| panic!("{}: does not serialize: {error}", entry.name));
        let back = CorpusEntry::from_config_text(&text)
            .unwrap_or_else(|error| panic!("{}: does not read back: {error}", entry.name));
        assert_eq!(back.spec, entry.spec, "{} spec drifted", entry.name);
        assert_eq!(back.fault, entry.fault, "{} fault drifted", entry.name);
        assert_eq!(back.expect, entry.expect, "{} oracle drifted", entry.name);
        let report = lint_spec(&entry.spec);
        assert!(
            !report.has_errors(),
            "{}: lint errors:\n{report}",
            entry.name
        );
    }
}

#[test]
fn seed_subset_verdicts_match_their_annotations() {
    // The deterministic smoke subset: one proven scenario per reachable
    // coverage tuple, each held to its annotation by a real run.
    let seeds = seed_entries();
    assert_eq!(seeds.len(), reachable_tuples().len());
    let mut failures = Vec::new();
    for entry in &seeds {
        if let Err(divergence) = check_entry(entry) {
            failures.push(divergence);
        }
    }
    assert!(failures.is_empty(), "diverged:\n{}", failures.join("\n"));
}

#[test]
fn fixed_seed_fuzz_reaches_ninety_percent_of_reachable_tuples() {
    let outcome = fuzz(&FuzzConfig {
        seed: 7,
        max_runs: 16,
        time_budget: None,
        minimize_divergent: false,
    });
    assert!(
        outcome.coverage_ratio() >= 0.9,
        "coverage {:.0}% of {} reachable tuples after {} runs; missing: {:?}",
        outcome.coverage_ratio() * 100.0,
        reachable_tuples().len(),
        outcome.runs,
        outcome
            .coverage
            .missing_from(&reachable_tuples())
            .iter()
            .map(|key| key.to_string())
            .collect::<Vec<_>>()
    );
    assert!(
        outcome.divergent.is_empty(),
        "fuzzer found pipeline divergences: {:?}",
        outcome
            .divergent
            .iter()
            .map(|find| find.entry.name.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn minimiser_shrinks_a_divergent_scenario_on_every_axis() {
    // A deliberately mis-annotated scenario: it injects drops and
    // duplicates (and a delivery delay) but claims it should pass, so
    // every run diverges. The minimiser must shrink it strictly on all
    // four axes — producers, consumers, active fault entries, run time —
    // while the shrunk spec still reproduces the divergence.
    let mut plan = FaultPlan::none();
    plan.seed = 11;
    plan.drop_probability = 0.25;
    plan.duplicate_probability = 0.25;
    plan.delivery_delay = Duration::from_millis(5);
    let destination = Destination::queue("q");
    let spec = TestSpec::new("divergence-seed")
        .with_seed(7)
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(300),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(destination.clone(), 300.0, 128))
                .producer(ProducerSpec::steady(destination.clone(), 300.0, 128))
                .producer(ProducerSpec::steady(destination.clone(), 300.0, 128))
                .consumer(ConsumerSpec::auto(destination.clone()))
                .consumer(ConsumerSpec::auto(destination.clone())),
        )
        .with_faults(plan);
    let entry = CorpusEntry {
        name: spec.name.clone(),
        spec,
        fault: FaultKind::Clean,
        expect: ExpectedVerdict::Pass,
    };

    // It diverges as seeded.
    let observed = run_entry(&entry).expect("seeded scenario lints and runs");
    assert!(
        !observed.matches(entry.expect),
        "seeded scenario did not diverge (observed {observed})"
    );

    let (minimized, runs_spent) = minimize(&entry);
    assert!(runs_spent <= 60, "minimiser spent {runs_spent} runs");

    assert!(
        minimized.producer_count() < entry.spec.producer_count(),
        "producers not shrunk: {}",
        minimized.producer_count()
    );
    assert!(
        minimized.consumer_count() < entry.spec.consumer_count(),
        "consumers not shrunk: {}",
        minimized.consumer_count()
    );
    assert!(
        active_fault_entries(&minimized) < active_fault_entries(&entry.spec),
        "fault entries not shrunk: {}",
        active_fault_entries(&minimized)
    );
    assert!(
        minimized.run < entry.spec.run,
        "run time not shrunk: {:?}",
        minimized.run
    );

    // The minimal scenario still reproduces the divergence and is still
    // expressible as a .cfg file.
    let shrunk_entry = CorpusEntry {
        name: minimized.name.clone(),
        spec: minimized,
        fault: entry.fault,
        expect: entry.expect,
    };
    let observed = run_entry(&shrunk_entry).expect("minimized scenario lints and runs");
    assert!(
        !observed.matches(shrunk_entry.expect),
        "minimized scenario no longer diverges"
    );
    shrunk_entry
        .config_text()
        .expect("minimized scenario serializes to a .cfg");
}

#[test]
fn committed_fault_detection_matrix_matches_a_real_run() {
    // EXPERIMENTS.md's fault-detection matrix is a generated artifact;
    // this re-runs the seeded-defect corpus and fails on drift. Refresh
    // with: cargo run --release --example jmst_corpus -- matrix --update EXPERIMENTS.md
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("EXPERIMENTS.md");
    let document = std::fs::read_to_string(&path).expect("EXPERIMENTS.md exists");
    let rendered = matrix::render_matrix();
    matrix::check_document(&document, &rendered).unwrap_or_else(|drift| panic!("{drift}"));
}
