//! Differential test for the multi-process prince: running a spec's
//! drivers in a worker process (framed protocol, events over the wire)
//! must be observationally identical to running them as threads — same
//! analyzer verdict, same per-consumer delivery multisets — at shard
//! counts 1 and 8, and even when the worker is SIGKILLed mid-run (the
//! prince respawns it and the aborted attempt's events are discarded).
//!
//! Worker processes are the `jmst-princed` binary itself, located via
//! `CARGO_BIN_EXE_jmst-princed`.

use jmst::harness::princed::{spec_factory, ChaosKill, ProcessPrince};
use jmst::harness::process::WorkerCommand;
use jmst::harness::spec::{
    ConsumerSpec, NodeSpec, ProducerSpec, TestSpec, TransportMode, TransportSpec,
};
use jmst_api::destination::Destination;
use jmst_store::{EventKind, Trace};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn worker() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_jmst-princed"))
}

/// A deterministic two-queue spec: message-limited producers, one
/// consumer per queue, clean broker — every sent message is delivered
/// exactly once regardless of scheduling, so the delivery multiset is a
/// function of the spec alone.
fn diff_spec(name: &str, shards: u32) -> TestSpec {
    TestSpec::new(name)
        .with_seed(17)
        .with_periods(
            Duration::from_millis(50),
            Duration::from_millis(500),
            Duration::from_secs(3),
        )
        .with_shards(shards)
        .with_transport(TransportSpec::process().with_respawn_limit(3))
        .node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(Destination::queue("diff-a"), 200.0, 64).limited(50))
                .producer(ProducerSpec::steady(Destination::queue("diff-b"), 150.0, 96).limited(30))
                .consumer(ConsumerSpec::auto(Destination::queue("diff-a")))
                .consumer(ConsumerSpec::auto(Destination::queue("diff-b"))),
        )
}

/// Runs `spec` under the given transport mode and returns the stable
/// verdict line plus the persisted trace.
fn run_mode(
    spec: &TestSpec,
    mode: TransportMode,
    tag: &str,
    chaos: Option<ChaosKill>,
) -> (String, Trace) {
    let dir = std::env::temp_dir().join(format!("jmst-procdiff-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut prince = ProcessPrince::new()
        .with_worker(worker())
        .with_trace_dir(&dir)
        .with_mode_override(mode);
    if let Some(kill) = chaos {
        prince = prince.with_chaos_kill(kill);
    }
    let report = prince
        .run_campaign("differential", &spec_factory, std::slice::from_ref(spec))
        .expect("campaign runs");
    assert_eq!(report.results.len(), 1);
    let summary = report.stable_summary();
    let sanitized: String = spec
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path: PathBuf = dir.join(format!("{sanitized}.trace.jsonl"));
    let trace = Trace::load_jsonl(&path).expect("trace persisted");
    std::fs::remove_dir_all(&dir).ok();
    (summary, trace)
}

/// Per-consumer delivery multiset: each consumer is identified by the
/// destination it drains (raw consumer ids depend on driver start-up
/// order, which is not part of the spec's observable behaviour; each
/// consumer in the spec has a unique destination). Value: multiset of
/// `(producer, sequence)` pairs that consumer received.
fn delivery_multisets(trace: &Trace) -> BTreeMap<String, BTreeMap<(u64, u64), u32>> {
    let mut sets: BTreeMap<String, BTreeMap<(u64, u64), u32>> = BTreeMap::new();
    let mut consumers: BTreeMap<u64, String> = BTreeMap::new();
    for event in trace.events() {
        if let EventKind::Receive {
            consumer, record, ..
        } = &event.kind
        {
            let key = consumers
                .entry(consumer.as_u64())
                .or_insert_with(|| format!("{:?}", record.destination))
                .clone();
            *sets
                .entry(key)
                .or_default()
                .entry((record.producer.as_u64(), record.sequence))
                .or_insert(0u32) += 1;
        }
    }
    sets
}

fn assert_modes_agree(shards: u32, chaos: Option<ChaosKill>, tag: &str) {
    let spec = diff_spec(&format!("procdiff-{tag}"), shards);
    let (thread_summary, thread_trace) =
        run_mode(&spec, TransportMode::Thread, &format!("{tag}-thread"), None);
    let (process_summary, process_trace) = run_mode(
        &spec,
        TransportMode::Process,
        &format!("{tag}-process"),
        chaos,
    );
    assert_eq!(
        thread_summary, process_summary,
        "verdicts diverge between thread and process mode"
    );
    assert!(
        thread_summary.contains("PASS"),
        "the clean spec must pass: {thread_summary}"
    );
    let thread_sets = delivery_multisets(&thread_trace);
    let process_sets = delivery_multisets(&process_trace);
    assert_eq!(
        thread_sets, process_sets,
        "per-consumer delivery multisets diverge"
    );
    // Sanity: both consumers actually received their full queues.
    assert_eq!(thread_sets.len(), 2, "two consumers expected");
    let total: u32 = thread_sets.values().flat_map(|s| s.values()).sum();
    assert_eq!(total, 80, "50 + 30 limited messages delivered exactly once");
}

#[test]
fn process_mode_matches_thread_mode_one_shard() {
    assert_modes_agree(1, None, "s1");
}

#[test]
fn process_mode_matches_thread_mode_eight_shards() {
    assert_modes_agree(8, None, "s8");
}

#[test]
fn kill_dash_nine_mid_run_is_respawned_and_verdicts_still_agree() {
    // The worker is SIGKILLed after 20 collected events; the prince
    // reaps it, discards the aborted attempt, respawns, and the rerun's
    // verdict and delivery multisets equal the uninterrupted thread run.
    assert_modes_agree(
        1,
        Some(ChaosKill {
            test_index: 0,
            after_events: 20,
        }),
        "kill9",
    );
}
