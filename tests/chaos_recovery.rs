//! The chaos acceptance experiment: a scenario that combines operational
//! connect faults, a mid-run broker crash, and client-acknowledge
//! consumers must still complete with a clean verdict — the resilient
//! drivers absorb the faults, the broker redelivers what the crash left
//! unacknowledged, and the analyzer knows a licensed redelivery from a
//! duplicate. The *same* scenario with retries disabled must instead be
//! reported `Inconclusive`, with the salvaged partial trace analysed.

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn chaos_spec(name: &str, retry: RetryPolicy) -> TestSpec {
    let mut faults = FaultPlan::none();
    faults.seed = 9;
    faults.connect_failure_probability = 0.2;
    TestSpec::new(name)
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(500),
            Duration::from_secs(4),
        )
        .node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(Destination::queue("q"), 200.0, 128)
                        .with_delivery_mode(DeliveryMode::Persistent),
                )
                .consumer(
                    ConsumerSpec::auto(Destination::queue("q"))
                        .with_mode(SessionMode::ClientAcknowledge, 5),
                ),
        )
        .with_crash(CrashPlan {
            crash_after: Duration::from_millis(200),
            down_for: Duration::from_millis(80),
        })
        .with_faults(faults)
        .with_retry(retry)
}

fn run_chaos(spec: &TestSpec) -> TestResult {
    let prince =
        DaemonPrince::with_analyzer(Analyzer::with_config(AnalysisConfig::strict_safety_only()));
    let factory = |spec: &TestSpec| -> (Arc<dyn jmst::api::provider::Provider>, _) {
        let config = spec.broker_config().expect("valid fault plan");
        let broker = ReferenceBroker::with_config(config);
        let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
        (Arc::new(broker), Some(admin))
    };
    prince.run_test(&factory, spec)
}

#[test]
fn chaos_scenario_passes_with_resilient_drivers() {
    let result = run_chaos(&chaos_spec("chaos-resilient", RetryPolicy::default()));
    match result.outcome {
        TestOutcome::Passed(report) => {
            assert!(report.sends > 10, "only {} sends", report.sends);
            assert!(report.receives > 0, "{report}");
        }
        other => panic!("expected Passed, got {other:?}"),
    }
}

#[test]
fn same_scenario_without_retries_is_inconclusive() {
    // The crash guarantees at least one connection loss; with the retry
    // budget at zero, the first unabsorbed failure gives the run up.
    let result = run_chaos(&chaos_spec("chaos-fragile", RetryPolicy::disabled()));
    match result.outcome {
        TestOutcome::Inconclusive { reason, report } => {
            assert!(
                reason.contains("budget") || reason.contains("deadline"),
                "unexpected give-up reason: {reason}"
            );
            // The salvaged partial trace was still analysed.
            assert!(report.events_analyzed > 0, "{report}");
        }
        other => panic!("expected Inconclusive, got {other:?}"),
    }
}

#[test]
fn poison_messages_park_on_the_dlq_not_the_consumer() {
    // A consumer that receives but never acknowledges: every delivery is
    // recovered, so each message cycles until the broker's redelivery
    // bound parks it on the dead-letter queue. The analyzer must neither
    // flag the redeliveries as duplicates nor the parked messages as
    // lost — and the bound itself must be respected.
    use jmst::api::message::MessageDraft;
    use jmst::api::provider::Provider;

    let bound = 2;
    let config = BrokerConfig::correct().with_max_redeliveries(bound);
    let broker = ReferenceBroker::with_config(config);
    let mut connection = broker.create_connection(None).expect("connect");
    connection.start().expect("start");
    let mut producer_session = connection
        .create_session(SessionMode::AutoAcknowledge)
        .expect("session");
    let mut producer = producer_session
        .create_producer(&Destination::queue("poison"))
        .expect("producer");
    producer
        .send(MessageDraft::new(jmst::api::body::Body::text("bad")))
        .expect("send");

    let mut consumer_session = connection
        .create_session(SessionMode::ClientAcknowledge)
        .expect("session");
    let mut consumer = consumer_session
        .create_consumer(&Destination::queue("poison"), None)
        .expect("consumer");
    let mut deliveries = 0;
    for _ in 0..=bound {
        let message = consumer
            .receive(Some(Duration::from_millis(200)))
            .expect("receive")
            .expect("message available");
        deliveries += 1;
        assert_eq!(message.delivery_count(), deliveries);
        consumer_session.recover().expect("recover");
    }
    // The bound is exhausted: the message is parked, not redelivered.
    assert!(consumer
        .receive(Some(Duration::from_millis(50)))
        .expect("receive")
        .is_none());
    let parked = broker.drain_dead_letters();
    assert_eq!(parked.len(), 1);
    assert_eq!(parked[0].parked_on.as_str(), "DLQ.poison");
}
