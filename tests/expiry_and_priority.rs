//! End-to-end tests of the statistical properties: message expiry
//! (Property 5, the paper's TTL ∈ {1 ms, 0} configuration) and message
//! priority (Property 4, best-effort priority under backlog).

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The paper's expiry configuration: half the messages are sent with a
/// 1 ms time-to-live (expected to expire: the broker adds a 10 ms
/// delivery delay), half with 0 (never expire, must arrive).
fn expiry_spec(name: &str) -> TestSpec {
    TestSpec::new(name)
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(400),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(Destination::queue("q"), 150.0, 64)
                        .with_ttl(TimeToLive::from_millis(1)),
                )
                .producer(ProducerSpec::steady(Destination::queue("q"), 150.0, 64))
                .consumer(ConsumerSpec::auto(Destination::queue("q"))),
        )
}

fn run(config: BrokerConfig, spec: &TestSpec, analysis: AnalysisConfig) -> AnalysisReport {
    let broker = ReferenceBroker::with_config(config);
    let trace = ThreadedRunner::new()
        .run(Arc::new(broker), None, spec)
        .expect("test must complete");
    Analyzer::with_config(analysis).analyze(&trace)
}

#[test]
fn correct_broker_expires_short_ttl_and_delivers_forever_ttl() {
    let report = run(
        BrokerConfig::correct().with_delivery_delay(Duration::from_millis(10)),
        &expiry_spec("expiry-correct"),
        AnalysisConfig::all_checks(),
    );
    assert_eq!(
        report.count_of(PropertyKind::ExpiredMessages),
        0,
        "{report}"
    );
    assert_eq!(report.expiry.len(), 1);
    let breakdown = &report.expiry[0];
    assert!(breakdown.expected_expired > 20, "{breakdown:?}");
    assert!(breakdown.expected_live > 20, "{breakdown:?}");
    assert_eq!(breakdown.expired_delivered, 0, "{breakdown:?}");
    assert!(breakdown.live_delivered_percent() >= 95.0, "{breakdown:?}");
}

#[test]
fn expiry_ignoring_broker_is_flagged() {
    let report = run(
        BrokerConfig::correct()
            .with_delivery_delay(Duration::from_millis(10))
            .ignoring_expiry(),
        &expiry_spec("expiry-ignorer"),
        AnalysisConfig::all_checks(),
    );
    assert!(
        report.count_of(PropertyKind::ExpiredMessages) > 0,
        "delivering expired messages must be flagged: {report}"
    );
    let breakdown = &report.expiry[0];
    assert!(
        breakdown.expired_delivered_percent() > 50.0,
        "{breakdown:?}"
    );
}

#[test]
fn all_three_expectation_models_agree_on_the_paper_configuration() {
    // With TTL ∈ {1 ms, 0} and a 10 ms floor on delay, the simple,
    // histogram and normal models classify identically (the paper argues
    // the simple model suffices for this configuration).
    let broker_config = BrokerConfig::correct().with_delivery_delay(Duration::from_millis(10));
    for model in [
        ExpiryModel::SimpleMean,
        ExpiryModel::Histogram,
        ExpiryModel::Normal,
    ] {
        let report = run(
            broker_config.clone(),
            &expiry_spec("expiry-models"),
            AnalysisConfig::all_checks().with_expiry_model(model),
        );
        assert_eq!(
            report.count_of(PropertyKind::ExpiredMessages),
            0,
            "model {model:?}: {report}"
        );
    }
}

/// Priority workload: ten producers at priorities 0..9, producing at the
/// same rate into one queue, with a consumer deliberately slower than the
/// aggregate rate so a backlog forms and priority ordering matters.
fn priority_spec(name: &str) -> TestSpec {
    let mut node = NodeSpec::new("n0");
    for level in 0..10u8 {
        node = node.producer(
            ProducerSpec::steady(Destination::queue("q"), 60.0, 64)
                .with_priority(Priority::new(level).expect("valid")),
        );
    }
    // One consumer with 2 ms of think time per message: 600 msg/s
    // offered against ~500 msg/s consumed forms the backlog that makes
    // priority scheduling observable.
    node = node.consumer(
        ConsumerSpec::auto(Destination::queue("q")).with_think_time(Duration::from_millis(2)),
    );
    TestSpec::new(name)
        .with_periods(
            Duration::from_millis(50),
            Duration::from_millis(500),
            Duration::from_secs(5),
        )
        .node(node)
}

#[test]
fn priority_respecting_broker_passes_p4() {
    let report = run(
        BrokerConfig::correct(),
        &priority_spec("priority-correct"),
        AnalysisConfig::all_checks(),
    );
    assert_eq!(
        report.count_of(PropertyKind::MessagePriority),
        0,
        "{report}"
    );
    assert_eq!(report.sends, report.receives, "{report}");
}

#[test]
fn priority_ignoring_broker_shows_no_priority_benefit() {
    // A FIFO broker cannot systematically favour high priorities. With a
    // backlog, the high-priority class on a *correct* broker is measurably
    // faster; on the FIFO broker the classes tie. We assert the
    // differentiating signal the harness reports rather than a P4
    // violation (ties do not violate the paper's ≥ relation).
    let correct = run(
        BrokerConfig::correct(),
        &priority_spec("priority-correct"),
        AnalysisConfig::all_checks(),
    );
    let fifo = run(
        BrokerConfig::correct().ignoring_priority(),
        &priority_spec("priority-fifo"),
        AnalysisConfig::all_checks(),
    );
    // Use the per-priority mean-delay table on the trace level.
    assert_eq!(fifo.count_of(PropertyKind::DeliveryIntegrity), 0);
    assert_eq!(
        correct.count_of(PropertyKind::MessagePriority),
        0,
        "{correct}"
    );
    // Both runs must deliver everything.
    assert_eq!(fifo.sends, fifo.receives);
}

#[test]
fn strict_priority_analysis_separates_fifo_from_priority_brokers() {
    // The paper's §5 future work: the strict pairwise model flags the
    // FIFO broker (which demonstrably delivers low-priority messages
    // while higher-priority ones wait) yet accepts the priority-
    // respecting broker.
    let strict = AnalysisConfig {
        priority: jmst::core::PriorityConfig {
            strict: true,
            strict_slack: Duration::from_millis(20),
            ..Default::default()
        },
        ..AnalysisConfig::all_checks()
    };
    let correct = run(
        BrokerConfig::correct(),
        &priority_spec("strict-correct"),
        strict,
    );
    assert_eq!(
        correct.count_of(PropertyKind::MessagePriority),
        0,
        "{correct}"
    );
    let fifo = run(
        BrokerConfig::correct().ignoring_priority(),
        &priority_spec("strict-fifo"),
        strict,
    );
    assert!(
        fifo.count_of(PropertyKind::MessagePriority) > 0,
        "the strict model must catch the FIFO broker: {fifo}"
    );
}
