//! End-to-end use of the declarative scenario format: parse a text
//! description, run it as a campaign over several providers, and check
//! the verdicts — the paper's "describe the type of scenario envisaged"
//! workflow (§5) from text to report.

use jmst::harness::parse_spec;
use jmst::prelude::*;
use std::sync::Arc;

const SCENARIO: &str = r#"
# Mixed pub/sub scenario with a durable auditor and a selective reader.
[test]
name = mixed-scenario
seed = 17
warm_up = 30ms
run = 300ms
warm_down = 3s

[node producers]

[producer]
destination = topic:orders
rate = steady 150
body = bytes 128
priority = 8

[producer]
destination = topic:orders
rate = poisson 150
body = map 96
priority = 2
delivery = non-persistent

[node consumers]

[consumer]
destination = topic:orders
durable = auditor
mode = transacted 5

[consumer]
destination = topic:orders
selector = JMSPriority >= 5
"#;

#[test]
fn scenario_text_runs_as_a_campaign() {
    let spec = parse_spec(SCENARIO).expect("scenario parses");
    assert_eq!(spec.name, "mixed-scenario");
    assert_eq!(spec.producer_count(), 2);
    assert_eq!(spec.consumer_count(), 2);

    let factory = |spec: &TestSpec| -> (
        Arc<dyn jmst::api::provider::Provider>,
        Option<Arc<dyn BrokerAdmin>>,
    ) {
        let config = if spec.name.contains("faulty") {
            BrokerConfig::correct().with_faults(FaultSpec::none().forging(0.1).seeded(3))
        } else {
            BrokerConfig::correct()
        };
        (Arc::new(ReferenceBroker::with_config(config)), None)
    };
    // Same scenario against a clean and a faulty provider.
    let mut faulty = spec.clone();
    faulty.name = "mixed-scenario-faulty".to_owned();
    let campaign = DaemonPrince::new().run_campaign(&factory, &[spec, faulty]);
    assert_eq!(campaign.passed(), 1, "{campaign}");
    assert_eq!(campaign.violated(), 1, "{campaign}");
    let faulty_report = campaign.results[1].outcome.report().expect("ran");
    assert!(faulty_report.count_of(PropertyKind::DeliveryIntegrity) > 0);
}

#[test]
fn scenario_round_trips_through_disk() {
    // Scenario files are ordinary files: write, read, parse, validate.
    let path = std::env::temp_dir().join(format!("jmst-scenario-{}.cfg", std::process::id()));
    std::fs::write(&path, SCENARIO).expect("write scenario");
    let text = std::fs::read_to_string(&path).expect("read scenario");
    std::fs::remove_file(&path).ok();
    let spec = parse_spec(&text).expect("parses after round trip");
    assert!(spec.validate().is_ok());
}
