//! Differential acceptance tests of the property DSL: every built-in
//! safety property re-expressed as a DSL declaration and compiled onto
//! the streaming checker core must reach verdicts identical to the
//! built-in checker it mirrors — same violations, same counts — over
//! randomized fault-scripted broker runs at 1 and 8 shards, including
//! partial traces salvaged from inconclusive or hung runs.
//!
//! Two analyzers look at each trace: one running only the built-in
//! checks (the oracle), one running only the compiled DSL mirrors from
//! `scenarios/props/builtins.prop`-style declarations. Their violation
//! multisets must be equal, and the DSL analyzer must agree with itself
//! across the batch and streaming paths.

use jmst::core::{AnalysisConfig, CheckerRegistry};
use jmst::harness::HarnessError;
use jmst::prelude::*;
use jmst::props::{compile_registry, parse_properties};
use jmst::store::sink::EventSink;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The DSL mirror of every built-in check the oracle runs; the
/// redelivery bound rides along only when the broker enforces one.
fn mirror_registry(max_redeliveries: Option<u32>) -> CheckerRegistry {
    let mut text = String::from(
        "in_order = ordered\n\
         no_dupes = no_duplicates\n\
         everything = required\n\
         untampered = integrity\n\
         by_priority = priority\n\
         not_expired = expiry\n",
    );
    if let Some(bound) = max_redeliveries {
        text.push_str(&format!("bounded = redelivery <= {bound}\n"));
    }
    compile_registry(&parse_properties(&text).expect("mirror declarations parse"))
}

/// The oracle: built-in checks only, no registry.
fn builtin_analyzer(max_redeliveries: Option<u32>) -> Analyzer {
    let mut config = AnalysisConfig::default();
    if let Some(bound) = max_redeliveries {
        config = config.with_redelivery_bound(bound);
    }
    Analyzer::with_config(config)
}

/// The subject: every built-in check off, DSL mirrors only.
fn dsl_analyzer(max_redeliveries: Option<u32>) -> Analyzer {
    let config = AnalysisConfig {
        check_integrity: false,
        check_required: false,
        check_ordering: false,
        check_priority: false,
        check_expiry: false,
        check_duplicates: false,
        redelivery_bound: None,
        ..AnalysisConfig::default()
    };
    Analyzer::with_config(config).with_registry(mirror_registry(max_redeliveries))
}

/// Sorted violation multiset, comparable across checker orderings.
fn violation_multiset(report: &AnalysisReport) -> Vec<String> {
    let mut set: Vec<String> = report
        .violations
        .iter()
        .map(|violation| format!("{violation:?}"))
        .collect();
    set.sort();
    set
}

/// Streams the trace through the live transport into the analyzer's
/// streaming pipeline, named checkers included.
fn streaming_report(analyzer: &Analyzer, trace: &Trace) -> AnalysisReport {
    let (mut sink, stream) = jmst::store::channel(1024, 4096);
    let mut streaming = analyzer.streaming();
    let consumer = std::thread::spawn(move || {
        for event in stream {
            streaming.observe(&event);
        }
        streaming.finish()
    });
    for event in trace {
        sink.accept(event);
    }
    sink.close();
    consumer.join().expect("streaming analysis thread")
}

fn assert_dsl_matches_builtin(trace: &Trace, max_redeliveries: Option<u32>, context: &str) {
    let oracle = builtin_analyzer(max_redeliveries).analyze(trace);
    let dsl = dsl_analyzer(max_redeliveries);
    let batch = dsl.analyze(trace);
    assert_eq!(
        violation_multiset(&oracle),
        violation_multiset(&batch),
        "DSL mirrors diverged from the built-ins: {context}"
    );
    // The oracle runs no named checkers; the subject attributes every
    // violation to one.
    assert!(oracle.named.is_empty());
    assert_eq!(
        batch.violations.len(),
        batch
            .named
            .iter()
            .map(|outcome| outcome.violations)
            .sum::<usize>(),
        "named outcome counts do not add up: {context}"
    );
    // And the DSL analyzer agrees with itself across both drive modes.
    let streamed = streaming_report(&dsl, trace);
    assert_eq!(
        batch, streamed,
        "DSL batch vs streaming diverged: {context}"
    );
}

/// One generated fault/recovery script for a short broker run.
#[derive(Debug, Clone)]
struct FaultScript {
    shards: usize,
    seed: u64,
    drop: f64,
    duplicate: f64,
    reorder: f64,
    ack_loss: f64,
    crash: bool,
    max_redeliveries: Option<u32>,
}

fn arb_script() -> impl Strategy<Value = FaultScript> {
    (
        prop_oneof![Just(1usize), Just(8usize)],
        0u64..1_000,
        prop_oneof![Just(0.0), Just(0.1), Just(0.3)],
        prop_oneof![Just(0.0), Just(0.2)],
        prop_oneof![Just(0.0), Just(0.3)],
        prop_oneof![Just(0.0), Just(0.15)],
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(2u32))],
    )
        .prop_map(
            |(shards, seed, drop, duplicate, reorder, ack_loss, crash, max_redeliveries)| {
                FaultScript {
                    shards,
                    seed,
                    drop,
                    duplicate,
                    reorder,
                    ack_loss,
                    crash,
                    max_redeliveries,
                }
            },
        )
}

fn script_spec(script: &FaultScript) -> TestSpec {
    let mut spec = TestSpec::new("props-differential")
        .with_seed(script.seed)
        .with_periods(
            Duration::from_millis(10),
            Duration::from_millis(120),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(Destination::queue("q"), 300.0, 64)
                        .with_delivery_mode(DeliveryMode::Persistent),
                )
                .consumer(
                    ConsumerSpec::auto(Destination::queue("q"))
                        .with_mode(SessionMode::ClientAcknowledge, 3),
                ),
        );
    if script.crash {
        spec = spec.with_crash(CrashPlan {
            crash_after: Duration::from_millis(50),
            down_for: Duration::from_millis(25),
        });
    }
    spec
}

fn script_broker(script: &FaultScript) -> ReferenceBroker {
    let faults = FaultSpec::none()
        .dropping(script.drop)
        .duplicating(script.duplicate)
        .reordering(script.reorder, Duration::from_millis(3))
        .losing_acks(script.ack_loss)
        .seeded(script.seed);
    let mut config = BrokerConfig::correct()
        .with_shards(script.shards)
        .with_faults(faults);
    if let Some(bound) = script.max_redeliveries {
        config = config.with_max_redeliveries(bound);
    }
    ReferenceBroker::with_config(config)
}

/// Runs the script, salvaging the partial trace when the faults made
/// the run inconclusive — the mirrors must agree on salvaged traces
/// just as on completed ones.
fn script_trace(script: &FaultScript) -> Trace {
    let broker = script_broker(script);
    let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
    match ThreadedRunner::new().run(Arc::new(broker), Some(admin), &script_spec(script)) {
        Ok(trace) => trace,
        Err(HarnessError::Inconclusive { partial_trace, .. })
        | Err(HarnessError::TestHung { partial_trace, .. }) => *partial_trace,
        Err(other) => panic!("unexpected harness error: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dsl_mirrors_equal_builtins_under_random_fault_scripts(script in arb_script()) {
        let trace = script_trace(&script);
        assert_dsl_matches_builtin(&trace, script.max_redeliveries, &format!("{script:?}"));
    }
}

#[test]
fn dsl_mirrors_equal_builtins_on_clean_sharded_runs() {
    for shards in [1usize, 8] {
        let script = FaultScript {
            shards,
            seed: 42,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            ack_loss: 0.0,
            crash: false,
            max_redeliveries: None,
        };
        let trace = script_trace(&script);
        assert_dsl_matches_builtin(&trace, None, &format!("clean run, {shards} shard(s)"));
    }
}

#[test]
fn dsl_mirrors_equal_builtins_through_crash_recovery_with_dlq() {
    let script = FaultScript {
        shards: 8,
        seed: 7,
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        ack_loss: 0.4,
        crash: true,
        max_redeliveries: Some(2),
    };
    let trace = script_trace(&script);
    // Heavy ack loss with a tight redelivery bound parks messages on the
    // DLQ; the mirrors must account for them exactly like the built-ins.
    assert_dsl_matches_builtin(&trace, Some(2), "crash + ack loss + DLQ");
}

#[test]
fn committed_prop_fixtures_parse_and_compile() {
    // The checked-in `.prop` fixtures under scenarios/props/ stay honest:
    // clean files parse, lint without errors, and compile; broken ones
    // are rejected by the static front end with their advertised rule.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("props");
    let mut expected_rules = std::collections::BTreeMap::new();
    expected_rules.insert("ill_typed.broken.prop", "prop-ill-typed");
    expected_rules.insert("vacuous.broken.prop", "prop-vacuous");
    expected_rules.insert("unsat.broken.prop", "prop-unsat");
    let mut seen_clean = 0usize;
    let mut seen_broken = 0usize;
    for entry in std::fs::read_dir(&dir).expect("scenarios/props/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|ext| ext != "prop") {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).expect("utf-8");
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let properties = parse_properties(&text)
            .unwrap_or_else(|error| panic!("{name} does not parse: {error}"));
        let report = jmst::harness::lint_props(&properties);
        if let Some(rule) = expected_rules.get(name) {
            seen_broken += 1;
            assert!(
                report.errors().any(|finding| finding.rule == *rule),
                "{name} should be rejected with {rule}:\n{report}"
            );
        } else {
            seen_clean += 1;
            assert!(!report.has_errors(), "{name} has lint errors:\n{report}");
            // Surviving fixtures compile onto the checker core.
            let registry = compile_registry(&properties);
            assert_eq!(registry.len(), properties.len());
        }
    }
    assert!(seen_clean >= 2, "expected the clean .prop fixtures");
    assert_eq!(seen_broken, 3, "expected all three broken .prop fixtures");
}
