//! The checked-in scenario files stay honest: every `*.cfg` under
//! `scenarios/` must parse, and the static lint pass must find no errors
//! — except files named `*.broken.cfg`, which exist to prove the linter
//! catches misconfigured tests before any message is sent.

use jmst::harness::lint_spec;
use jmst::harness::parse_spec;
use std::path::PathBuf;

fn scenario_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/ directory exists")
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "cfg"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no scenario files found in {dir:?}");
    files
}

#[test]
fn clean_scenarios_lint_clean_and_broken_ones_fail() {
    let mut saw_clean = false;
    let mut saw_broken = false;
    for path in scenario_files() {
        let text = std::fs::read_to_string(&path).expect("readable scenario");
        let broken = path
            .file_name()
            .and_then(|name| name.to_str())
            .is_some_and(|name| name.ends_with(".broken.cfg"));
        match parse_spec(&text) {
            Err(error) => assert!(broken, "{path:?} failed to parse: {error}"),
            Ok(spec) => {
                let report = lint_spec(&spec);
                if broken {
                    assert!(
                        report.has_errors(),
                        "{path:?} is named broken but linted clean:\n{report}"
                    );
                } else {
                    assert!(!report.has_errors(), "{path:?} has lint errors:\n{report}");
                }
            }
        }
        if broken {
            saw_broken = true;
        } else {
            saw_clean = true;
        }
    }
    assert!(saw_clean, "expected at least one clean scenario fixture");
    assert!(saw_broken, "expected at least one broken scenario fixture");
}

#[test]
fn broken_fixture_names_the_dead_subscription() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("dead_subscription.broken.cfg");
    let spec = parse_spec(&std::fs::read_to_string(path).expect("fixture exists"))
        .expect("the broken fixture parses; only the lint pass rejects it");
    let report = lint_spec(&spec);
    let text = report.to_string();
    assert!(text.contains("dead subscription"), "{text}");
    assert!(text.contains("never match"), "{text}");
    assert!(report.warnings().count() >= 2, "{text}");
}

#[test]
fn clean_fixture_runs_and_routes_by_selector() {
    // The clean fixture is not just lintable — it runs end-to-end on the
    // reference broker and passes every safety property.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("selector_routing.cfg");
    let spec = parse_spec(&std::fs::read_to_string(path).expect("fixture exists"))
        .expect("clean fixture parses");
    assert!(lint_spec(&spec).is_clean());
    let broker = jmst::broker::ReferenceBroker::new();
    let trace = jmst::harness::ThreadedRunner::new()
        .run(std::sync::Arc::new(broker), None, &spec)
        .expect("scenario runs");
    let report = jmst::core::Analyzer::new().analyze(&trace);
    assert!(report.passed(), "{report}");
}
