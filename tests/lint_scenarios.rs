//! The checked-in scenario files stay honest: every `*.cfg` under
//! `scenarios/` must parse, and the static lint pass must find no errors
//! — except files named `*.broken.cfg`, which exist to prove the linter
//! catches misconfigured tests before any message is sent.

use jmst::harness::lint_spec;
use jmst::harness::parse_spec;
use std::path::PathBuf;

fn scenario_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/ directory exists")
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "cfg"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no scenario files found in {dir:?}");
    files
}

#[test]
fn clean_scenarios_lint_clean_and_broken_ones_fail() {
    let mut saw_clean = false;
    let mut saw_broken = false;
    for path in scenario_files() {
        let text = std::fs::read_to_string(&path).expect("readable scenario");
        let broken = path
            .file_name()
            .and_then(|name| name.to_str())
            .is_some_and(|name| name.ends_with(".broken.cfg"));
        match parse_spec(&text) {
            Err(error) => assert!(broken, "{path:?} failed to parse: {error}"),
            Ok(spec) => {
                let report = lint_spec(&spec);
                if broken {
                    assert!(
                        report.has_errors(),
                        "{path:?} is named broken but linted clean:\n{report}"
                    );
                } else {
                    assert!(!report.has_errors(), "{path:?} has lint errors:\n{report}");
                }
            }
        }
        if broken {
            saw_broken = true;
        } else {
            saw_clean = true;
        }
    }
    assert!(saw_clean, "expected at least one clean scenario fixture");
    assert!(saw_broken, "expected at least one broken scenario fixture");
}

#[test]
fn linting_a_multi_hundred_scenario_corpus_stays_sub_second() {
    // The dead-subscription check reasons about each destination's
    // producer property sets; that per-destination work is computed once
    // per spec, not once per consumer. This pins the cost of linting a
    // corpus-sized population of property-heavy scenarios — a regression
    // back to per-consumer recomputation blows well past the bound.
    use jmst::api::destination::Destination;
    use jmst::api::value::Value;
    use jmst::harness::{ConsumerSpec, NodeSpec, ProducerSpec, TestSpec};

    let specs: Vec<TestSpec> = (0..300)
        .map(|case| {
            let mut node = NodeSpec::new("n");
            for p in 0..12 {
                let mut producer =
                    ProducerSpec::steady(Destination::topic(format!("t{}", p % 4)), 10.0, 64);
                for k in 0..8 {
                    producer =
                        producer.with_property(format!("p{k}"), Value::Long(i64::from(p * 8 + k)));
                }
                node = node.producer(producer);
            }
            for c in 0..12 {
                node = node.consumer(
                    ConsumerSpec::auto(Destination::topic(format!("t{}", c % 4))).with_selector(
                        format!("p{} = {} AND jmst_seq >= 0", c % 8, (c % 12) * 8 + c % 8),
                    ),
                );
            }
            TestSpec::new(format!("corpus-{case}")).node(node)
        })
        .collect();

    let started = std::time::Instant::now();
    let mut findings = 0usize;
    for spec in &specs {
        findings += lint_spec(spec).findings.len();
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "linting {} scenarios took {elapsed:?} (found {findings} findings); \
         the per-destination producer index is supposed to make this sub-second",
        specs.len()
    );
}

#[test]
fn clean_prop_files_lint_clean_and_broken_ones_fail() {
    // Same contract for the standalone property files: every `*.prop`
    // under scenarios/props/ must parse and survive the static front end
    // — except `*.broken.prop`, which must be rejected with an error.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("props");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/props/ directory exists")
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "prop"))
        .collect();
    files.sort();
    let mut saw_clean = false;
    let mut saw_broken = false;
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable property file");
        let broken = path
            .file_name()
            .and_then(|name| name.to_str())
            .is_some_and(|name| name.ends_with(".broken.prop"));
        match jmst::props::parse_properties(&text) {
            Err(error) => assert!(broken, "{path:?} failed to parse: {error}"),
            Ok(properties) => {
                let report = jmst::harness::lint_props(&properties);
                if broken {
                    assert!(
                        report.has_errors(),
                        "{path:?} is named broken but linted clean:\n{report}"
                    );
                } else {
                    assert!(!report.has_errors(), "{path:?} has lint errors:\n{report}");
                }
            }
        }
        if broken {
            saw_broken = true;
        } else {
            saw_clean = true;
        }
    }
    assert!(saw_clean, "expected at least one clean .prop fixture");
    assert!(saw_broken, "expected at least one broken .prop fixture");
}

#[test]
fn broken_fixture_names_the_dead_subscription() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("dead_subscription.broken.cfg");
    let spec = parse_spec(&std::fs::read_to_string(path).expect("fixture exists"))
        .expect("the broken fixture parses; only the lint pass rejects it");
    let report = lint_spec(&spec);
    let text = report.to_string();
    assert!(text.contains("dead subscription"), "{text}");
    assert!(text.contains("never match"), "{text}");
    assert!(report.warnings().count() >= 2, "{text}");
}

#[test]
fn clean_fixture_runs_and_routes_by_selector() {
    // The clean fixture is not just lintable — it runs end-to-end on the
    // reference broker and passes every safety property.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("selector_routing.cfg");
    let spec = parse_spec(&std::fs::read_to_string(path).expect("fixture exists"))
        .expect("clean fixture parses");
    assert!(lint_spec(&spec).is_clean());
    let broker = jmst::broker::ReferenceBroker::new();
    let trace = jmst::harness::ThreadedRunner::new()
        .run(std::sync::Arc::new(broker), None, &spec)
        .expect("scenario runs");
    let report = jmst::core::Analyzer::new().analyze(&trace);
    assert!(report.passed(), "{report}");
}
