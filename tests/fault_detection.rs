//! End-to-end fault-detection matrix: the harness runs the same workload
//! against a correct broker and against each known-faulty configuration,
//! and the analysis must flag exactly the property each fault violates —
//! the reproduction's ground-truth version of the paper's black-box
//! testing of commercial providers.

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn queue_spec(name: &str) -> TestSpec {
    TestSpec::new(name)
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(300),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(Destination::queue("q"), 300.0, 128))
                .consumer(ConsumerSpec::auto(Destination::queue("q"))),
        )
}

fn run_against(config: BrokerConfig, spec: &TestSpec) -> AnalysisReport {
    let broker = ReferenceBroker::with_config(config);
    let trace = ThreadedRunner::new()
        .run(Arc::new(broker), None, spec)
        .expect("test must complete");
    Analyzer::new().analyze(&trace)
}

#[test]
fn correct_broker_passes_everything() {
    let report = run_against(BrokerConfig::correct(), &queue_spec("clean"));
    assert!(report.passed(), "{report}");
    assert!(report.sends > 30, "only {} sends", report.sends);
    assert_eq!(report.sends, report.receives);
}

#[test]
fn dropping_broker_violates_required_messages_only() {
    let config = BrokerConfig::correct().with_faults(FaultSpec::none().dropping(0.25).seeded(11));
    let report = run_against(config, &queue_spec("dropper"));
    assert!(!report.passed());
    assert!(
        report.count_of(PropertyKind::RequiredMessages) > 0,
        "{report}"
    );
    assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 0);
    assert_eq!(report.count_of(PropertyKind::MessageOrdering), 0);
    assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 0);
}

#[test]
fn duplicating_broker_violates_duplicate_check_only() {
    let config =
        BrokerConfig::correct().with_faults(FaultSpec::none().duplicating(0.25).seeded(12));
    let report = run_against(config, &queue_spec("duplicator"));
    assert!(!report.passed());
    assert!(
        report.count_of(PropertyKind::DuplicateDelivery) > 0,
        "{report}"
    );
    assert_eq!(report.count_of(PropertyKind::RequiredMessages), 0);
    assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 0);
}

#[test]
fn reordering_broker_violates_ordering_only() {
    let config = BrokerConfig::correct().with_faults(
        FaultSpec::none()
            .reordering(0.15, Duration::from_millis(60))
            .seeded(13),
    );
    let report = run_against(config, &queue_spec("reorderer"));
    assert!(!report.passed());
    assert!(
        report.count_of(PropertyKind::MessageOrdering) > 0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::RequiredMessages),
        0,
        "{report}"
    );
    assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 0);
    assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 0);
}

#[test]
fn forging_broker_violates_delivery_integrity_only() {
    let config = BrokerConfig::correct().with_faults(FaultSpec::none().forging(0.15).seeded(14));
    let report = run_against(config, &queue_spec("forger"));
    assert!(!report.passed());
    assert!(
        report.count_of(PropertyKind::DeliveryIntegrity) > 0,
        "{report}"
    );
    assert_eq!(report.count_of(PropertyKind::RequiredMessages), 0);
    assert_eq!(report.count_of(PropertyKind::MessageOrdering), 0);
    assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 0);
}

#[test]
fn campaign_over_all_faulty_providers_summarises_correctly() {
    // The paper's use case: one campaign comparing several providers on
    // the same workload, with the prince resetting between tests.
    let prince = DaemonPrince::new();
    let factory = |spec: &TestSpec| -> (
        Arc<dyn jmst::api::provider::Provider>,
        Option<Arc<dyn BrokerAdmin>>,
    ) {
        let config = match spec.name.as_str() {
            "provider-dropper" => {
                BrokerConfig::correct().with_faults(FaultSpec::none().dropping(0.3).seeded(21))
            }
            "provider-forger" => {
                BrokerConfig::correct().with_faults(FaultSpec::none().forging(0.2).seeded(22))
            }
            _ => BrokerConfig::correct(),
        };
        (Arc::new(ReferenceBroker::with_config(config)), None)
    };
    let specs = vec![
        queue_spec("provider-clean"),
        queue_spec("provider-dropper"),
        queue_spec("provider-forger"),
    ];
    let report = prince.run_campaign(&factory, &specs);
    assert_eq!(report.passed(), 1);
    assert_eq!(report.violated(), 2);
    assert_eq!(report.failed(), 0);
}
