//! Crash-injection experiments (the paper's §5 future work, implemented):
//! persistent delivery must survive a broker crash; a broker that loses
//! persistent messages must be caught by Property 2.

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn crash_spec(name: &str, mode: DeliveryMode) -> TestSpec {
    TestSpec::new(name)
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(500),
            Duration::from_secs(4),
        )
        .node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(Destination::queue("q"), 200.0, 128)
                        .with_delivery_mode(mode),
                )
                .consumer(ConsumerSpec::auto(Destination::queue("q"))),
        )
        .with_crash(CrashPlan {
            crash_after: Duration::from_millis(250),
            down_for: Duration::from_millis(80),
        })
}

fn run_crash_test(config: BrokerConfig, spec: &TestSpec) -> AnalysisReport {
    let broker = ReferenceBroker::with_config(config);
    let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
    let trace = ThreadedRunner::new()
        .run(Arc::new(broker), Some(admin), spec)
        .expect("crash test must complete");
    // Priority/expiry need no testing here; keep the safety core.
    Analyzer::with_config(AnalysisConfig::strict_safety_only()).analyze(&trace)
}

#[test]
fn persistent_messages_survive_crash_on_correct_broker() {
    // A 50 ms broker-side delivery delay keeps a window of messages
    // inside the broker at crash time, so the crash actually has
    // something to lose.
    let report = run_crash_test(
        BrokerConfig::correct().with_delivery_delay(Duration::from_millis(50)),
        &crash_spec("crash-persistent", DeliveryMode::Persistent),
    );
    // The crash broke connections mid-flight, but every persistent
    // message between the first and last received must have arrived.
    assert_eq!(
        report.count_of(PropertyKind::RequiredMessages),
        0,
        "{report}"
    );
    assert!(report.sends > 20, "only {} sends", report.sends);
    // The broker really did go down: some send attempts failed.
    assert!(report.receives > 0);
}

#[test]
fn lossy_broker_is_caught_losing_persistent_messages() {
    let report = run_crash_test(
        BrokerConfig::correct()
            .with_delivery_delay(Duration::from_millis(50))
            .losing_persistent_on_crash(),
        &crash_spec("crash-lossy", DeliveryMode::Persistent),
    );
    assert!(
        report.count_of(PropertyKind::RequiredMessages) > 0,
        "the gap left by the crash must be flagged: {report}"
    );
}

#[test]
fn non_persistent_loss_in_crash_is_not_a_gap_violation() {
    // Non-persistent messages may be lost on failure. The crash wipes a
    // contiguous window of them: deliveries stop, then resume after
    // recovery. Ordering and integrity must still hold.
    let report = run_crash_test(
        BrokerConfig::correct().with_delivery_delay(Duration::from_millis(50)),
        &crash_spec("crash-non-persistent", DeliveryMode::NonPersistent),
    );
    assert_eq!(report.count_of(PropertyKind::DeliveryIntegrity), 0);
    assert_eq!(report.count_of(PropertyKind::MessageOrdering), 0);
    assert_eq!(report.count_of(PropertyKind::DuplicateDelivery), 0);
    // Note: P2 *can* legitimately flag non-persistent messages dropped in
    // the crash window (the paper's model requires delivery between first
    // and last received regardless of mode). A relaxed profile would
    // exempt non-persistent messages across recorded crashes; we keep the
    // paper's strict reading and simply do not assert on P2 here.
}

#[test]
fn durable_subscription_survives_crash() {
    let topic = Destination::topic("events");
    let spec = TestSpec::new("crash-durable")
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(500),
            Duration::from_secs(4),
        )
        .node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(topic.clone(), 150.0, 64)
                        .with_delivery_mode(DeliveryMode::Persistent),
                )
                .consumer(ConsumerSpec::auto(topic).durable("audit")),
        )
        .with_crash(CrashPlan {
            crash_after: Duration::from_millis(250),
            down_for: Duration::from_millis(80),
        });
    let report = run_crash_test(BrokerConfig::correct(), &spec);
    assert_eq!(
        report.count_of(PropertyKind::DeliveryIntegrity),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::DuplicateDelivery),
        0,
        "{report}"
    );
    assert!(report.receives > 0);
}
