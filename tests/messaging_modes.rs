//! End-to-end coverage of the operational-mode matrix the paper's
//! configurations sweep: messaging styles (point-to-point, pub/sub),
//! session modes (transacted and the three acknowledgement modes),
//! durable subscriptions with disconnect/reconnect, message selectors,
//! body types, bursty and Poisson workloads, and skewed node clocks.

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn run_clean(spec: &TestSpec) -> AnalysisReport {
    let broker = ReferenceBroker::new();
    let trace = ThreadedRunner::new()
        .run(Arc::new(broker), None, spec)
        .expect("test must complete");
    Analyzer::new().analyze(&trace)
}

fn base(name: &str) -> TestSpec {
    TestSpec::new(name).with_periods(
        Duration::from_millis(30),
        Duration::from_millis(300),
        Duration::from_secs(3),
    )
}

#[test]
fn transacted_producers_and_consumers_pass() {
    let spec = base("transacted").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec::steady(Destination::queue("q"), 300.0, 64).transacted(5))
            .consumer(
                ConsumerSpec::auto(Destination::queue("q")).with_mode(SessionMode::Transacted, 4),
            ),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    assert!(report.sends > 30);
    assert_eq!(report.sends, report.receives, "{report}");
}

#[test]
fn client_acknowledge_batching_passes() {
    let spec = base("client-ack").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec::steady(Destination::queue("q"), 300.0, 64))
            .consumer(
                ConsumerSpec::auto(Destination::queue("q"))
                    .with_mode(SessionMode::ClientAcknowledge, 8),
            ),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
}

#[test]
fn dups_ok_mode_passes_and_permits_duplicates_in_analysis() {
    let spec = base("dups-ok").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec::steady(Destination::queue("q"), 300.0, 64))
            .consumer(
                ConsumerSpec::auto(Destination::queue("q"))
                    .with_mode(SessionMode::DupsOkAcknowledge, 1),
            ),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
}

#[test]
fn pub_sub_fanout_to_multiple_subscribers() {
    let topic = Destination::topic("market");
    let spec = base("fanout").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec::steady(topic.clone(), 200.0, 128))
            .consumer(ConsumerSpec::auto(topic.clone()))
            .consumer(ConsumerSpec::auto(topic.clone()))
            .consumer(ConsumerSpec::auto(topic)),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    // Every message reaches all three subscribers.
    assert_eq!(report.receives, report.sends * 3, "{report}");
}

#[test]
fn durable_subscriber_with_reconnect_cycles_misses_nothing() {
    let topic = Destination::topic("events");
    let spec = base("durable-reconnect")
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(500),
            Duration::from_secs(4),
        )
        .node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(topic.clone(), 200.0, 64))
                .consumer(ConsumerSpec::auto(topic).durable("audit").with_reconnect(
                    ReconnectSpec {
                        after_messages: 25,
                        pause: Duration::from_millis(40),
                        max_cycles: 3,
                    },
                )),
        );
    let report = run_clean(&spec);
    // Messages published while the durable subscriber was away must be
    // retained and delivered after it resumes: no P2 violations.
    assert_eq!(
        report.count_of(PropertyKind::RequiredMessages),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::DuplicateDelivery),
        0,
        "{report}"
    );
    assert!(report.passed(), "{report}");
    assert_eq!(report.sends, report.receives, "{report}");
}

#[test]
fn non_durable_subscriber_reconnect_loses_only_gap_messages() {
    let topic = Destination::topic("ticker");
    let spec = base("non-durable-reconnect").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec::steady(topic.clone(), 300.0, 64))
            .consumer(ConsumerSpec::auto(topic).with_reconnect(ReconnectSpec {
                after_messages: 30,
                pause: Duration::from_millis(50),
                max_cycles: 2,
            })),
    );
    let report = run_clean(&spec);
    // Non-durable subscriptions drop messages published while away —
    // that is correct behaviour, and the analysis must not flag it
    // (subscription latency and fresh endpoints excuse the gaps).
    assert!(report.passed(), "{report}");
    assert!(report.receives < report.sends, "{report}");
}

#[test]
fn selective_subscriber_sees_only_matching_messages() {
    let topic = Destination::topic("orders");
    let spec = base("selector").node(
        NodeSpec::new("n0")
            .producer(
                ProducerSpec::steady(topic.clone(), 150.0, 64)
                    .with_priority(Priority::new(8).expect("valid")),
            )
            .producer(
                ProducerSpec::steady(topic.clone(), 150.0, 64)
                    .with_priority(Priority::new(1).expect("valid")),
            )
            .consumer(ConsumerSpec::auto(topic.clone()).with_selector("JMSPriority >= 5"))
            .consumer(ConsumerSpec::auto(topic)),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    // The unselective subscriber sees everything; the selective one only
    // the high-priority half: receives strictly between 1× and 2× sends.
    assert!(report.receives > report.sends, "{report}");
    assert!(report.receives < report.sends * 2, "{report}");
}

#[test]
fn burst_and_poisson_workloads_pass() {
    let spec = base("workloads").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec {
                workload: ArrivalProcess::burst(10, Duration::from_millis(50)),
                ..ProducerSpec::steady(Destination::queue("q"), 1.0, 64)
            })
            .producer(ProducerSpec {
                workload: ArrivalProcess::poisson(200.0),
                ..ProducerSpec::steady(Destination::queue("q"), 1.0, 64)
            })
            .consumer(ConsumerSpec::auto(Destination::queue("q"))),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    assert!(report.sends > 40, "{report}");
}

#[test]
fn every_body_kind_round_trips() {
    let mut node = NodeSpec::new("n0");
    for kind in BodyKind::ALL {
        node =
            node.producer(ProducerSpec::steady(Destination::queue("q"), 60.0, 256).with_body(kind));
    }
    node = node.consumer(ConsumerSpec::auto(Destination::queue("q")));
    let report = run_clean(&base("bodies").node(node));
    assert!(report.passed(), "{report}");
    assert!(report.performance.consumer_throughput.bytes > 0);
}

#[test]
fn skewed_node_clocks_yield_negative_delays_but_no_violations() {
    // The consumer node's clock runs 5 ms behind the producer's: delays
    // can come out negative (paper footnote 6), which the performance
    // analysis must report rather than crash on.
    let spec = base("skew")
        .node(NodeSpec::new("producers").producer(ProducerSpec::steady(
            Destination::queue("q"),
            200.0,
            64,
        )))
        .node(
            NodeSpec::new("consumers")
                .with_clock_skew(-5_000_000)
                .consumer(ConsumerSpec::auto(Destination::queue("q"))),
        );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    assert!(
        report.performance.delay.negative_samples > 0,
        "skew must surface as negative delays: {:?}",
        report.performance.delay
    );
}

#[test]
fn multi_producer_multi_consumer_queue_partitions_work() {
    let spec = base("m-n-queue").node(
        NodeSpec::new("n0")
            .producer(ProducerSpec::steady(Destination::queue("jobs"), 200.0, 64))
            .producer(ProducerSpec::steady(Destination::queue("jobs"), 200.0, 64))
            .consumer(ConsumerSpec::auto(Destination::queue("jobs")))
            .consumer(ConsumerSpec::auto(Destination::queue("jobs"))),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    // Queue semantics: each message delivered exactly once overall.
    assert_eq!(report.sends, report.receives, "{report}");
    assert_eq!(report.performance.per_consumer.len(), 2);
}

#[test]
fn shared_connection_node_passes() {
    // The paper's resource-sharing configuration: all drivers on the node
    // multiplex one connection, each with its own session.
    let topic = Destination::topic("shared");
    let spec = base("shared-connection").node(
        NodeSpec::new("n0")
            .sharing_connection()
            .producer(ProducerSpec::steady(topic.clone(), 200.0, 64))
            .producer(ProducerSpec::steady(topic.clone(), 200.0, 64).transacted(5))
            .consumer(ConsumerSpec::auto(topic.clone()).durable("shared-audit"))
            .consumer(ConsumerSpec::auto(topic)),
    );
    let report = run_clean(&spec);
    assert!(report.passed(), "{report}");
    assert_eq!(report.receives, report.sends * 2, "{report}");
}

#[test]
fn shared_connection_rejects_crash_plans_and_reconnect() {
    let queue = Destination::queue("q");
    let crash_spec = base("bad-crash")
        .node(
            NodeSpec::new("n0")
                .sharing_connection()
                .producer(ProducerSpec::steady(queue.clone(), 10.0, 64))
                .consumer(ConsumerSpec::auto(queue.clone())),
        )
        .with_crash(CrashPlan {
            crash_after: Duration::from_millis(50),
            down_for: Duration::from_millis(10),
        });
    assert!(crash_spec.validate().unwrap_err().contains("crash plans"));

    let reconnect_spec =
        base("bad-reconnect").node(NodeSpec::new("n0").sharing_connection().consumer(
            ConsumerSpec::auto(queue).with_reconnect(ReconnectSpec {
                after_messages: 5,
                pause: Duration::from_millis(10),
                max_cycles: 1,
            }),
        ));
    assert!(reconnect_spec
        .validate()
        .unwrap_err()
        .contains("reconnect cycling"));
}
