//! Concurrent fan-out stress tests for the broker's zero-copy routing
//! hot path: many publishers racing many subscribers (with and without
//! selectors) while subscriptions churn. Exercises the RCU subscription
//! snapshots, the lock-free publish path and the insert-driven receive
//! wakeups under real thread contention, then checks delivery both by
//! exact accounting (direct API) and by the analysis properties
//! (harness-driven).

use jmst::prelude::*;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Direct-API stress: M publisher threads × N subscribers, half of them
/// selective. Every expected delivery must arrive exactly once, and the
/// broker's own counters must agree with what the threads observed.
#[test]
fn concurrent_fanout_delivers_every_expected_message() {
    const PUBLISHERS: usize = 4;
    const PER_PUBLISHER: usize = 50;
    const PLAIN_SUBS: usize = 3;
    const SELECTIVE_SUBS: usize = 3;
    const TOTAL: usize = PUBLISHERS * PER_PUBLISHER;

    let broker = Arc::new(ReferenceBroker::new());
    let mut connection = broker.create_connection(None).unwrap();
    connection.start().unwrap();

    // Subscribers exist before any publish so none miss messages; topic
    // consumers only see what is published while they are subscribed.
    let mut session = connection
        .create_session(SessionMode::AutoAcknowledge)
        .unwrap();
    let topic = Destination::topic("storm");
    let plain: Vec<_> = (0..PLAIN_SUBS)
        .map(|_| session.create_consumer(&topic, None).unwrap())
        .collect();
    let selective: Vec<_> = (0..SELECTIVE_SUBS)
        .map(|_| {
            session
                .create_consumer(&topic, Some("JMSPriority >= 7"))
                .unwrap()
        })
        .collect();

    // Publishers alternate priorities 3 and 8, so selective subscribers
    // expect exactly half of the traffic.
    let producers: Vec<thread::JoinHandle<()>> = (0..PUBLISHERS)
        .map(|p| {
            let broker = Arc::clone(&broker);
            thread::spawn(move || {
                let mut connection = broker.create_connection(None).unwrap();
                connection.start().unwrap();
                let mut session = connection
                    .create_session(SessionMode::AutoAcknowledge)
                    .unwrap();
                let mut producer = session
                    .create_producer(&Destination::topic("storm"))
                    .unwrap();
                for i in 0..PER_PUBLISHER {
                    let priority = if i % 2 == 0 { 3 } else { 8 };
                    producer
                        .send(
                            MessageDraft::text(format!("p{p}-m{i}"))
                                .priority(Priority::new(priority).unwrap()),
                        )
                        .unwrap();
                }
            })
        })
        .collect();

    // Drain each subscriber concurrently with the publishers, so receive
    // wakeups race inserts and subscription snapshots race publishes.
    let drain = |mut consumer: Box<dyn Consumer>, expected: usize| {
        thread::spawn(move || {
            let mut got = Vec::with_capacity(expected);
            while got.len() < expected {
                match consumer.receive(Some(Duration::from_secs(10))).unwrap() {
                    Some(message) => got.push(message),
                    None => break,
                }
            }
            got
        })
    };
    let plain_handles: Vec<_> = plain.into_iter().map(|c| drain(c, TOTAL)).collect();
    let selective_handles: Vec<_> = selective.into_iter().map(|c| drain(c, TOTAL / 2)).collect();

    for producer in producers {
        producer.join().unwrap();
    }
    for handle in plain_handles {
        let got = handle.join().unwrap();
        assert_eq!(got.len(), TOTAL, "plain subscriber missed messages");
        let distinct: std::collections::HashSet<MessageId> = got.iter().map(Message::id).collect();
        assert_eq!(distinct.len(), TOTAL, "plain subscriber saw duplicates");
    }
    for handle in selective_handles {
        let got = handle.join().unwrap();
        assert_eq!(got.len(), TOTAL / 2, "selective subscriber miscounted");
        assert!(got.iter().all(|m| m.priority().level() >= 7));
    }

    // Broker accounting: every publish matched at least one subscriber
    // and none were duplicated. Each subscriber rebuilt the topic's
    // snapshot twice — once subscribing, once when the drained consumer
    // was dropped (its thread has been joined above).
    assert_eq!(broker.messages_routed(), TOTAL as u64);
    assert_eq!(broker.messages_unroutable(), 0);
    assert_eq!(broker.messages_duplicated(), 0);
    let generation = broker
        .topic_generation(&TopicName::new("storm"))
        .expect("topic seen");
    assert_eq!(generation, 2 * (PLAIN_SUBS + SELECTIVE_SUBS) as u64);
}

/// Chaos soak: 4 producers × 8 competing consumers over 4 queues, with
/// half the producers publishing through `send_batch`. Every message
/// must be delivered exactly once globally — queue semantics under
/// shard contention, batched inserts racing competing receivers.
fn competing_consumers_exactly_once(shards: usize) {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const PRODUCERS: usize = 4;
    const QUEUES: usize = 4;
    const CONSUMERS_PER_QUEUE: usize = 2;
    const PER_PRODUCER: usize = 64;
    const BATCH: usize = 8;
    const TOTAL: usize = PRODUCERS * PER_PRODUCER;

    let broker = Arc::new(ReferenceBroker::with_config(
        BrokerConfig::correct().with_shards(shards),
    ));
    let received = Arc::new(AtomicUsize::new(0));

    // Producer p owns queue p; even producers publish in batches of
    // BATCH drafts, odd producers one message at a time.
    let producers: Vec<thread::JoinHandle<Vec<MessageId>>> = (0..PRODUCERS)
        .map(|p| {
            let broker = Arc::clone(&broker);
            thread::spawn(move || {
                let mut connection = broker.create_connection(None).unwrap();
                connection.start().unwrap();
                let mut session = connection
                    .create_session(SessionMode::AutoAcknowledge)
                    .unwrap();
                let queue = Destination::queue(format!("soak-{}", p % QUEUES));
                let mut producer = session.create_producer(&queue).unwrap();
                let mut sent = Vec::with_capacity(PER_PRODUCER);
                if p % 2 == 0 {
                    for chunk in 0..PER_PRODUCER / BATCH {
                        let drafts = (0..BATCH)
                            .map(|i| MessageDraft::text(format!("p{p}-m{}", chunk * BATCH + i)))
                            .collect();
                        sent.extend(producer.send_batch(drafts).unwrap().iter().map(Message::id));
                    }
                } else {
                    for i in 0..PER_PRODUCER {
                        sent.push(
                            producer
                                .send(MessageDraft::text(format!("p{p}-m{i}")))
                                .unwrap()
                                .id(),
                        );
                    }
                }
                sent
            })
        })
        .collect();

    // Two competing consumers per queue race the producers; each drains
    // until the global exactly-once count is reached.
    let consumers: Vec<thread::JoinHandle<Vec<(usize, MessageId)>>> = (0..QUEUES
        * CONSUMERS_PER_QUEUE)
        .map(|c| {
            let broker = Arc::clone(&broker);
            let received = Arc::clone(&received);
            thread::spawn(move || {
                let queue_index = c % QUEUES;
                let mut connection = broker.create_connection(None).unwrap();
                connection.start().unwrap();
                let mut session = connection
                    .create_session(SessionMode::AutoAcknowledge)
                    .unwrap();
                let queue = Destination::queue(format!("soak-{queue_index}"));
                let mut consumer = session.create_consumer(&queue, None).unwrap();
                let mut got = Vec::new();
                loop {
                    match consumer.receive(Some(Duration::from_millis(250))).unwrap() {
                        Some(message) => {
                            got.push((queue_index, message.id()));
                            received.fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            if received.load(Ordering::SeqCst) >= TOTAL {
                                break;
                            }
                        }
                    }
                }
                got
            })
        })
        .collect();

    let mut sent_per_queue: Vec<HashSet<MessageId>> = vec![HashSet::new(); QUEUES];
    for (p, producer) in producers.into_iter().enumerate() {
        let ids = producer.join().unwrap();
        assert_eq!(ids.len(), PER_PRODUCER);
        sent_per_queue[p % QUEUES].extend(ids);
    }
    let mut got_per_queue: Vec<Vec<MessageId>> = vec![Vec::new(); QUEUES];
    for consumer in consumers {
        for (queue_index, id) in consumer.join().unwrap() {
            got_per_queue[queue_index].push(id);
        }
    }

    // Exactly once, globally: per queue the delivered multiset equals
    // the sent set — nothing lost, nothing duplicated, nothing leaked
    // across queues.
    for (queue_index, got) in got_per_queue.iter().enumerate() {
        let distinct: HashSet<MessageId> = got.iter().copied().collect();
        assert_eq!(
            got.len(),
            distinct.len(),
            "queue {queue_index} saw duplicates at shards={shards}"
        );
        assert_eq!(
            distinct, sent_per_queue[queue_index],
            "queue {queue_index} delivery mismatch at shards={shards}"
        );
    }
    assert_eq!(broker.messages_routed(), TOTAL as u64);
    assert_eq!(broker.messages_unroutable(), 0);
    assert_eq!(broker.messages_duplicated(), 0);
}

#[test]
fn competing_consumers_exactly_once_single_shard() {
    competing_consumers_exactly_once(1);
}

#[test]
fn competing_consumers_exactly_once_sharded() {
    competing_consumers_exactly_once(8);
}

/// Harness-driven stress: two producer nodes (different priorities) fan
/// out to four consumers with mixed selectors while the analysis
/// pipeline records everything. The correct broker must violate none of
/// the delivery properties (P1 delivery integrity, P2 required
/// messages, P3 ordering) under this contention.
#[test]
fn concurrent_fanout_passes_analysis_properties() {
    let topic = Destination::topic("fan");
    let spec = TestSpec::new("fanout_stress")
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(400),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("pub-low")
                .producer(
                    ProducerSpec::steady(topic.clone(), 200.0, 1024)
                        .with_priority(Priority::new(2).unwrap()),
                )
                .consumer(ConsumerSpec::auto(topic.clone()))
                .consumer(ConsumerSpec::auto(topic.clone()).with_selector("JMSPriority <= 4")),
        )
        .node(
            NodeSpec::new("pub-high")
                .producer(
                    ProducerSpec::steady(topic.clone(), 200.0, 1024)
                        .with_priority(Priority::new(9).unwrap()),
                )
                .consumer(ConsumerSpec::auto(topic.clone()))
                .consumer(ConsumerSpec::auto(topic).with_selector("JMSPriority >= 5")),
        );

    let broker = ReferenceBroker::new();
    let trace = ThreadedRunner::new()
        .run(Arc::new(broker), None, &spec)
        .expect("stress run must complete");
    let report = Analyzer::new().analyze(&trace);

    assert!(report.sends > 50, "only {} sends", report.sends);
    // Two plain subscribers see everything; each selective subscriber
    // sees one producer's half.
    assert!(
        report.receives > report.sends * 2,
        "fan-out lost messages: {} sends, {} receives",
        report.sends,
        report.receives
    );
    assert_eq!(
        report.count_of(PropertyKind::DeliveryIntegrity),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::RequiredMessages),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::MessageOrdering),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::DuplicateDelivery),
        0,
        "{report}"
    );
}
