//! Concurrent fan-out stress tests for the broker's zero-copy routing
//! hot path: many publishers racing many subscribers (with and without
//! selectors) while subscriptions churn. Exercises the RCU subscription
//! snapshots, the lock-free publish path and the insert-driven receive
//! wakeups under real thread contention, then checks delivery both by
//! exact accounting (direct API) and by the analysis properties
//! (harness-driven).

use jmst::prelude::*;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Direct-API stress: M publisher threads × N subscribers, half of them
/// selective. Every expected delivery must arrive exactly once, and the
/// broker's own counters must agree with what the threads observed.
#[test]
fn concurrent_fanout_delivers_every_expected_message() {
    const PUBLISHERS: usize = 4;
    const PER_PUBLISHER: usize = 50;
    const PLAIN_SUBS: usize = 3;
    const SELECTIVE_SUBS: usize = 3;
    const TOTAL: usize = PUBLISHERS * PER_PUBLISHER;

    let broker = Arc::new(ReferenceBroker::new());
    let mut connection = broker.create_connection(None).unwrap();
    connection.start().unwrap();

    // Subscribers exist before any publish so none miss messages; topic
    // consumers only see what is published while they are subscribed.
    let mut session = connection
        .create_session(SessionMode::AutoAcknowledge)
        .unwrap();
    let topic = Destination::topic("storm");
    let plain: Vec<_> = (0..PLAIN_SUBS)
        .map(|_| session.create_consumer(&topic, None).unwrap())
        .collect();
    let selective: Vec<_> = (0..SELECTIVE_SUBS)
        .map(|_| {
            session
                .create_consumer(&topic, Some("JMSPriority >= 7"))
                .unwrap()
        })
        .collect();

    // Publishers alternate priorities 3 and 8, so selective subscribers
    // expect exactly half of the traffic.
    let producers: Vec<thread::JoinHandle<()>> = (0..PUBLISHERS)
        .map(|p| {
            let broker = Arc::clone(&broker);
            thread::spawn(move || {
                let mut connection = broker.create_connection(None).unwrap();
                connection.start().unwrap();
                let mut session = connection
                    .create_session(SessionMode::AutoAcknowledge)
                    .unwrap();
                let mut producer = session
                    .create_producer(&Destination::topic("storm"))
                    .unwrap();
                for i in 0..PER_PUBLISHER {
                    let priority = if i % 2 == 0 { 3 } else { 8 };
                    producer
                        .send(
                            MessageDraft::text(format!("p{p}-m{i}"))
                                .priority(Priority::new(priority).unwrap()),
                        )
                        .unwrap();
                }
            })
        })
        .collect();

    // Drain each subscriber concurrently with the publishers, so receive
    // wakeups race inserts and subscription snapshots race publishes.
    let drain = |mut consumer: Box<dyn Consumer>, expected: usize| {
        thread::spawn(move || {
            let mut got = Vec::with_capacity(expected);
            while got.len() < expected {
                match consumer.receive(Some(Duration::from_secs(10))).unwrap() {
                    Some(message) => got.push(message),
                    None => break,
                }
            }
            got
        })
    };
    let plain_handles: Vec<_> = plain.into_iter().map(|c| drain(c, TOTAL)).collect();
    let selective_handles: Vec<_> = selective.into_iter().map(|c| drain(c, TOTAL / 2)).collect();

    for producer in producers {
        producer.join().unwrap();
    }
    for handle in plain_handles {
        let got = handle.join().unwrap();
        assert_eq!(got.len(), TOTAL, "plain subscriber missed messages");
        let distinct: std::collections::HashSet<MessageId> = got.iter().map(Message::id).collect();
        assert_eq!(distinct.len(), TOTAL, "plain subscriber saw duplicates");
    }
    for handle in selective_handles {
        let got = handle.join().unwrap();
        assert_eq!(got.len(), TOTAL / 2, "selective subscriber miscounted");
        assert!(got.iter().all(|m| m.priority().level() >= 7));
    }

    // Broker accounting: every publish matched at least one subscriber
    // and none were duplicated. Each subscriber rebuilt the topic's
    // snapshot twice — once subscribing, once when the drained consumer
    // was dropped (its thread has been joined above).
    assert_eq!(broker.messages_routed(), TOTAL as u64);
    assert_eq!(broker.messages_unroutable(), 0);
    assert_eq!(broker.messages_duplicated(), 0);
    let generation = broker
        .topic_generation(&TopicName::new("storm"))
        .expect("topic seen");
    assert_eq!(generation, 2 * (PLAIN_SUBS + SELECTIVE_SUBS) as u64);
}

/// Harness-driven stress: two producer nodes (different priorities) fan
/// out to four consumers with mixed selectors while the analysis
/// pipeline records everything. The correct broker must violate none of
/// the delivery properties (P1 delivery integrity, P2 required
/// messages, P3 ordering) under this contention.
#[test]
fn concurrent_fanout_passes_analysis_properties() {
    let topic = Destination::topic("fan");
    let spec = TestSpec::new("fanout_stress")
        .with_periods(
            Duration::from_millis(30),
            Duration::from_millis(400),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("pub-low")
                .producer(
                    ProducerSpec::steady(topic.clone(), 200.0, 1024)
                        .with_priority(Priority::new(2).unwrap()),
                )
                .consumer(ConsumerSpec::auto(topic.clone()))
                .consumer(ConsumerSpec::auto(topic.clone()).with_selector("JMSPriority <= 4")),
        )
        .node(
            NodeSpec::new("pub-high")
                .producer(
                    ProducerSpec::steady(topic.clone(), 200.0, 1024)
                        .with_priority(Priority::new(9).unwrap()),
                )
                .consumer(ConsumerSpec::auto(topic.clone()))
                .consumer(ConsumerSpec::auto(topic).with_selector("JMSPriority >= 5")),
        );

    let broker = ReferenceBroker::new();
    let trace = ThreadedRunner::new()
        .run(Arc::new(broker), None, &spec)
        .expect("stress run must complete");
    let report = Analyzer::new().analyze(&trace);

    assert!(report.sends > 50, "only {} sends", report.sends);
    // Two plain subscribers see everything; each selective subscriber
    // sees one producer's half.
    assert!(
        report.receives > report.sends * 2,
        "fan-out lost messages: {} sends, {} receives",
        report.sends,
        report.receives
    );
    assert_eq!(
        report.count_of(PropertyKind::DeliveryIntegrity),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::RequiredMessages),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::MessageOrdering),
        0,
        "{report}"
    );
    assert_eq!(
        report.count_of(PropertyKind::DuplicateDelivery),
        0,
        "{report}"
    );
}
