//! Long-soak memory test of the streaming pipeline: over a long clean
//! run, the analyzer's resident state must stay under a fixed ceiling
//! that the materialised batch trace provably blows through. This is the
//! point of the streaming refactor — verdicts over runs too long to hold
//! in memory as a `Trace`.

use jmst::api::destination::{Destination, EndpointId, QueueName};
use jmst::api::id::{ConsumerId, MessageId, NodeId, ProducerId, SessionId};
use jmst::api::modes::{DeliveryMode, Priority, SessionMode, TimeToLive};
use jmst::api::time::Timestamp;
use jmst::prelude::*;
use jmst::store::{Event, EventKind, MessageRecord, Phase};
use std::mem;

/// Messages in the soak workload; each one contributes a send, a receive,
/// and an acknowledge event.
const MESSAGES: u64 = 50_000;

/// The fixed ceiling: the streaming analyzer must stay under it, the
/// batch trace must not. With three events per message the trace alone
/// (shallow, before counting heap-allocated strings and properties)
/// costs `3 × MESSAGES × size_of::<Event>()` — far above this.
const CEILING_BYTES: usize = 24 << 20;

fn soak_event(seq: u64, at_ms: u64, kind: EventKind) -> Event {
    Event {
        seq,
        at: Timestamp::from_millis(at_ms),
        node: NodeId::from_raw(0),
        kind,
    }
}

#[test]
fn streaming_state_stays_bounded_over_a_long_clean_run() {
    let endpoint = EndpointId::for_queue(QueueName::new("q"));
    let mut streaming = Analyzer::new().streaming();
    let mut seq = 0u64;
    let mut next = |at_ms: u64, kind: EventKind, streaming: &mut StreamingAnalyzer| {
        streaming.observe(&soak_event(seq, at_ms, kind));
        seq += 1;
    };
    next(
        0,
        EventKind::PhaseStarted { phase: Phase::Run },
        &mut streaming,
    );
    next(
        0,
        EventKind::ConsumerCreated {
            consumer: ConsumerId::from_raw(1),
            endpoint: endpoint.clone(),
            session_mode: SessionMode::AutoAcknowledge,
            selector: None,
        },
        &mut streaming,
    );
    let mut max_state = 0usize;
    for message in 0..MESSAGES {
        let at = message + 1;
        let record = MessageRecord {
            message: MessageId::from_raw(message + 1),
            producer: ProducerId::from_raw(1),
            sequence: message,
            destination: Destination::queue("q"),
            priority: Priority::DEFAULT,
            delivery_mode: DeliveryMode::Persistent,
            time_to_live: TimeToLive::FOREVER,
            sent_at: Timestamp::from_millis(at),
            body_bytes: 64,
            redelivered: false,
            delivery_count: 1,
            properties: Default::default(),
        };
        next(
            at,
            EventKind::Send {
                record: record.clone(),
                session: SessionId::from_raw(1),
                tx: None,
            },
            &mut streaming,
        );
        next(
            at,
            EventKind::Receive {
                consumer: ConsumerId::from_raw(1),
                endpoint: endpoint.clone(),
                record,
                session: SessionId::from_raw(2),
                tx: None,
            },
            &mut streaming,
        );
        next(
            at,
            EventKind::Acknowledge {
                session: SessionId::from_raw(2),
            },
            &mut streaming,
        );
        if message % 1_000 == 0 {
            max_state = max_state.max(streaming.state_bytes());
        }
    }
    next(
        MESSAGES + 1,
        EventKind::PhaseStarted {
            phase: Phase::WarmDown,
        },
        &mut streaming,
    );
    max_state = max_state.max(streaming.state_bytes());

    let events = streaming.events_observed();
    let batch_floor = events * mem::size_of::<Event>();
    assert!(
        batch_floor > CEILING_BYTES,
        "soak workload too small to make the point: a batch trace of \
         {events} events holds only {batch_floor} bytes, under the \
         {CEILING_BYTES}-byte ceiling"
    );
    assert!(
        max_state < CEILING_BYTES,
        "streaming resident state reached {max_state} bytes, \
         over the {CEILING_BYTES}-byte ceiling"
    );

    // And the verdict over the soak run is still the full, clean report.
    let report = streaming.finish();
    assert!(report.passed(), "{report}");
    assert_eq!(report.sends as u64, MESSAGES);
    assert_eq!(report.receives as u64, MESSAGES);
}
