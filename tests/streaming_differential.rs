//! Differential acceptance tests of the streaming pipeline: for every
//! scenario — clean, faulty, crashing, sharded — the streaming analyzer
//! fed through the live channel-and-reorder-buffer transport must produce
//! a report identical to the batch driver's replay of the recorded trace.
//! Violation sets, performance summaries, expiry accounting, and the
//! dead-letter-backed redelivery verdicts all ride in the compared
//! [`AnalysisReport`]s.

use jmst::harness::HarnessError;
use jmst::prelude::*;
use jmst::store::sink::EventSink;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Streams a recorded trace through the live transport (bounded channel
/// plus reorder buffer) into a streaming analyzer on its own thread.
fn streaming_report(analyzer: &Analyzer, trace: &Trace) -> AnalysisReport {
    let (mut sink, stream) = jmst::store::channel(1024, 4096);
    let mut streaming = analyzer.streaming();
    let consumer = std::thread::spawn(move || {
        for event in stream {
            streaming.observe(&event);
        }
        streaming.finish()
    });
    for event in trace {
        sink.accept(event);
    }
    sink.close();
    consumer.join().expect("streaming analysis thread")
}

fn assert_reports_match(trace: &Trace, context: &str) {
    let analyzer = Analyzer::new();
    let batch = analyzer.analyze(trace);
    let streaming = streaming_report(&analyzer, trace);
    assert_eq!(
        batch.violations, streaming.violations,
        "violation sets diverged: {context}"
    );
    assert_eq!(
        batch.performance, streaming.performance,
        "performance summaries diverged: {context}"
    );
    assert_eq!(batch, streaming, "reports diverged: {context}");
}

/// One generated fault/recovery script for a short broker run.
#[derive(Debug, Clone)]
struct FaultScript {
    shards: usize,
    seed: u64,
    drop: f64,
    duplicate: f64,
    reorder: f64,
    ack_loss: f64,
    crash: bool,
    max_redeliveries: Option<u32>,
}

fn arb_script() -> impl Strategy<Value = FaultScript> {
    (
        prop_oneof![Just(1usize), Just(8usize)],
        0u64..1_000,
        prop_oneof![Just(0.0), Just(0.1), Just(0.3)],
        prop_oneof![Just(0.0), Just(0.2)],
        prop_oneof![Just(0.0), Just(0.3)],
        prop_oneof![Just(0.0), Just(0.15)],
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(2u32))],
    )
        .prop_map(
            |(shards, seed, drop, duplicate, reorder, ack_loss, crash, max_redeliveries)| {
                FaultScript {
                    shards,
                    seed,
                    drop,
                    duplicate,
                    reorder,
                    ack_loss,
                    crash,
                    max_redeliveries,
                }
            },
        )
}

fn script_spec(script: &FaultScript) -> TestSpec {
    let mut spec = TestSpec::new("streaming-differential")
        .with_seed(script.seed)
        .with_periods(
            Duration::from_millis(10),
            Duration::from_millis(120),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(Destination::queue("q"), 300.0, 64)
                        .with_delivery_mode(DeliveryMode::Persistent),
                )
                .consumer(
                    ConsumerSpec::auto(Destination::queue("q"))
                        .with_mode(SessionMode::ClientAcknowledge, 3),
                ),
        );
    if script.crash {
        spec = spec.with_crash(CrashPlan {
            crash_after: Duration::from_millis(50),
            down_for: Duration::from_millis(25),
        });
    }
    spec
}

fn script_broker(script: &FaultScript) -> ReferenceBroker {
    let faults = FaultSpec::none()
        .dropping(script.drop)
        .duplicating(script.duplicate)
        .reordering(script.reorder, Duration::from_millis(3))
        .losing_acks(script.ack_loss)
        .seeded(script.seed);
    let mut config = BrokerConfig::correct()
        .with_shards(script.shards)
        .with_faults(faults);
    if let Some(bound) = script.max_redeliveries {
        config = config.with_max_redeliveries(bound);
    }
    ReferenceBroker::with_config(config)
}

/// Runs the script, salvaging the partial trace when the faults made the
/// run inconclusive — a divergence on a salvaged trace is just as much a
/// bug as one on a completed run.
fn script_trace(script: &FaultScript) -> Trace {
    let broker = script_broker(script);
    let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
    match ThreadedRunner::new().run(Arc::new(broker), Some(admin), &script_spec(script)) {
        Ok(trace) => trace,
        Err(HarnessError::Inconclusive { partial_trace, .. })
        | Err(HarnessError::TestHung { partial_trace, .. }) => *partial_trace,
        Err(other) => panic!("unexpected harness error: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn streaming_equals_batch_under_random_fault_scripts(script in arb_script()) {
        let trace = script_trace(&script);
        assert_reports_match(&trace, &format!("{script:?}"));
    }
}

#[test]
fn streaming_equals_batch_on_clean_sharded_runs() {
    for shards in [1usize, 8] {
        let script = FaultScript {
            shards,
            seed: 42,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            ack_loss: 0.0,
            crash: false,
            max_redeliveries: None,
        };
        let trace = script_trace(&script);
        assert_reports_match(&trace, &format!("clean run, {shards} shard(s)"));
    }
}

#[test]
fn streaming_equals_batch_through_crash_recovery_with_dlq() {
    let script = FaultScript {
        shards: 8,
        seed: 7,
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        ack_loss: 0.4,
        crash: true,
        max_redeliveries: Some(2),
    };
    let trace = script_trace(&script);
    // The heavy ack loss with a tight redelivery bound parks messages on
    // the DLQ; both analyses must account for them identically.
    assert_reports_match(&trace, "crash + ack loss + DLQ");
}
