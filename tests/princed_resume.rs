//! Crash-safety test for the real `jmst-princed` binary: a campaign
//! whose prince is SIGKILLed mid-flight and then resumed with
//! `--resume` must produce a stable report byte-identical to an
//! uninterrupted run. The HMAC chain is verified on every resume: a
//! wrong key is refused outright, and a journal truncated at arbitrary
//! byte offsets salvages its valid prefix and converges to the same
//! report.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const KEY: &str = "resume-test-key";

fn prince_bin() -> &'static str {
    env!("CARGO_BIN_EXE_jmst-princed")
}

/// Three quick deterministic process-mode scenarios: message-limited
/// producer, matching consumer, clean broker — the verdict and the
/// stable report are a function of the spec alone.
fn write_scenarios(dir: &Path) -> Vec<PathBuf> {
    let mut paths = Vec::new();
    for (tag, seed, limit) in [("a", 31u64, 40u32), ("b", 32, 25), ("c", 33, 30)] {
        let cfg = format!(
            "[test]\n\
             name = resume-{tag}\n\
             seed = {seed}\n\
             warm_up = 20ms\n\
             run = 200ms\n\
             warm_down = 3s\n\
             \n\
             [transport]\n\
             mode = process\n\
             respawn_limit = 2\n\
             \n\
             [node n0]\n\
             \n\
             [producer]\n\
             destination = queue:r{tag}\n\
             rate = steady 300\n\
             body = text 64\n\
             limit = {limit}\n\
             \n\
             [consumer]\n\
             destination = queue:r{tag}\n"
        );
        let path = dir.join(format!("resume-{tag}.cfg"));
        fs::write(&path, cfg).unwrap();
        paths.push(path);
    }
    paths
}

fn prince_cmd(scenarios: &[PathBuf], journal: &Path, report: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(prince_bin());
    cmd.arg("--journal")
        .arg(journal)
        .arg("--key")
        .arg(KEY)
        .arg("--report")
        .arg(report);
    if resume {
        cmd.arg("--resume");
    }
    cmd.args(scenarios);
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

fn run_to_completion(scenarios: &[PathBuf], journal: &Path, report: &Path, resume: bool) {
    let status = prince_cmd(scenarios, journal, report, resume)
        .status()
        .expect("prince runs");
    assert!(
        status.success(),
        "prince exited with {status} (journal {})",
        journal.display()
    );
}

#[test]
fn sigkilled_prince_resumes_to_the_uninterrupted_report() {
    let dir = std::env::temp_dir().join(format!("jmst-resume-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let scenarios = write_scenarios(&dir);

    // Reference: the campaign run start to finish, no interruptions.
    let ref_journal = dir.join("ref.jnl");
    let ref_report = dir.join("ref.txt");
    run_to_completion(&scenarios, &ref_journal, &ref_report, false);
    let reference = fs::read_to_string(&ref_report).unwrap();
    assert!(
        reference.contains("PASS"),
        "reference campaign must pass: {reference}"
    );

    // Crash run: SIGKILL the prince once the journal shows progress.
    let kill_journal = dir.join("kill.jnl");
    let kill_report = dir.join("kill.txt");
    let mut child = prince_cmd(&scenarios, &kill_journal, &kill_report, false)
        .spawn()
        .expect("prince spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if kill_journal.metadata().map(|m| m.len()).unwrap_or(0) > 64 {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(400));
    // Child::kill is SIGKILL on Unix — no chance to flush or clean up.
    child.kill().ok();
    child.wait().expect("reap killed prince");

    // Resume must pick up from the journal and converge to the exact
    // reference report (completed tests replayed, the rest rerun).
    run_to_completion(&scenarios, &kill_journal, &kill_report, true);
    let resumed = fs::read_to_string(&kill_report).unwrap();
    assert_eq!(
        resumed, reference,
        "resumed campaign report diverges from the uninterrupted run"
    );

    // Resuming an already-finished journal replays the verdicts without
    // rerunning anything and still reproduces the report exactly.
    let replay_report = dir.join("replay.txt");
    run_to_completion(&scenarios, &ref_journal, &replay_report, true);
    assert_eq!(fs::read_to_string(&replay_report).unwrap(), reference);

    // A wrong key must be refused before anything is truncated.
    let status = Command::new(prince_bin())
        .arg("--resume")
        .arg("--journal")
        .arg(&ref_journal)
        .arg("--key")
        .arg("not-the-key")
        .args(&scenarios)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("prince runs");
    assert_eq!(status.code(), Some(3), "wrong key must be a campaign error");
    run_to_completion(&scenarios, &ref_journal, &replay_report, true);
    assert_eq!(
        fs::read_to_string(&replay_report).unwrap(),
        reference,
        "the refused wrong-key attempt must leave the journal intact"
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_journal_salvages_and_converges_to_the_same_report() {
    let dir = std::env::temp_dir().join(format!("jmst-resume-trunc-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let scenarios = write_scenarios(&dir);

    let ref_journal = dir.join("ref.jnl");
    let ref_report = dir.join("ref.txt");
    run_to_completion(&scenarios, &ref_journal, &ref_report, false);
    let reference = fs::read_to_string(&ref_report).unwrap();
    let bytes = fs::read(&ref_journal).unwrap();
    assert!(
        bytes.len() > 64,
        "journal too small to truncate meaningfully"
    );

    // Chop the journal at arbitrary offsets — mid-record, mid-MAC,
    // just past the magic header — and resume each copy. The valid
    // prefix is salvaged, the damaged suffix discarded, and rerunning
    // the remainder converges to the reference report every time.
    for (i, cut) in [
        bytes.len() - 1,
        bytes.len() * 3 / 4,
        bytes.len() / 2,
        bytes.len() / 4,
        9,
    ]
    .into_iter()
    .enumerate()
    {
        let journal = dir.join(format!("trunc-{i}.jnl"));
        fs::write(&journal, &bytes[..cut]).unwrap();
        let report = dir.join(format!("trunc-{i}.txt"));
        run_to_completion(&scenarios, &journal, &report, true);
        assert_eq!(
            fs::read_to_string(&report).unwrap(),
            reference,
            "truncation at byte {cut} did not converge to the reference report"
        );
    }

    fs::remove_dir_all(&dir).ok();
}
