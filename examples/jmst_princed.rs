//! `jmst_princed` (example wrapper): the multi-process daemon prince.
//!
//! Identical to the `jmst-princed` binary — kept as an example so
//! `cargo run --example jmst_princed` works like the other harness
//! CLIs:
//!
//! ```sh
//! cargo run --example jmst_princed -- --mode process scenarios/selector_routing.cfg
//! cargo run --example jmst_princed -- --resume --journal campaign.jnl scenarios/*.cfg
//! ```

fn main() {
    std::process::exit(jmst::harness::princed::cli_main());
}
