//! `jmst-lint`: statically check scenario files without running them.
//!
//! Parses each scenario, then runs the same static-analysis pass the
//! daemon prince applies before every campaign test: ill-typed
//! selectors, provably-dead subscriptions and unsatisfiable equality
//! predicates are hard errors; unset property references, consumerless
//! producers and misaligned send batches are warnings.
//!
//! Standalone property files (`*.prop`, one declaration of the
//! jmst-props DSL per line) are linted too: ill-typed or vacuous
//! guards and unsatisfiable bounds are hard errors, properties that
//! cannot fail before trace end are warnings.
//!
//! Arguments may be files or directories; a directory is walked
//! recursively and every `*.cfg` and `*.prop` under it is linted.
//!
//! ```sh
//! cargo run --example jmst_lint -- scenarios/selector_routing.cfg
//! cargo run --example jmst_lint -- scenarios/     # recursive *.cfg + *.prop
//! cargo run --example jmst_lint -- corpus/ scenarios/  # exit 1 on errors
//! ```

use jmst::harness::{lint_props, lint_spec, parse_spec};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: jmst_lint SCENARIO.cfg|DIR [SCENARIO.cfg|DIR ...]");
        std::process::exit(2);
    }
    let mut paths = Vec::new();
    let mut failed = false;
    for arg in &args {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            let before = paths.len();
            collect_cfgs(&path, &mut paths, &mut failed);
            if paths.len() == before {
                println!("{arg}: error: no .cfg or .prop files found under directory");
                failed = true;
            }
        } else {
            paths.push(path);
        }
    }
    for path in &paths {
        if !lint_file(path) {
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Recursively collects `*.cfg` and `*.prop` files under `dir`, in
/// sorted order so output (and exit codes) are stable across
/// filesystems.
fn collect_cfgs(dir: &Path, paths: &mut Vec<PathBuf>, failed: &mut bool) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(error) => {
            println!("{}: error: cannot read directory: {error}", dir.display());
            *failed = true;
            return;
        }
    };
    let mut children: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|entry| entry.path()))
        .collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_cfgs(&child, paths, failed);
        } else if child
            .extension()
            .is_some_and(|ext| ext == "cfg" || ext == "prop")
        {
            paths.push(child);
        }
    }
}

fn lint_file(path: &Path) -> bool {
    let display = path.display();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            println!("{display}: error: cannot read: {error}");
            return false;
        }
    };
    if path.extension().is_some_and(|ext| ext == "prop") {
        let properties = match jmst::props::parse_properties(&text) {
            Ok(properties) => properties,
            Err(error) => {
                println!("{display}: error: {error}");
                return false;
            }
        };
        let report = lint_props(&properties);
        print!("{display}: {report}");
        return !report.has_errors();
    }
    // Parse/validation failures (syntax, ill-typed selectors) are
    // hard errors just like lint errors: the spec cannot run.
    let spec = match parse_spec(&text) {
        Ok(spec) => spec,
        Err(error) => {
            println!("{display}: error: {error}");
            return false;
        }
    };
    let report = lint_spec(&spec);
    print!("{display}: {report}");
    !report.has_errors()
}
