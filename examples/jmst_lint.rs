//! `jmst-lint`: statically check scenario files without running them.
//!
//! Parses each scenario, then runs the same static-analysis pass the
//! daemon prince applies before every campaign test: ill-typed
//! selectors, provably-dead subscriptions and unsatisfiable equality
//! predicates are hard errors; unset property references, consumerless
//! producers and misaligned send batches are warnings.
//!
//! ```sh
//! cargo run --example jmst_lint -- scenarios/selector_routing.cfg
//! cargo run --example jmst_lint -- scenarios/*.cfg   # exit 1 on errors
//! ```

use jmst::harness::{lint_spec, parse_spec};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: jmst_lint SCENARIO.cfg [SCENARIO.cfg ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                println!("{path}: error: cannot read: {error}");
                failed = true;
                continue;
            }
        };
        // Parse/validation failures (syntax, ill-typed selectors) are
        // hard errors just like lint errors: the spec cannot run.
        let spec = match parse_spec(&text) {
            Ok(spec) => spec,
            Err(error) => {
                println!("{path}: error: {error}");
                failed = true;
                continue;
            }
        };
        let report = lint_spec(&spec);
        print!("{path}: {report}");
        if report.has_errors() {
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
