//! Request/reply over queues: the classic JMS pattern exercising the
//! `reply_to` and `correlation_id` headers and message selectors — a
//! realistic application built directly on the provider API (no harness),
//! showing the substrate is a usable messaging library in its own right.
//!
//! A pricing service consumes requests from `quotes.requests` and replies
//! to each requester's reply queue; two clients issue requests
//! concurrently and match replies by correlation id using a selector.
//!
//! ```sh
//! cargo run --example request_reply
//! ```

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: &str = "quotes.requests";

fn pricing_service(
    provider: Arc<dyn jmst::api::provider::Provider>,
) -> std::thread::JoinHandle<usize> {
    std::thread::spawn(move || {
        let mut connection = provider.create_connection(None).expect("connect");
        connection.start().expect("start");
        let mut session = connection
            .create_session(SessionMode::AutoAcknowledge)
            .expect("session");
        let mut requests = session
            .create_consumer(&Destination::queue(REQUESTS), None)
            .expect("consumer");
        let mut served = 0;
        // Serve until the request queue stays quiet.
        while let Ok(Some(request)) = requests.receive(Some(Duration::from_millis(300))) {
            let symbol = request
                .properties()
                .get("symbol")
                .and_then(Value::as_str)
                .unwrap_or("???")
                .to_owned();
            // Deterministic "pricing".
            let price = 100.0 + symbol.bytes().map(f64::from).sum::<f64>() / 10.0;
            let reply_to = request.reply_to().expect("requests carry reply_to").clone();
            let correlation = request
                .correlation_id()
                .expect("requests carry correlation ids")
                .to_owned();
            let mut replier = session.create_producer(&reply_to).expect("producer");
            replier
                .send(
                    MessageDraft::new(Body::map([
                        ("symbol", Value::from(symbol.as_str())),
                        ("price", Value::Double(price)),
                    ]))
                    .correlation_id(correlation),
                )
                .expect("reply");
            served += 1;
        }
        served
    })
}

fn client(
    provider: Arc<dyn jmst::api::provider::Provider>,
    name: &'static str,
    symbols: &'static [&'static str],
) -> std::thread::JoinHandle<Vec<(String, f64)>> {
    std::thread::spawn(move || {
        let mut connection = provider.create_connection(None).expect("connect");
        connection.start().expect("start");
        let mut session = connection
            .create_session(SessionMode::AutoAcknowledge)
            .expect("session");
        let reply_queue = Destination::queue(format!("quotes.replies.{name}"));
        let mut requester = session
            .create_producer(&Destination::queue(REQUESTS))
            .expect("producer");
        let mut quotes = Vec::new();
        for (index, symbol) in symbols.iter().enumerate() {
            let correlation = format!("{name}-{index}");
            requester
                .send(
                    MessageDraft::text("quote request")
                        .property("symbol", Value::from(*symbol))
                        .expect("valid property")
                        .reply_to(reply_queue.clone())
                        .correlation_id(correlation.clone()),
                )
                .expect("request");
            // Wait for *this* request's reply, selected by correlation id.
            let mut reply_consumer = session
                .create_consumer(
                    &reply_queue,
                    Some(&format!("JMSCorrelationID = '{correlation}'")),
                )
                .expect("reply consumer");
            let reply = reply_consumer
                .receive(Some(Duration::from_secs(2)))
                .expect("receive")
                .expect("service replied");
            assert_eq!(reply.correlation_id(), Some(correlation.as_str()));
            let Body::Map(fields) = reply.body() else {
                panic!("replies are map messages")
            };
            quotes.push((
                fields["symbol"].as_str().expect("symbol").to_owned(),
                fields["price"].as_f64().expect("price"),
            ));
            reply_consumer.close().expect("close");
        }
        quotes
    })
}

fn main() {
    // JMSCorrelationID selectors need the header resolvable; our selector
    // engine resolves it (see jmst_api::selector).
    let provider: Arc<dyn jmst::api::provider::Provider> = Arc::new(ReferenceBroker::new());
    let service = pricing_service(Arc::clone(&provider));
    let alice = client(
        Arc::clone(&provider),
        "alice",
        &["ACME", "GLOBEX", "INITECH"],
    );
    let bob = client(Arc::clone(&provider), "bob", &["HOOLI", "ACME"]);

    let alice_quotes = alice.join().expect("alice finished");
    let bob_quotes = bob.join().expect("bob finished");
    let served = service.join().expect("service finished");

    println!("pricing service answered {served} requests\n");
    for (who, quotes) in [("alice", alice_quotes), ("bob", bob_quotes)] {
        for (symbol, price) in quotes {
            println!("  {who}: {symbol} @ {price:.2}");
        }
    }
    assert_eq!(served, 5);
}
