//! Trace archaeology: run a test, persist its execution trace to disk
//! (as the paper's tests log events to disk), then load it back,
//! re-analyse it offline, and export the results in every supported
//! format — the paper's collect → database → reports pipeline.
//!
//! ```sh
//! cargo run --example trace_archaeology
//! ```

use jmst::core::report;
use jmst::prelude::*;
use jmst::store::csv;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run a test against a slightly faulty provider so the offline
    //    analysis has something to find.
    let spec = TestSpec::new("archaeology")
        .with_periods(
            Duration::from_millis(50),
            Duration::from_millis(500),
            Duration::from_secs(3),
        )
        .node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(Destination::queue("q"), 300.0, 256))
                .consumer(ConsumerSpec::auto(Destination::queue("q"))),
        );
    let broker = ReferenceBroker::with_config(
        BrokerConfig::correct().with_faults(FaultSpec::none().dropping(0.05).seeded(99)),
    );
    let trace = ThreadedRunner::new().run(Arc::new(broker), None, &spec)?;

    // 2. Persist the raw event log (one JSON object per line).
    let dir = std::env::temp_dir().join("jmst-archaeology");
    std::fs::create_dir_all(&dir)?;
    let trace_path = dir.join("archaeology.trace.jsonl");
    trace.save_jsonl(&trace_path)?;
    println!(
        "persisted {} events to {}",
        trace.len(),
        trace_path.display()
    );

    // 3. Load it back — possibly on another machine, much later — and
    //    run the same analysis the harness would have run.
    let loaded = Trace::load_jsonl(&trace_path)?;
    assert_eq!(loaded, trace);
    let analysis = Analyzer::new().analyze(&loaded);
    println!("\n{analysis}");

    // 4. Export the findings.
    let markdown_path = dir.join("report.md");
    std::fs::write(&markdown_path, report::to_markdown(&analysis))?;
    println!("markdown report: {}", markdown_path.display());

    let violations_path = dir.join("violations.csv");
    std::fs::write(
        &violations_path,
        report::violations_to_csv(&analysis.violations),
    )?;
    println!("violations CSV:  {}", violations_path.display());

    let events_path = dir.join("events.csv");
    std::fs::write(&events_path, csv::trace_to_csv(&loaded))?;
    println!("event-table CSV: {}", events_path.display());

    // 5. Ad-hoc queries over the relational views — what the paper did in
    //    SQL, e.g. "messages per producer".
    let store = TraceStore::build(&loaded);
    let per_producer =
        jmst::store::query::count_by(store.effective_sends(), |row| row.record.producer);
    println!("\nad-hoc query — effective sends per producer:");
    for (producer, count) in per_producer {
        println!("  {producer}: {count}");
    }
    Ok(())
}
