//! Vendor-style component testing: run a certification campaign — the
//! full matrix of correctness tests — against a candidate provider and
//! report which JMS behaviours it gets wrong.
//!
//! This is the paper's first use case ("the harness automates the process
//! of component testing"; it was used on Fujitsu's pre-release JMS
//! product). Here the candidate has two seeded defects: it occasionally
//! drops messages and it ignores message expiry.
//!
//! ```sh
//! cargo run --example certify_provider
//! ```

use jmst::harness::BrokerAdmin;
use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn campaign_specs() -> Vec<TestSpec> {
    let queue = Destination::queue("q");
    let topic = Destination::topic("t");
    let periods = |spec: TestSpec| {
        spec.with_periods(
            Duration::from_millis(50),
            Duration::from_millis(400),
            Duration::from_secs(3),
        )
    };
    vec![
        // Point-to-point, plain auto-acknowledge.
        periods(TestSpec::new("p2p-auto")).node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(queue.clone(), 300.0, 256))
                .consumer(ConsumerSpec::auto(queue.clone())),
        ),
        // Point-to-point, transacted both ends.
        periods(TestSpec::new("p2p-transacted")).node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(queue.clone(), 300.0, 256).transacted(5))
                .consumer(ConsumerSpec::auto(queue.clone()).with_mode(SessionMode::Transacted, 5)),
        ),
        // Pub/sub fan-out.
        periods(TestSpec::new("pubsub-fanout")).node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(topic.clone(), 300.0, 256))
                .consumer(ConsumerSpec::auto(topic.clone()))
                .consumer(ConsumerSpec::auto(topic.clone())),
        ),
        // Durable subscription with a disconnect/reconnect cycle.
        periods(TestSpec::new("durable-resume")).node(
            NodeSpec::new("n0")
                .producer(ProducerSpec::steady(topic.clone(), 200.0, 128))
                .consumer(
                    ConsumerSpec::auto(topic.clone())
                        .durable("audit")
                        .with_reconnect(ReconnectSpec {
                            after_messages: 40,
                            pause: Duration::from_millis(50),
                            max_cycles: 2,
                        }),
                ),
        ),
        // The paper's expiry configuration: TTL 1 ms vs TTL 0.
        periods(TestSpec::new("expiry")).node(
            NodeSpec::new("n0")
                .producer(
                    ProducerSpec::steady(queue.clone(), 150.0, 128)
                        .with_ttl(TimeToLive::from_millis(1)),
                )
                .producer(ProducerSpec::steady(queue.clone(), 150.0, 128))
                .consumer(ConsumerSpec::auto(queue.clone())),
        ),
        // Crash/recovery of persistent delivery (the paper's future work).
        periods(TestSpec::new("crash-persistent"))
            .node(
                NodeSpec::new("n0")
                    .producer(
                        ProducerSpec::steady(queue.clone(), 200.0, 128)
                            .with_delivery_mode(DeliveryMode::Persistent),
                    )
                    .consumer(ConsumerSpec::auto(queue)),
            )
            .with_crash(CrashPlan {
                crash_after: Duration::from_millis(200),
                down_for: Duration::from_millis(60),
            }),
    ]
}

fn main() {
    // The candidate provider: looks fine at a glance, but drops ~10% of
    // messages and never expires anything. Every test gets a fresh
    // instance (the prince's reset-between-tests hook).
    let candidate = |_: &TestSpec| -> (
        Arc<dyn jmst::api::provider::Provider>,
        Option<Arc<dyn BrokerAdmin>>,
    ) {
        let broker = ReferenceBroker::with_config(
            BrokerConfig::correct()
                .named("candidate-0.9")
                .with_delivery_delay(Duration::from_millis(10))
                .ignoring_expiry()
                .with_faults(FaultSpec::none().dropping(0.10).seeded(2024)),
        );
        let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
        (Arc::new(broker), Some(admin))
    };

    let prince = DaemonPrince::new();
    let campaign = prince.run_campaign(&candidate, &campaign_specs());
    println!("{campaign}");

    println!("findings by property:");
    for result in &campaign.results {
        if let Some(report) = result.outcome.report() {
            for (property, violations) in report.by_property() {
                println!(
                    "  {:<20} {:<28} {} violation(s), e.g. {}",
                    result.name,
                    property.to_string(),
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}
