//! Run a test described in the plain-text scenario format — the paper's
//! "configure tests without writing code" workflow (§3.2, §5).
//!
//! ```sh
//! cargo run --example run_scenario                 # built-in demo scenario
//! cargo run --example run_scenario -- my_test.cfg  # your own scenario file
//! ```

use jmst::harness::parse_spec;
use jmst::prelude::*;
use std::sync::Arc;

const DEMO: &str = r#"
[test]
name = demo-scenario
seed = 7
warm_up = 100ms
run = 800ms
warm_down = 3s

[node front]

[producer]
destination = topic:ticker
rate = poisson 300
body = bytes 256
priority = 6

[producer]
destination = topic:ticker
rate = burst 20 every 100ms
body = text 128
delivery = non-persistent

[node back]

[consumer]
destination = topic:ticker
durable = archiver
mode = client-ack 10

[consumer]
destination = topic:ticker
selector = JMSPriority >= 5
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) if !path.starts_with("--") => std::fs::read_to_string(path)?,
        _ => DEMO.to_owned(),
    };
    let spec = parse_spec(&text)?;
    println!(
        "running {:?}: {} producer(s), {} consumer(s)",
        spec.name,
        spec.producer_count(),
        spec.consumer_count()
    );
    let broker = ReferenceBroker::new();
    let trace = ThreadedRunner::new().run(Arc::new(broker), None, &spec)?;
    let report = Analyzer::new().analyze(&trace);
    println!("{report}");
    Ok(())
}
