//! Open-loop throughput curves: multiplexed virtual clients against the
//! reference broker and the paper's two service models.
//!
//! Three experiments run in one process and land in `BENCH_loadgen.json`:
//!
//! 1. **Broker scalability** — 1K/10K/100K/1M virtual clients mounted
//!    directly on the reactor's timing wheel and multiplexed onto a
//!    handful of engine workers, sending a fixed aggregate rate
//!    through the reference broker while a [`DrainPump`] measures
//!    intended-send→delivery latency (coordinated-omission-safe). The
//!    1M point is the reactor refactor's headline: no thread pool can
//!    host a million closed-loop drivers, but a million poll-driven
//!    timer tasks are just memory.
//! 2. **Model crossover** — the same 100K-client population swept across
//!    rising demand against time-compressed stand-ins for the paper's
//!    Provider I (plateau: flow control holds throughput at capacity)
//!    and Provider II (thrashing: delivered throughput collapses), with
//!    p99/p99.9 latency per point. Under overload the curves cross: the
//!    slower flow-controlled provider out-delivers the faster one.
//! 3. **Coordinated omission** — the same overloaded thrashing model
//!    measured open-loop (latency from the *intended* send time) and
//!    closed-loop (each client waits for its previous response); the
//!    closed loop under-reports tail latency by orders of magnitude.
//!
//! ```sh
//! cargo run --release --example throughput_curve            # full sweep
//! cargo run --release --example throughput_curve -- --smoke # CI: short runs, still sweeps to 1M clients
//! ```

use jmst_api::modes::SessionMode;
use jmst_api::provider::{Connection, Consumer, Producer, Provider, Session};
use jmst_api::value::Value;
use jmst_api::{destination::Destination, message::MessageDraft};
use jmst_broker::ReferenceBroker;
use jmst_load::{ClientSpec, DrainPump, LoadEngine, SendDisposition, Transport, INTENDED_NS_PROP};
use jmst_sim::{ArrivalProcess, DurationDist, ServiceModel, SimRng};
use jmst_store::LogHistogram;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Body size used throughout, matching the paper's 1 kB messages.
const BODY_BYTES: usize = 1024;

// ---------------------------------------------------------------------------
// Experiment 1: broker scalability sweep
// ---------------------------------------------------------------------------

/// Per-worker transport that sends through one shared producer chain on
/// the reference broker, stamping every message with its intended send
/// time so the drain pump can measure open-loop delivery latency.
/// The lazily-opened provider objects one worker sends through.
type ProducerChain = (Box<dyn Connection>, Box<dyn Session>, Box<dyn Producer>);

struct BrokerTransport {
    provider: Arc<ReferenceBroker>,
    /// The epoch the drain pump measures from (created before the engine
    /// run, so intended offsets are re-based onto it at send time).
    epoch: Instant,
    destination: Destination,
    chain: Option<ProducerChain>,
}

impl BrokerTransport {
    fn new(provider: Arc<ReferenceBroker>, epoch: Instant, destination: Destination) -> Self {
        Self {
            provider,
            epoch,
            destination,
            chain: None,
        }
    }
}

impl Transport for BrokerTransport {
    fn send(
        &mut self,
        _client: u32,
        _seq: u64,
        intended: Duration,
        now: Duration,
    ) -> SendDisposition {
        if self.chain.is_none() {
            let mut connection = match self.provider.create_connection(None) {
                Ok(connection) => connection,
                Err(error) => return SendDisposition::Abort(error.to_string()),
            };
            let mut session = match connection.create_session(SessionMode::AutoAcknowledge) {
                Ok(session) => session,
                Err(error) => return SendDisposition::Abort(error.to_string()),
            };
            let producer = match session.create_producer(&self.destination) {
                Ok(producer) => producer,
                Err(error) => return SendDisposition::Abort(error.to_string()),
            };
            self.chain = Some((connection, session, producer));
        }
        // Re-base the intended time from the engine's epoch onto the
        // pump's: at this moment `epoch.elapsed()` corresponds to `now`.
        let intended_ns = self
            .epoch
            .elapsed()
            .saturating_sub(now.saturating_sub(intended))
            .as_nanos() as i64;
        let draft = MessageDraft::text("x".repeat(BODY_BYTES))
            .property(INTENDED_NS_PROP, Value::Long(intended_ns))
            .expect("legal property name");
        let (_, _, producer) = self.chain.as_mut().expect("chain connected");
        match producer.send(draft) {
            Ok(_) => SendDisposition::Sent,
            Err(_) => SendDisposition::RetryAfter(Duration::from_millis(1)),
        }
    }

    fn finish(&mut self) {
        if let Some((mut connection, mut session, _producer)) = self.chain.take() {
            let _ = session.close();
            let _ = connection.close();
        }
    }
}

struct BrokerPoint {
    clients: usize,
    offered_per_sec: f64,
    sends: u64,
    achieved_per_sec: f64,
    send_lag: LogHistogram,
    received: u64,
    delivery_latency: LogHistogram,
    unstamped: u64,
}

fn broker_point(clients: usize, offered_per_sec: f64, run_for: Duration) -> BrokerPoint {
    let broker = Arc::new(ReferenceBroker::new());
    let destination = Destination::queue("loadgen");
    let epoch = Instant::now();

    // Receive side: a started connection with a few competing consumers,
    // drained by the single pump thread through the batch API.
    let mut rx_connection = broker.create_connection(None).expect("consumer connection");
    let mut rx_session = rx_connection
        .create_session(SessionMode::AutoAcknowledge)
        .expect("consumer session");
    let consumers: Vec<Box<dyn Consumer>> = (0..2)
        .map(|_| {
            rx_session
                .create_consumer(&destination, None)
                .expect("consumer")
        })
        .collect();
    rx_connection.start().expect("start delivery");
    let pump = DrainPump::start(consumers, epoch);

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .clamp(1, 4);
    let transports: Vec<Box<dyn Transport>> = (0..workers)
        .map(|_| {
            Box::new(BrokerTransport::new(
                Arc::clone(&broker),
                epoch,
                destination.clone(),
            )) as Box<dyn Transport>
        })
        .collect();
    let per_client = offered_per_sec / clients as f64;
    let specs: Vec<ClientSpec> = (0..clients)
        .map(|index| {
            ClientSpec::new(
                ArrivalProcess::poisson(per_client).generator(SimRng::seed_from_u64(index as u64)),
            )
        })
        .collect();

    let report = LoadEngine::new(workers).run(specs, transports, Some(run_for), None);
    // Let in-flight deliveries settle before the final drain pass.
    std::thread::sleep(Duration::from_millis(300));
    let drain = pump.stop();
    let _ = rx_session.close();
    let _ = rx_connection.close();

    BrokerPoint {
        clients,
        offered_per_sec,
        sends: report.sends,
        achieved_per_sec: report.sends as f64 / run_for.as_secs_f64(),
        send_lag: report.send_lag,
        received: drain.received,
        delivery_latency: drain.latency,
        unstamped: drain.unstamped,
    }
}

// ---------------------------------------------------------------------------
// Experiment 2: plateau-vs-collapse crossover against service models
// ---------------------------------------------------------------------------

/// Time-compressed stand-in for the paper's Provider I: the same
/// flow-controlled plateau shape as [`ServiceModel::provider_one`], scaled
/// ×50 so the plateau emerges within a seconds-long real-time run.
fn scaled_provider_one() -> ServiceModel {
    ServiceModel::Plateau {
        capacity_msgs_per_sec: 2_250.0,
        per_byte_nanos: 0,
        queue_capacity: 64,
        delivery_latency: DurationDist::constant(Duration::from_millis(1)),
    }
}

/// Time-compressed stand-in for the paper's Provider II: the same
/// unbounded thrashing shape as [`ServiceModel::provider_two`], scaled
/// ×50 in rate — and with the backlog threshold compressed to match, so
/// degradation sets in on the same compressed timescale and the collapse
/// emerges within the run.
fn scaled_provider_two() -> ServiceModel {
    ServiceModel::Thrashing {
        base_capacity_msgs_per_sec: 8_000.0,
        per_byte_nanos: 0,
        degradation_threshold: 1_000,
        degradation_factor: 2.0,
        delivery_latency: DurationDist::constant(Duration::from_millis(1)),
    }
}

/// Tally of one model run, shared between the transport (which fills it
/// in on the engine worker) and the caller.
#[derive(Default)]
struct ModelTally {
    admitted: u64,
    completed_in_window: u64,
    /// Completions in the second half of the window — the steady-state
    /// delivery rate after the backlog (and its degradation) has built.
    completed_steady: u64,
    latency: LogHistogram,
}

/// A virtual broker implementing a [`ServiceModel`] as a single-server
/// queue in real time: each admitted send is assigned a completion time
/// analytically, so latency (completion − intended) is exact without
/// waiting for delivery. A full plateau queue answers `RetryAfter` until
/// the head-of-line message completes — the flow control that throttles
/// producers in Figure 2.
struct ModelTransport {
    model: ServiceModel,
    rng: SimRng,
    /// Completion times of messages still queued or in service.
    completions: VecDeque<Duration>,
    last_completion: Duration,
    horizon: Duration,
    tally: Arc<Mutex<ModelTally>>,
}

impl ModelTransport {
    fn new(model: ServiceModel, horizon: Duration, tally: Arc<Mutex<ModelTally>>) -> Self {
        Self {
            model,
            rng: SimRng::seed_from_u64(7),
            completions: VecDeque::new(),
            last_completion: Duration::ZERO,
            horizon,
            tally,
        }
    }
}

impl Transport for ModelTransport {
    fn send(
        &mut self,
        _client: u32,
        _seq: u64,
        intended: Duration,
        now: Duration,
    ) -> SendDisposition {
        while self.completions.front().is_some_and(|&at| at <= now) {
            self.completions.pop_front();
        }
        if let Some(capacity) = self.model.queue_capacity() {
            if self.completions.len() >= capacity {
                // Flow control: a slot frees when the head-of-line message
                // completes. Jitter spreads the blocked clients' retries so
                // they do not stampede the freed slot in lockstep.
                let head = *self.completions.front().expect("non-empty full queue");
                let jitter = Duration::from_secs_f64(self.rng.uniform(0.5e-3, 30e-3));
                return SendDisposition::RetryAfter(head.saturating_sub(now) + jitter);
            }
        }
        let backlog = self.completions.len();
        let start = self.last_completion.max(now);
        let completion = start + self.model.service_time(backlog, BODY_BYTES);
        self.last_completion = completion;
        self.completions.push_back(completion);
        let delivered_at = completion + self.model.delivery_latency(&mut self.rng);
        let mut tally = self.tally.lock().expect("tally lock");
        tally.admitted += 1;
        if completion <= self.horizon {
            tally.completed_in_window += 1;
            if completion > self.horizon / 2 {
                tally.completed_steady += 1;
            }
        }
        tally.latency.record(delivered_at.saturating_sub(intended));
        SendDisposition::Sent
    }
}

struct ModelPoint {
    model: &'static str,
    clients: usize,
    offered_per_sec: f64,
    admitted: u64,
    delivered_per_sec: f64,
    /// Delivery rate over the second half of the window only — the
    /// steady-state rate once the backlog has built, which is where the
    /// thrashing provider's collapse shows.
    steady_per_sec: f64,
    retries: u64,
    latency: LogHistogram,
}

fn model_point(
    name: &'static str,
    model: ServiceModel,
    clients: usize,
    offered_per_sec: f64,
    run_for: Duration,
) -> ModelPoint {
    let tally = Arc::new(Mutex::new(ModelTally::default()));
    let transport = ModelTransport::new(model, run_for, Arc::clone(&tally));
    let per_client = offered_per_sec / clients as f64;
    let specs: Vec<ClientSpec> = (0..clients)
        .map(|index| {
            ClientSpec::new(
                ArrivalProcess::poisson(per_client)
                    .generator(SimRng::seed_from_u64(1_000_000 + index as u64)),
            )
        })
        .collect();
    // One worker = one server: the model is a single queue, so all
    // clients multiplex onto a single engine worker.
    let report = LoadEngine::new(1).run(specs, vec![Box::new(transport)], Some(run_for), None);
    let tally = Arc::into_inner(tally)
        .expect("sole tally owner")
        .into_inner()
        .expect("tally lock");
    ModelPoint {
        model: name,
        clients,
        offered_per_sec,
        admitted: tally.admitted,
        delivered_per_sec: tally.completed_in_window as f64 / run_for.as_secs_f64(),
        steady_per_sec: tally.completed_steady as f64 / (run_for.as_secs_f64() / 2.0),
        retries: report.retries,
        latency: tally.latency,
    }
}

// ---------------------------------------------------------------------------
// Experiment 3: coordinated omission — open vs closed loop
// ---------------------------------------------------------------------------

/// Closed-loop measurement of the same model in virtual time: each client
/// waits for its previous response before the next send, and latency is
/// measured from the *actual* send — the classic benchmark loop that
/// coordinates with the server and omits the waiting time.
fn closed_loop_latency(
    model: &ServiceModel,
    clients: usize,
    per_client_gap: Duration,
    run_for: Duration,
) -> LogHistogram {
    let mut rng = SimRng::seed_from_u64(13);
    let mut latency = LogHistogram::new();
    let mut completions: VecDeque<Duration> = VecDeque::new();
    let mut last_completion = Duration::ZERO;
    // Min-heap of (next send time, client).
    let mut ready: BinaryHeap<std::cmp::Reverse<(Duration, usize)>> = (0..clients)
        .map(|client| std::cmp::Reverse((per_client_gap.mul_f64(rng.uniform(0.0, 1.0)), client)))
        .collect();
    while let Some(std::cmp::Reverse((now, client))) = ready.pop() {
        if now > run_for {
            break;
        }
        while completions.front().is_some_and(|&at| at <= now) {
            completions.pop_front();
        }
        let backlog = completions.len();
        let start = last_completion.max(now);
        let completion = start + model.service_time(backlog, BODY_BYTES);
        last_completion = completion;
        completions.push_back(completion);
        let delivered_at = completion + model.delivery_latency(&mut rng);
        // Measured from the actual send time — the omission.
        latency.record(delivered_at.saturating_sub(now));
        // The client blocks on its response, then paces the next send.
        ready.push(std::cmp::Reverse((
            delivered_at.max(now + per_client_gap),
            client,
        )));
    }
    latency
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn micros(duration: Option<Duration>) -> f64 {
    duration.map(|d| d.as_secs_f64() * 1e6).unwrap_or(f64::NAN)
}

fn quantiles_json(histogram: &LogHistogram) -> String {
    format!(
        "{{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}}}",
        micros(histogram.quantile(0.5)),
        micros(histogram.quantile(0.99)),
        micros(histogram.quantile(0.999)),
        micros(histogram.max()),
    )
}

fn print_histogram_row(label: &str, histogram: &LogHistogram) {
    println!(
        "    {label}: p50 {:>10.1} µs   p99 {:>12.1} µs   p99.9 {:>12.1} µs",
        micros(histogram.quantile(0.5)),
        micros(histogram.quantile(0.99)),
        micros(histogram.quantile(0.999)),
    );
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_loadgen.json");
    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = arguments.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: throughput_curve [--smoke] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    // --- Experiment 1: broker scalability ---------------------------------
    let (counts, broker_rate, broker_run) = if smoke {
        (
            vec![1_000usize, 10_000, 1_000_000],
            10_000.0,
            Duration::from_millis(800),
        )
    } else {
        (
            vec![1_000usize, 10_000, 100_000, 1_000_000],
            40_000.0,
            Duration::from_secs(3),
        )
    };
    println!("== Broker scalability: virtual clients multiplexed onto a worker pool ==");
    let mut broker_points = Vec::new();
    for &clients in &counts {
        let point = broker_point(clients, broker_rate, broker_run);
        println!(
            "  {:>7} clients @ {:>8.0} msg/s offered: sent {:>7} ({:>8.0} msg/s), received {:>7}",
            point.clients,
            point.offered_per_sec,
            point.sends,
            point.achieved_per_sec,
            point.received,
        );
        print_histogram_row("send lag   ", &point.send_lag);
        print_histogram_row("delivery   ", &point.delivery_latency);
        broker_points.push(point);
    }
    println!();

    // --- Experiment 2: plateau vs collapse --------------------------------
    let model_clients = if smoke { 10_000 } else { 100_000 };
    let model_run = if smoke {
        Duration::from_millis(700)
    } else {
        Duration::from_millis(1_500)
    };
    let demands: Vec<f64> = if smoke {
        vec![4_000.0, 8_000.0, 32_000.0]
    } else {
        vec![1_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0]
    };
    println!("== Model crossover: {model_clients} clients vs time-compressed Providers I/II ==");
    let mut model_points = Vec::new();
    for &(name, ref model) in &[
        ("plateau", scaled_provider_one()),
        ("thrashing", scaled_provider_two()),
    ] {
        println!("  {name} ({model}):");
        for &offered in &demands {
            let point = model_point(name, model.clone(), model_clients, offered, model_run);
            println!(
                "    offered {:>8.0} msg/s → delivered {:>8.0} msg/s, steady {:>8.0} msg/s   (admitted {:>6}, {:>6} retries)",
                point.offered_per_sec,
                point.delivered_per_sec,
                point.steady_per_sec,
                point.admitted,
                point.retries,
            );
            print_histogram_row("latency  ", &point.latency);
            model_points.push(point);
        }
    }
    println!();

    // --- Experiment 3: coordinated omission -------------------------------
    // The thrashing model at 2× nominal capacity: open loop measures from
    // the intended send time, closed loop from the actual one.
    // 500 clients each pacing 32 msg/s nominally offer 16K msg/s — 2× the
    // model's base capacity. The open loop keeps offering it; the closed
    // loop caps itself at 500 outstanding requests (below the degradation
    // threshold), so its measured tail never sees the overload it causes.
    let co_model = scaled_provider_two();
    let co_offered = 16_000.0;
    let co_clients = 500;
    let co_run = if smoke {
        Duration::from_millis(700)
    } else {
        Duration::from_millis(1_500)
    };
    println!("== Coordinated omission: thrashing model at {co_offered:.0} msg/s offered ==");
    let open = model_point(
        "thrashing",
        co_model.clone(),
        co_clients,
        co_offered,
        co_run,
    );
    let per_client_gap = Duration::from_secs_f64(co_clients as f64 / co_offered);
    let closed = closed_loop_latency(&co_model, co_clients, per_client_gap, co_run);
    print_histogram_row("open loop  ", &open.latency);
    print_histogram_row("closed loop", &closed);
    let open_p99 = micros(open.latency.quantile(0.99));
    let closed_p99 = micros(closed.quantile(0.99));
    println!(
        "    open-loop p99 is {:.1}× the closed-loop p99 — the closed loop coordinated with the overload",
        open_p99 / closed_p99.max(1.0),
    );
    println!();

    // --- BENCH_loadgen.json ------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"jmst-loadgen-v1\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"broker\": [\n");
    for (index, point) in broker_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"offered_msgs_per_sec\": {:.1}, \"sends\": {}, \"achieved_msgs_per_sec\": {:.1}, \"received\": {}, \"unstamped\": {}, \"send_lag\": {}, \"delivery_latency\": {}}}{}\n",
            point.clients,
            point.offered_per_sec,
            point.sends,
            point.achieved_per_sec,
            point.received,
            point.unstamped,
            quantiles_json(&point.send_lag),
            quantiles_json(&point.delivery_latency),
            if index + 1 < broker_points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"models\": [\n");
    for (index, point) in model_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"clients\": {}, \"offered_msgs_per_sec\": {:.1}, \"admitted\": {}, \"delivered_msgs_per_sec\": {:.1}, \"steady_msgs_per_sec\": {:.1}, \"retries\": {}, \"latency\": {}}}{}\n",
            point.model,
            point.clients,
            point.offered_per_sec,
            point.admitted,
            point.delivered_per_sec,
            point.steady_per_sec,
            point.retries,
            quantiles_json(&point.latency),
            if index + 1 < model_points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"coordinated_omission\": ");
    json.push_str(&format!(
        "{{\"model\": \"thrashing\", \"clients\": {}, \"offered_msgs_per_sec\": {:.1}, \"open_latency\": {}, \"closed_latency\": {}}}\n",
        co_clients,
        co_offered,
        quantiles_json(&open.latency),
        quantiles_json(&closed),
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
