//! Regenerates the shape of the paper's Figures 2 and 3 — publisher and
//! subscriber throughput against offered demand (bytes per second) for
//! two providers with opposite overload behaviour — and prints the series
//! as text tables plus a rough ASCII plot.
//!
//! ```sh
//! cargo run --release --example throughput_curve
//! ```

use jmst::prelude::*;
use jmst_api::time::Timestamp;
use std::time::Duration;

struct Series {
    demand_bytes_per_sec: f64,
    publisher_msgs_per_sec: f64,
    subscriber_msgs_per_sec: f64,
}

fn sweep(model: &ServiceModel, body_bytes: usize, demands: &[f64]) -> Vec<Series> {
    let production = Duration::from_secs(60);
    let warm_up = Duration::from_secs(10);
    demands
        .iter()
        .map(|&demand| {
            let rate = demand / body_bytes as f64;
            let scenario = PubSubScenario {
                publishers: vec![PublisherSpec::steady(rate, body_bytes)],
                subscribers: 1,
                model: model.clone(),
                production_period: production,
                drain_limit: Duration::from_secs(600),
                seed: 11,
            };
            let outcome = scenario.run();
            let start = Timestamp::ZERO + warm_up;
            let end = Timestamp::ZERO + production;
            Series {
                demand_bytes_per_sec: demand,
                publisher_msgs_per_sec: outcome.publisher_rate(start, end),
                subscriber_msgs_per_sec: outcome.subscriber_rate(start, end, 1),
            }
        })
        .collect()
}

fn print_figure(title: &str, series: &[Series]) {
    println!("{title}");
    println!(
        "{:>14} {:>14} {:>16}",
        "demand B/s", "pub msg/s", "sub msg/s"
    );
    for row in series {
        println!(
            "{:>14.0} {:>14.1} {:>16.1}",
            row.demand_bytes_per_sec, row.publisher_msgs_per_sec, row.subscriber_msgs_per_sec
        );
    }
    // ASCII sketch of the subscriber curve.
    let max = series
        .iter()
        .map(|row| row.subscriber_msgs_per_sec)
        .fold(f64::MIN, f64::max)
        .max(1.0);
    println!("subscriber throughput:");
    for row in series {
        let bar = "#".repeat((row.subscriber_msgs_per_sec / max * 50.0).round() as usize);
        println!("{:>10.0} | {}", row.demand_bytes_per_sec, bar);
    }
    println!();
}

fn main() {
    let body_bytes = 1024;
    // Demand grid: fine steps through the rising region, then the
    // paper's 0..500,000 B/s span.
    let mut demands: Vec<f64> = vec![10_000.0, 20_000.0, 30_000.0, 40_000.0];
    demands.extend((1..=10).map(|i| i as f64 * 50_000.0));

    // Provider I (Figure 2): flow control — both curves plateau at the
    // provider's capacity (the paper's plateau sits near 45 msg/s).
    print_figure(
        "Figure 2 — Provider I (plateau under overload)",
        &sweep(&ServiceModel::provider_one(), body_bytes, &demands),
    );

    // Provider II (Figure 3): no flow control — publishers keep climbing
    // while subscriber throughput peaks (near 160 msg/s in the paper) and
    // then falls as the system is over-stressed.
    print_figure(
        "Figure 3 — Provider II (collapse under overload)",
        &sweep(&ServiceModel::provider_two(), body_bytes, &demands),
    );
}
