//! `jmst-replay`: replay traces through both analysis paths and diff.
//!
//! Each argument is either a saved trace (`.trace.jsonl` / `.jsonl` from
//! [`Trace::save_jsonl`], `.csv` from the CSV exporter) or a scenario
//! description (`.cfg`), which is linted and executed against a reference
//! broker first. Scenario `[properties]` sections are compiled onto the
//! checker core, so DSL verdicts are replayed alongside the built-ins.
//! The resulting trace is then analysed twice — once by the
//! batch driver ([`Analyzer::analyze`]) and once by a
//! [`StreamingAnalyzer`] fed through the live channel-and-reorder-buffer
//! transport — and the two [`AnalysisReport`]s are compared field by
//! field. They must be identical: the streaming pipeline is a refactoring
//! of the batch one, not an approximation of it.
//!
//! Exit status: 0 when every report pair matches, 1 on any divergence,
//! 2 on usage or input errors.
//!
//! ```sh
//! cargo run --example jmst_replay -- traces/smoke.trace.jsonl
//! cargo run --example jmst_replay -- scenarios/redelivery_dlq.cfg
//! ```

use jmst::core::CheckerRegistry;
use jmst::harness::{lint_spec, parse_spec};
use jmst::prelude::*;
use jmst::store::sink::EventSink;
use std::sync::Arc;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: jmst_replay TRACE.jsonl|TRACE.csv|SCENARIO.cfg ...");
        std::process::exit(2);
    }
    let mut diverged = false;
    for path in &paths {
        match replay(path) {
            Ok(Verdict::Identical { events }) => {
                println!("{path}: identical reports ({events} events)");
            }
            Ok(Verdict::Diverged { differences }) => {
                println!("{path}: DIVERGED");
                for difference in differences {
                    println!("  {difference}");
                }
                diverged = true;
            }
            Err(error) => {
                eprintln!("{path}: error: {error}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(if diverged { 1 } else { 0 });
}

enum Verdict {
    Identical { events: usize },
    Diverged { differences: Vec<String> },
}

fn replay(path: &str) -> Result<Verdict, String> {
    let (trace, registry) = load_trace(path)?;
    let analyzer = Analyzer::new().with_registry(registry);
    let batch = analyzer.analyze(&trace);
    let streaming = stream_through_transport(&analyzer, &trace)?;
    if batch == streaming {
        return Ok(Verdict::Identical {
            events: batch.events_analyzed,
        });
    }
    Ok(Verdict::Diverged {
        differences: diff(&batch, &streaming),
    })
}

/// Loads, or for scenarios produces, the trace to replay, paired with
/// the checker registry compiled from the scenario's `[properties]`
/// section (empty for saved traces, which carry no property source).
fn load_trace(path: &str) -> Result<(Trace, CheckerRegistry), String> {
    if path.ends_with(".jsonl") {
        let trace = Trace::load_jsonl(path).map_err(|error| error.to_string())?;
        return Ok((trace, CheckerRegistry::default()));
    }
    if path.ends_with(".csv") {
        let text =
            std::fs::read_to_string(path).map_err(|error| format!("cannot read: {error}"))?;
        let trace = jmst::store::csv::trace_from_csv(&text).map_err(|error| error.to_string())?;
        return Ok((trace, CheckerRegistry::default()));
    }
    if path.ends_with(".cfg") {
        let text =
            std::fs::read_to_string(path).map_err(|error| format!("cannot read: {error}"))?;
        let spec = parse_spec(&text).map_err(|error| error.to_string())?;
        let lint = lint_spec(&spec);
        if lint.has_errors() {
            return Err(format!("lint errors:\n{lint}"));
        }
        let registry = jmst::props::compile_registry(&spec.properties);
        let config = spec.broker_config()?;
        let broker = ReferenceBroker::with_config(config);
        let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
        let trace = ThreadedRunner::new()
            .run(Arc::new(broker), Some(admin), &spec)
            .map_err(|error| error.to_string())?;
        return Ok((trace, registry));
    }
    Err("unsupported input (expected .jsonl, .csv, or .cfg)".to_owned())
}

/// Feeds the trace through the same bounded channel + reorder buffer the
/// live harness uses, with a streaming analyzer consuming on a thread —
/// so a divergence in the transport, not just the checkers, is caught.
fn stream_through_transport(analyzer: &Analyzer, trace: &Trace) -> Result<AnalysisReport, String> {
    let (mut sink, stream) = jmst::store::channel(1024, 4096);
    let mut streaming = analyzer.streaming();
    let consumer = std::thread::spawn(move || {
        for event in stream {
            streaming.observe(&event);
        }
        streaming.finish()
    });
    for event in trace {
        sink.accept(event);
    }
    sink.close();
    consumer
        .join()
        .map_err(|_| "streaming analysis thread panicked".to_owned())
}

/// Human-readable field-by-field differences between two reports.
fn diff(batch: &AnalysisReport, streaming: &AnalysisReport) -> Vec<String> {
    let mut differences = Vec::new();
    if batch.violations != streaming.violations {
        differences.push(format!(
            "violations: batch {} vs streaming {}",
            batch.violations.len(),
            streaming.violations.len()
        ));
        for violation in &batch.violations {
            if !streaming.violations.contains(violation) {
                differences.push(format!("  batch only: {violation}"));
            }
        }
        for violation in &streaming.violations {
            if !batch.violations.contains(violation) {
                differences.push(format!("  streaming only: {violation}"));
            }
        }
    }
    if batch.named != streaming.named {
        differences.push(format!(
            "named property outcomes: batch {} vs streaming {}",
            batch.named.len(),
            streaming.named.len()
        ));
    }
    if batch.performance != streaming.performance {
        differences.push("performance reports differ".to_owned());
    }
    if batch.expiry != streaming.expiry {
        differences.push(format!(
            "expiry breakdowns: batch {} vs streaming {}",
            batch.expiry.len(),
            streaming.expiry.len()
        ));
    }
    if (batch.events_analyzed, batch.sends, batch.receives)
        != (
            streaming.events_analyzed,
            streaming.sends,
            streaming.receives,
        )
    {
        differences.push(format!(
            "counters: batch {}/{}/{} vs streaming {}/{}/{} (events/sends/receives)",
            batch.events_analyzed,
            batch.sends,
            batch.receives,
            streaming.events_analyzed,
            streaming.sends,
            streaming.receives
        ));
    }
    differences
}
