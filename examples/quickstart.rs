//! Quickstart: run one automated test against the reference broker and
//! print the analysis — correctness verdict plus the paper's §3.2
//! performance measures.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jmst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Describe the test: one queue, one steady producer, one consumer,
    // with the paper's warm-up / run / warm-down structure.
    let spec = TestSpec::new("quickstart")
        .with_seed(42)
        .with_periods(
            Duration::from_millis(100), // warm-up
            Duration::from_secs(1),     // measured run
            Duration::from_secs(3),     // warm-down cap
        )
        .node(
            NodeSpec::new("node-0")
                .producer(ProducerSpec::steady(
                    Destination::queue("orders"),
                    500.0, // messages per second
                    512,   // body bytes
                ))
                .consumer(ConsumerSpec::auto(Destination::queue("orders"))),
        );

    // The provider under test: the in-process reference broker.
    let broker = ReferenceBroker::new();

    // Execute: drivers run in coordinated threads, logging every event.
    let trace = ThreadedRunner::new().run(Arc::new(broker), None, &spec)?;
    println!("collected {} trace events", trace.len());

    // Analyse: all five safety properties plus performance.
    let report = Analyzer::new().analyze(&trace);
    println!("{report}");

    if report.passed() {
        println!("verdict: provider conforms on this workload");
    } else {
        println!("verdict: {} violation(s) found", report.violations.len());
    }
    Ok(())
}
