//! `jmst-corpus`: generate, smoke-test, fuzz, and matrix-check the
//! scenario corpus.
//!
//! ```sh
//! # Write the full generated corpus (~220 annotated .cfg files):
//! cargo run --release --example jmst_corpus -- generate --out corpus
//!
//! # Run the seed subset and hold every verdict to its annotation:
//! cargo run --release --example jmst_corpus -- smoke
//!
//! # Coverage-guided fuzzing with a fixed seed and a budget:
//! cargo run --release --example jmst_corpus -- fuzz --seed 7 --runs 64 --seconds 60
//!
//! # Render / verify / refresh the EXPERIMENTS.md fault-detection matrix:
//! cargo run --release --example jmst_corpus -- matrix
//! cargo run --release --example jmst_corpus -- matrix --check EXPERIMENTS.md
//! cargo run --release --example jmst_corpus -- matrix --update EXPERIMENTS.md
//! ```

use jmst::corpus::{
    check_entry, fuzz, generate_corpus, matrix, reachable_tuples, seed_entries, FuzzConfig,
};
use std::path::Path;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("smoke") => cmd_smoke(),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("matrix") => cmd_matrix(&args[1..]),
        _ => {
            eprintln!(
                "usage: jmst_corpus generate [--out DIR]\n\
                 \x20      jmst_corpus smoke\n\
                 \x20      jmst_corpus fuzz [--seed N] [--runs N] [--seconds N] [--min-coverage PCT]\n\
                 \x20      jmst_corpus matrix [--check FILE | --update FILE]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|arg| arg == name)
        .and_then(|index| args.get(index + 1))
        .cloned()
}

fn cmd_generate(args: &[String]) -> i32 {
    let out = flag_value(args, "--out").unwrap_or_else(|| "corpus".to_owned());
    let dir = Path::new(&out);
    if let Err(error) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {out}: {error}");
        return 1;
    }
    let corpus = generate_corpus();
    let mut written = 0usize;
    for entry in &corpus {
        let text = match entry.config_text() {
            Ok(text) => text,
            Err(error) => {
                eprintln!("{}: does not serialize: {error}", entry.name);
                return 1;
            }
        };
        if let Err(error) = std::fs::write(dir.join(entry.file_name()), text) {
            eprintln!("{}: cannot write: {error}", entry.name);
            return 1;
        }
        written += 1;
    }
    println!("wrote {written} scenarios to {out}/");
    0
}

fn cmd_smoke() -> i32 {
    let mut failed = 0usize;
    let seeds = seed_entries();
    for entry in &seeds {
        match check_entry(entry) {
            Ok(observed) => {
                println!("{}: ok ({observed}, expected {})", entry.name, entry.expect);
            }
            Err(error) => {
                println!("DIVERGED {error}");
                failed += 1;
            }
        }
    }
    println!(
        "smoke: {}/{} scenarios matched their annotation",
        seeds.len() - failed,
        seeds.len()
    );
    i32::from(failed > 0)
}

fn cmd_fuzz(args: &[String]) -> i32 {
    // Ctrl-C / SIGTERM stop the campaign between runs; the partial
    // outcome (coverage, kept corpus, divergences) is still reported.
    jmst::harness::signals::install_termination_handler();
    let parse = |name: &str| flag_value(args, name).and_then(|value| value.parse::<u64>().ok());
    let config = FuzzConfig {
        seed: parse("--seed").unwrap_or(7),
        max_runs: parse("--runs").unwrap_or(64) as usize,
        time_budget: parse("--seconds").map(Duration::from_secs),
        minimize_divergent: true,
    };
    let min_coverage = flag_value(args, "--min-coverage")
        .and_then(|value| value.parse::<f64>().ok())
        .unwrap_or(90.0);

    let outcome = fuzz(&config);
    let interrupted = jmst::harness::signals::termination_requested();
    if interrupted {
        println!("fuzz: interrupted — reporting the campaign so far");
    }
    let ratio = outcome.coverage_ratio();
    println!(
        "fuzz: {} runs, {} inputs kept, {} coverage tuples ({:.0}% of the {} reachable)",
        outcome.runs,
        outcome.kept.len(),
        outcome.coverage.len(),
        ratio * 100.0,
        reachable_tuples().len()
    );
    for key in outcome.coverage.keys() {
        println!("  lit {key}");
    }
    for find in &outcome.divergent {
        println!(
            "divergent: {} expected {} observed {}",
            find.entry.name, find.entry.expect, find.observed
        );
        if let Some(spec) = &find.minimized {
            println!(
                "  minimized to {} producers, {} consumers, run {:?}",
                spec.producer_count(),
                spec.consumer_count(),
                spec.run
            );
        }
    }
    let mut code = 0;
    if ratio * 100.0 < min_coverage && !interrupted {
        // A cut-short campaign cannot be judged against the bar.
        println!(
            "coverage {:.0}% is below the --min-coverage {min_coverage}% bar",
            ratio * 100.0
        );
        code = 1;
    }
    if !outcome.divergent.is_empty() {
        code = 1;
    }
    if interrupted && code == 0 {
        code = 130;
    }
    code
}

fn cmd_matrix(args: &[String]) -> i32 {
    let rendered = matrix::render_matrix();
    if let Some(path) = flag_value(args, "--check") {
        let document = match std::fs::read_to_string(&path) {
            Ok(document) => document,
            Err(error) => {
                eprintln!("cannot read {path}: {error}");
                return 1;
            }
        };
        return match matrix::check_document(&document, &rendered) {
            Ok(()) => {
                println!("{path}: fault-detection matrix is up to date");
                0
            }
            Err(error) => {
                eprintln!("{path}: {error}");
                1
            }
        };
    }
    if let Some(path) = flag_value(args, "--update") {
        let document = match std::fs::read_to_string(&path) {
            Ok(document) => document,
            Err(error) => {
                eprintln!("cannot read {path}: {error}");
                return 1;
            }
        };
        return match matrix::replace_block(&document, &rendered) {
            Ok(updated) => match std::fs::write(&path, updated) {
                Ok(()) => {
                    println!("{path}: fault-detection matrix refreshed");
                    0
                }
                Err(error) => {
                    eprintln!("cannot write {path}: {error}");
                    1
                }
            },
            Err(error) => {
                eprintln!("{path}: {error}");
                1
            }
        };
    }
    print!("{rendered}");
    0
}
