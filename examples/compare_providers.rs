//! Provider performance comparison — the paper's second use case: "the
//! harness automates independent performance evaluation of a number of
//! JMS implementations", letting users pick the provider that meets their
//! requirements. The paper's footnote 9 reports factor-of-10 differences
//! between commercial providers on some workloads.
//!
//! Three modelled providers (stand-ins for the paper's anonymous
//! commercial systems) run the same pub/sub workload sweep in simulated
//! time; the table shows delivered throughput and mean delay per demand
//! level.
//!
//! ```sh
//! cargo run --example compare_providers
//! ```

use jmst::prelude::*;
use jmst_api::time::Timestamp;
use std::time::Duration;

struct ModelledProvider {
    name: &'static str,
    model: ServiceModel,
}

fn providers() -> Vec<ModelledProvider> {
    vec![
        // A fast, flow-controlled provider.
        ModelledProvider {
            name: "fastmq",
            model: ServiceModel::plateau(400.0, 64),
        },
        // A mid-range provider that degrades under pressure.
        ModelledProvider {
            name: "middlemq",
            model: ServiceModel::thrashing(150.0, 200),
        },
        // A slow provider — the other end of the paper's factor-of-10
        // spread.
        ModelledProvider {
            name: "slowmq",
            model: ServiceModel::plateau(40.0, 64),
        },
    ]
}

fn main() {
    let body_bytes = 1024;
    let demands_msgs_per_sec = [10.0, 25.0, 50.0, 100.0, 200.0, 400.0];
    let production = Duration::from_secs(60);
    let warm_up = Duration::from_secs(10);

    println!("workload: 1 publisher, 1 subscriber, {body_bytes} B bodies, 60 s run\n");
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12}",
        "provider", "demand msg/s", "pub msg/s", "sub msg/s", "delay ms"
    );
    for provider in providers() {
        for &rate in &demands_msgs_per_sec {
            let scenario = PubSubScenario {
                publishers: vec![PublisherSpec::steady(rate, body_bytes)],
                subscribers: 1,
                model: provider.model.clone(),
                production_period: production,
                drain_limit: Duration::from_secs(600),
                seed: 7,
            };
            let outcome = scenario.run();
            let start = Timestamp::ZERO + warm_up;
            let end = Timestamp::ZERO + production;
            let publisher = outcome.publisher_rate(start, end);
            let subscriber = outcome.subscriber_rate(start, end, 1);
            let delay_ms = outcome
                .mean_delay(start, end)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN);
            println!(
                "{:<22} {:>12.1} {:>14.1} {:>14.1} {:>12.2}",
                provider.name, rate, publisher, subscriber, delay_ms
            );
        }
        println!();
    }

    // The headline comparison: sustained throughput at saturation.
    println!("sustained throughput at the highest demand:");
    let mut sustained = Vec::new();
    for provider in providers() {
        let scenario = PubSubScenario {
            publishers: vec![PublisherSpec::steady(400.0, body_bytes)],
            subscribers: 1,
            model: provider.model.clone(),
            production_period: production,
            drain_limit: Duration::from_secs(600),
            seed: 7,
        };
        let outcome = scenario.run();
        let rate =
            outcome.subscriber_rate(Timestamp::ZERO + warm_up, Timestamp::ZERO + production, 1);
        sustained.push((provider.name, rate));
        println!("  {:<10} {:>8.1} msg/s", provider.name, rate);
    }
    let best = sustained.iter().map(|(_, r)| *r).fold(f64::MIN, f64::max);
    let worst = sustained.iter().map(|(_, r)| *r).fold(f64::MAX, f64::min);
    println!(
        "\nspread: fastest / slowest = {:.1}x (the paper's footnote 9 reports ~10x)",
        best / worst
    );
}
