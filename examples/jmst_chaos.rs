//! `jmst-chaos`: lint, then actually run, fault-declaring scenarios.
//!
//! Each scenario file is first put through the static lint pass (a
//! misconfigured chaos experiment should die before a single message is
//! sent), then executed by the daemon prince against a reference broker
//! built from the scenario's own `[faults]` section — injected connect
//! failures, send errors, stalls, a redelivery bound with dead-letter
//! parking, and an optional mid-run `[crash]`. The run only counts as a
//! success when the analyzer's safety verdict is PASSED: a run that the
//! drivers had to abandon is reported INCONCLUSIVE and fails the job.
//!
//! ```sh
//! cargo run --example jmst_chaos -- scenarios/redelivery_dlq.cfg
//! cargo run --example jmst_chaos -- scenarios/flaky_connect.cfg
//! ```

use jmst::harness::{lint_spec, parse_spec};
use jmst::prelude::*;
use std::sync::Arc;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: jmst_chaos SCENARIO.cfg [SCENARIO.cfg ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match run_scenario(path) {
            Ok(outcome) => {
                println!("{path}: {}", describe(&outcome));
                if !matches!(outcome, TestOutcome::Passed(_)) {
                    failed = true;
                }
            }
            Err(error) => {
                println!("{path}: error: {error}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn describe(outcome: &TestOutcome) -> String {
    match outcome {
        TestOutcome::Passed(report) => format!(
            "PASSED ({} sends, {} receives)",
            report.sends, report.receives
        ),
        TestOutcome::Violated(report) => format!("VIOLATED ({})", report.violations.len()),
        TestOutcome::Hung { stage, .. } => format!("HUNG ({stage})"),
        TestOutcome::Inconclusive { reason, .. } => format!("INCONCLUSIVE ({reason})"),
        TestOutcome::Invalid(reason) => format!("INVALID ({reason})"),
        other => format!("{other:?}"),
    }
}

fn run_scenario(path: &str) -> Result<TestOutcome, String> {
    let text = std::fs::read_to_string(path).map_err(|error| format!("cannot read: {error}"))?;
    let spec = parse_spec(&text).map_err(|error| error.to_string())?;
    let lint = lint_spec(&spec);
    if lint.has_errors() {
        return Err(format!("lint errors:\n{lint}"));
    }
    // Chaos runs are judged on the safety properties alone: operational
    // faults legitimately bend latency and throughput, but may never
    // lose, duplicate, reorder or mis-prioritise a message.
    let prince =
        DaemonPrince::with_analyzer(Analyzer::with_config(AnalysisConfig::strict_safety_only()));
    let factory = |spec: &TestSpec| -> (Arc<dyn jmst::api::provider::Provider>, _) {
        let config = spec
            .broker_config()
            .expect("a spec that passed validation has a valid fault plan");
        let broker = ReferenceBroker::with_config(config);
        let admin: Arc<dyn BrokerAdmin> = Arc::new(broker.clone());
        (Arc::new(broker), Some(admin))
    };
    Ok(prince.run_test(&factory, &spec).outcome)
}
