//! Offline stand-in for the `bytes` crate: a cheaply cloneable,
//! immutable byte buffer backed by `Arc<[u8]>`.
//!
//! Only the surface the workspace actually uses is provided. Cloning a
//! [`Bytes`] bumps a reference count; the payload itself is never
//! copied, which is exactly the property the broker's zero-copy fan-out
//! relies on.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a buffer from a static slice (copied; the shim does not
    /// track borrowed storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn deref_and_len() {
        let b = Bytes::from(vec![9u8; 42]);
        assert_eq!(b.len(), 42);
        assert_eq!(&b[..2], &[9u8, 9][..]);
    }
}
